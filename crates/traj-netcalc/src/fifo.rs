//! Per-node FIFO-aggregate end-to-end analysis.
//!
//! Every node is a unit-rate server (one work unit per tick, matching the
//! model's "processing time" semantics) shared FIFO by all flows crossing
//! it. For each flow the analysis walks its path:
//!
//! 1. at node `h`, the *aggregate* arrival curve of all crossing flows
//!    (each with its burstiness as accumulated so far) is put through the
//!    node's service curve; for FIFO, every packet of the aggregate that
//!    is present ahead of the studied packet delays it, so the flow's
//!    per-node delay bound is the aggregate's delay bound;
//! 2. the flow's own curve is updated with the node's output-burstiness
//!    formula and the link delay spread widens the burst further;
//! 3. the end-to-end bound is the sum of per-node delays plus `Σ Lmax`.
//!
//! Burstiness of *cross* traffic at a node is approximated by running the
//! same accumulation for every flow (computed once, in path order). This
//! is the textbook per-hop FIFO bound — it pays bursts at every hop, which
//! is exactly the pessimism the trajectory approach removes; the
//! comparison is the point of this crate.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use traj_model::{Duration, FlowId, FlowSet, NodeId};

use crate::curves::{delay_bound, ArrivalCurve, ServiceCurve};
use crate::rational::Ratio;

/// End-to-end result for one flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetcalcFlowResult {
    /// The flow.
    pub flow: FlowId,
    /// Per-node delay bounds (ticks, exact rationals rounded up at the
    /// very end only).
    pub per_node: Vec<(NodeId, Ratio)>,
    /// End-to-end delay bound in ticks (`⌈·⌉` of the rational sum plus
    /// link delays), `None` when some node is unstable for the aggregate.
    pub total: Option<Duration>,
}

/// Runs the per-node FIFO network-calculus analysis for every flow.
///
/// Returns results in flow-set order. A node whose aggregate rate reaches
/// the service rate makes every flow crossing it unbounded (`total =
/// None`), mirroring the divergence verdicts of the other analyses.
pub fn analyze_netcalc(set: &FlowSet) -> Vec<NetcalcFlowResult> {
    // Pass 1: accumulate each flow's arrival curve at each of its nodes
    // (burstiness grows hop by hop). Iterate to a fixed point because the
    // delay at a node depends on cross-flow bursts at that node, which
    // depend on their upstream delays, which depend on this flow's bursts.
    let mut curve_at: HashMap<(FlowId, NodeId), ArrivalCurve> = HashMap::new();
    for f in set.flows() {
        let c = ArrivalCurve::sporadic(f.max_cost(), f.period, f.jitter);
        for &h in f.path.nodes() {
            curve_at.insert((f.id, h), c);
        }
    }
    let unit = ServiceCurve::constant_rate(Ratio::ONE);

    // Monotone iteration: bursts only grow; stop on fixed point or after a
    // round limit. Bursts are quantised to integers (rounding *up*, hence
    // still sound) so denominators cannot blow up across rounds. Cyclic
    // flow dependencies can make per-hop burstiness grow without bound
    // even below utilisation 1 — the very phenomenon the Charny-Le Boudec
    // threshold captures — so non-convergence is reported as instability.
    let mut converged = false;
    const SIGMA_GUARD: i64 = 1 << 40;
    'rounds: for _ in 0..256 {
        let mut changed = false;
        for f in set.flows() {
            let mut cur = ArrivalCurve::sporadic(f.max_cost(), f.period, f.jitter);
            for (k, &h) in f.path.nodes().iter().enumerate() {
                // Every (flow, node) pair on a path is seeded in pass 1;
                // a missing slot cannot happen, but degrade to the seed
                // curve rather than panicking (panic-gated crate).
                let Some(slot) = curve_at.get_mut(&(f.id, h)) else {
                    continue;
                };
                if slot.sigma < cur.sigma {
                    *slot = cur;
                    changed = true;
                }
                let cur_stored = *slot;
                // Aggregate at h with everyone's current curves.
                let agg = aggregate_at(set, &curve_at, h);
                let Some(d) = delay_bound(&agg, &unit) else {
                    // Unstable node: freeze; totals become None later.
                    break;
                };
                let mut sigma = cur_stored.sigma + cur_stored.rho * d;
                // Link jitter widens the burst further.
                if k + 1 < f.path.len() {
                    let link = set.network().link_delay(h, f.path.nodes()[k + 1]);
                    sigma = sigma + cur_stored.rho * Ratio::int(link.spread());
                }
                // Quantise up: sound and keeps the arithmetic small.
                let sigma = Ratio::int(sigma.ceil());
                if sigma > Ratio::int(SIGMA_GUARD) {
                    break 'rounds; // divergent feedback loop
                }
                cur = ArrivalCurve {
                    sigma,
                    rho: cur_stored.rho,
                };
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    // Pass 2: per-flow delay accumulation with the converged curves.
    set.flows()
        .iter()
        .map(|f| {
            let mut per_node = Vec::new();
            let mut total = Ratio::ZERO;
            let mut ok = converged;
            for &h in f.path.nodes() {
                let agg = aggregate_at(set, &curve_at, h);
                match delay_bound(&agg, &unit) {
                    Some(d) => {
                        per_node.push((h, d));
                        total = total + d;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            let links: i64 = f
                .path
                .links()
                .map(|(a, b)| set.network().link_delay(a, b).lmax)
                .sum();
            NetcalcFlowResult {
                flow: f.id,
                per_node,
                total: ok.then(|| total.ceil() + links),
            }
        })
        .collect()
}

fn aggregate_at(
    set: &FlowSet,
    curve_at: &HashMap<(FlowId, NodeId), ArrivalCurve>,
    node: NodeId,
) -> ArrivalCurve {
    let mut agg = ArrivalCurve {
        sigma: Ratio::ZERO,
        rho: Ratio::ZERO,
    };
    for f in set.flows() {
        if let Some(c) = curve_at.get(&(f.id, node)) {
            agg = agg.aggregate(c);
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn paper_example_is_bounded_and_sound_vs_trajectory_floor() {
        let set = paper_example();
        let res = analyze_netcalc(&set);
        assert_eq!(res.len(), 5);
        for (r, f) in res.iter().zip(set.flows()) {
            let t = r.total.expect("utilisation < 1 everywhere");
            // Any sound upper bound is at least the uncontended floor.
            let floor = f.total_cost() + (f.path.len() as i64 - 1);
            assert!(t >= floor, "flow {}: {} < {}", f.id, t, floor);
        }
    }

    #[test]
    fn single_flow_line_pays_bursts_per_hop() {
        let set = line_topology(1, 3, 100, 5, 1, 1).unwrap();
        let res = analyze_netcalc(&set);
        // Per-hop accumulation: burst 5 at node 1 (delay 5), then the
        // output burst inflates by rho*d and is quantised up: 6 at node 2,
        // 7 at node 3; plus 2 links. The true transit is 17 — this gap is
        // precisely the per-hop pessimism the trajectory approach avoids.
        assert_eq!(res[0].total, Some(5 + 6 + 7 + 2));
    }

    #[test]
    fn overload_yields_none() {
        let set = line_topology(3, 2, 10, 5, 1, 1).unwrap(); // utilisation 1.5
        let res = analyze_netcalc(&set);
        for r in res {
            assert_eq!(r.total, None);
        }
    }

    #[test]
    fn burstiness_accumulates_along_the_path() {
        // With two flows sharing a line, per-node delays grow downstream.
        let set = line_topology(2, 4, 50, 5, 1, 1).unwrap();
        let res = analyze_netcalc(&set);
        let d: Vec<Ratio> = res[0].per_node.iter().map(|(_, d)| *d).collect();
        assert!(d.last().unwrap() > d.first().unwrap());
    }

    #[test]
    fn netcalc_is_more_pessimistic_than_trajectory_on_shared_lines() {
        // Multi-hop shared line: paying bursts at every hop must cost at
        // least as much as the trajectory bound.
        let set = line_topology(4, 5, 100, 4, 1, 1).unwrap();
        let nc = analyze_netcalc(&set);
        let tr = traj_analysis::analyze_all(&set, &traj_analysis::AnalysisConfig::default());
        for (n, t) in nc.iter().zip(tr.bounds()) {
            assert!(n.total.unwrap() >= t.unwrap());
        }
    }
}
