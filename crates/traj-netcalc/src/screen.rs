//! The O(path-length) admission screen: incrementally maintained
//! aggregate-curve sums powering a Charny-style feasibility check.
//!
//! [`crate::analyze_netcalc`] and the trajectory fixed point both walk
//! the whole flow set; re-running either per admission makes every
//! decision O(flows) or worse. [`AggregateCache`] keeps the handful of
//! aggregates the closed-form Charny–Le Boudec bound needs — per-node
//! arrival-curve sums, the hop-count/packet-size maxima, the
//! non-preemption blocking term, and each standing flow's deadline
//! slack — as multisets maintained across admit/release (mirroring the
//! trajectory engine's `InterferenceCache::extend_for`/`shrink_for`
//! delta maintenance). A what-if then touches only the candidate's own
//! path: the screen is O(path · log flows).
//!
//! # The screen bound
//!
//! With `ν` the maximum per-node EF utilisation, `σ̂` the maximum
//! per-node aggregate EF burst, `H` the maximum EF hop count, and
//! `e = max packet + Lmax + b` the per-hop latency (where
//! `b = (max non-EF cost − 1)⁺` bounds non-preemption blocking by lower
//! classes at every hop, dominating Lemma 4's per-prefix `δ`), the
//! uniform per-hop delay satisfies the Charny–Le Boudec fixed point
//! `D₁ = e + σ̂ + (H−1) ν D₁` — a node's delay is its latency plus the
//! entry burst plus the burstiness the aggregate accumulated over up to
//! `H−1` upstream hops — giving `D₁ = (e + σ̂) / (1 − (H−1) ν)`
//! provided `ν < 1/(H−1)`. Flow `j` crossing `h_j` nodes is then
//! end-to-end bounded by `h_j · D₁ + J_j` (link propagation is inside
//! `e`; release jitter `J_j` is added explicitly since the closed form
//! does not see it). The screen admits a candidate iff this bound meets
//! **every** EF flow's deadline, candidate included — one comparison
//! against the maintained minimum of `(D_j − J_j)/h_j` instead of a
//! per-flow scan.
//!
//! The bound is deliberately looser than the trajectory fixed point
//! (it pays bursts at every hop); what matters for the tiered
//! controller is that it *dominates* the trajectory bound, so a screen
//! pass implies the trajectory analysis would also admit — enforced by
//! the cross-validation and decision-identity differential suites.
//!
//! Every screen computation runs on `checked_*` rational arithmetic: an
//! overflow yields [`ScreenOutcome::Overflow`] (callers fall back to
//! the exact path) instead of a silently saturated comparison.

use std::collections::{BTreeMap, HashMap};

use serde::Serialize;
use traj_model::{FlowId, FlowSet, NodeId, SporadicFlow};

use crate::curves::ArrivalCurve;
use crate::rational::Ratio;

/// Verdict of an O(path) screen evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ScreenOutcome {
    /// The closed-form bound covers every EF flow's deadline with the
    /// candidate added: admission is sound without the fixed point.
    Pass {
        /// The candidate's own screen bound (`⌈h·D₁⌉ + J`, ticks).
        bound: i64,
    },
    /// The screen cannot vouch for the extended set — the bound does
    /// not exist at this utilisation, or some deadline is not covered.
    /// The caller falls back to the exact trajectory what-if.
    Fail {
        /// Which test failed, for counters and debugging.
        why: &'static str,
    },
    /// Checked rational arithmetic overflowed; fall back.
    Overflow,
}

impl ScreenOutcome {
    /// True on [`ScreenOutcome::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, ScreenOutcome::Pass { .. })
    }
}

/// One member's cached contributions, kept so release can subtract
/// exactly what admit added.
#[derive(Debug, Clone)]
struct MemberAgg {
    ef: bool,
    /// EF: hop count entered in the hops multiset.
    hops: i64,
    /// EF: max packet cost; non-EF: the blocking cost entered in the
    /// blocking multiset.
    packet: i64,
    /// EF: deadline slack rate `(D − J)/h` entered in the slack multiset.
    slack: Option<Ratio>,
    /// EF: per-node arrival-curve contribution `(σ, ρ)` at each path
    /// node (a node can repeat on segment-crossing paths; contributions
    /// are listed per visit and summed on application).
    per_node: Vec<(NodeId, ArrivalCurve)>,
}

/// Incrementally maintained aggregates for the admission screen.
///
/// Holds, for the standing admitted set: per-node EF arrival-curve sums
/// (`σ`/`ρ` totals), the multiset of per-node utilisations (max = `ν`),
/// EF hop counts (max = `H`), EF packet costs, non-EF blocking costs,
/// and per-flow deadline slack rates (min = the binding deadline).
/// `admit`/`release` are O(path · log flows); `screen_admit` is
/// O(path · log flows) and read-only.
#[derive(Debug, Clone, Default)]
pub struct AggregateCache {
    lmax: i64,
    /// Per-node EF aggregate curve (`σ`, `ρ` sums of quantized
    /// contributions — exact on the `1/QUANT_DEN` grid).
    node_agg: HashMap<NodeId, ArrivalCurve>,
    /// Multiset of nonzero per-node EF utilisations.
    util_ms: BTreeMap<Ratio, usize>,
    /// Multiset of nonzero per-node aggregate EF bursts (`σ` sums).
    sigma_ms: BTreeMap<Ratio, usize>,
    /// Multiset of EF hop counts.
    hops_ms: BTreeMap<i64, usize>,
    /// Multiset of EF max packet costs.
    packet_ms: BTreeMap<i64, usize>,
    /// Multiset of non-EF max costs (non-preemption blocking sources).
    block_ms: BTreeMap<i64, usize>,
    /// Multiset of EF deadline slack rates `(D − J)/h`.
    slack_ms: BTreeMap<Ratio, usize>,
    members: HashMap<FlowId, MemberAgg>,
}

/// Fixed denominator for per-node aggregate sums. Raw sporadic rates
/// `c/T` have pairwise-coprime denominators, so exact sums over many
/// flows overflow `i128`; quantizing every contribution **up** onto
/// this grid keeps sums single-denominator (numerators add, the
/// denominator never grows) while only loosening the screen bound —
/// still sound, and release can subtract the exact value admit added.
const QUANT_DEN: i128 = 1 << 20;

/// Rounds `r ≥ 0` up to the next multiple of `1/QUANT_DEN`.
fn quantize_up(r: Ratio) -> Ratio {
    if r <= Ratio::ZERO {
        return Ratio::ZERO;
    }
    let num = (r.num() * QUANT_DEN + r.den() - 1) / r.den();
    Ratio::new(num, QUANT_DEN)
}

/// The flow's per-node arrival-curve contribution on the quantized grid.
fn quantized_contrib(cost: i64, period: i64, jitter: i64) -> ArrivalCurve {
    let raw = ArrivalCurve::sporadic(cost, period, jitter);
    ArrivalCurve {
        sigma: quantize_up(raw.sigma),
        rho: quantize_up(raw.rho),
    }
}

fn ms_add<K: Ord + Copy>(ms: &mut BTreeMap<K, usize>, k: K) {
    *ms.entry(k).or_insert(0) += 1;
}

fn ms_remove<K: Ord + Copy>(ms: &mut BTreeMap<K, usize>, k: K) {
    if let Some(n) = ms.get_mut(&k) {
        *n -= 1;
        if *n == 0 {
            ms.remove(&k);
        }
    }
}

fn ms_max<K: Ord + Copy>(ms: &BTreeMap<K, usize>) -> Option<K> {
    ms.keys().next_back().copied()
}

fn ms_min<K: Ord + Copy>(ms: &BTreeMap<K, usize>) -> Option<K> {
    ms.keys().next().copied()
}

impl AggregateCache {
    /// Builds the aggregates for a standing set (O(flows · path)).
    pub fn build(set: &FlowSet) -> AggregateCache {
        let mut cache = AggregateCache {
            lmax: set.network().lmax(),
            ..AggregateCache::default()
        };
        for f in set.flows() {
            cache.admit(f);
        }
        cache
    }

    /// Number of flows tracked.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is tracked.
    pub fn contains(&self, id: FlowId) -> bool {
        self.members.contains_key(&id)
    }

    /// The standing EF aggregate arrival curve at `node` (zero curve
    /// when no EF flow crosses it).
    pub fn node_aggregate(&self, node: NodeId) -> ArrivalCurve {
        self.node_agg.get(&node).copied().unwrap_or(ArrivalCurve {
            sigma: Ratio::ZERO,
            rho: Ratio::ZERO,
        })
    }

    /// The standing maximum per-node EF utilisation `ν`.
    pub fn max_utilisation(&self) -> Ratio {
        ms_max(&self.util_ms).unwrap_or(Ratio::ZERO)
    }

    /// Folds `flow` into the aggregates. Call after the flow is
    /// committed to the standing set; a duplicate id is ignored (the
    /// model layer rejects duplicates before any commit).
    pub fn admit(&mut self, flow: &SporadicFlow) {
        if self.members.contains_key(&flow.id) {
            return;
        }
        let ef = flow.class.is_ef();
        let mut member = MemberAgg {
            ef,
            hops: flow.path.len() as i64,
            packet: flow.max_cost(),
            slack: None,
            per_node: Vec::new(),
        };
        if ef {
            for (&n, &c) in flow.path.nodes().iter().zip(flow.costs()) {
                if c <= 0 {
                    continue;
                }
                let contrib = quantized_contrib(c, flow.period, flow.jitter);
                member.per_node.push((n, contrib));
                self.apply_node(n, contrib, true);
            }
            ms_add(&mut self.hops_ms, member.hops);
            ms_add(&mut self.packet_ms, member.packet);
            let slack = slack_rate(flow);
            ms_add(&mut self.slack_ms, slack);
            member.slack = Some(slack);
        } else {
            ms_add(&mut self.block_ms, member.packet);
        }
        self.members.insert(flow.id, member);
    }

    /// Removes `id`'s contributions. Unknown ids are a no-op.
    pub fn release(&mut self, id: FlowId) {
        let Some(member) = self.members.remove(&id) else {
            return;
        };
        if member.ef {
            for &(n, contrib) in &member.per_node {
                self.apply_node(n, contrib, false);
            }
            ms_remove(&mut self.hops_ms, member.hops);
            ms_remove(&mut self.packet_ms, member.packet);
            if let Some(slack) = member.slack {
                ms_remove(&mut self.slack_ms, slack);
            }
        } else {
            ms_remove(&mut self.block_ms, member.packet);
        }
    }

    fn apply_node(&mut self, n: NodeId, contrib: ArrivalCurve, add: bool) {
        let old = self.node_aggregate(n);
        // Contributions live on the fixed `1/QUANT_DEN` grid, so sums
        // are exact and add-then-subtract returns the original
        // normalised value — multiset keys always match on release.
        let new = if add {
            ArrivalCurve {
                sigma: old.sigma + contrib.sigma,
                rho: old.rho + contrib.rho,
            }
        } else {
            ArrivalCurve {
                sigma: old.sigma - contrib.sigma,
                rho: old.rho - contrib.rho,
            }
        };
        if old.rho > Ratio::ZERO {
            ms_remove(&mut self.util_ms, old.rho);
            ms_remove(&mut self.sigma_ms, old.sigma);
        }
        if new.rho > Ratio::ZERO {
            ms_add(&mut self.util_ms, new.rho);
            ms_add(&mut self.sigma_ms, new.sigma);
            self.node_agg.insert(n, new);
        } else {
            self.node_agg.remove(&n);
        }
    }

    /// O(path) what-if: can `candidate` be admitted on the closed-form
    /// bound alone? Read-only — commit via [`Self::admit`] separately.
    ///
    /// Returns [`ScreenOutcome::Fail`] for non-EF candidates (the exact
    /// path owns the class verdict), when the Charny bound does not
    /// exist at the extended utilisation, or when some flow's deadline
    /// is not covered; [`ScreenOutcome::Overflow`] when the checked
    /// arithmetic overflows.
    pub fn screen_admit(&self, candidate: &SporadicFlow) -> ScreenOutcome {
        if !candidate.class.is_ef() {
            return ScreenOutcome::Fail { why: "not-ef" };
        }
        match self.screen_checked(candidate) {
            Some(outcome) => outcome,
            None => ScreenOutcome::Overflow,
        }
    }

    /// The screen arithmetic with every operation checked; `None` means
    /// overflow (mapped to [`ScreenOutcome::Overflow`] by the caller).
    fn screen_checked(&self, candidate: &SporadicFlow) -> Option<ScreenOutcome> {
        let cand_hops = candidate.path.len() as i64;

        // ν', σ̂': the standing per-node maxima can only be raised by
        // the candidate's own path nodes — O(path) updates, one global
        // max each (maxima may land on different nodes; taking them
        // independently only loosens the bound).
        let mut util = self.max_utilisation();
        let mut burst = ms_max(&self.sigma_ms).unwrap_or(Ratio::ZERO);
        for (&n, &c) in candidate.path.nodes().iter().zip(candidate.costs()) {
            if c <= 0 {
                continue;
            }
            let contrib = quantized_contrib(c, candidate.period, candidate.jitter);
            let agg = self.node_aggregate(n);
            util = util.max(agg.rho.checked_add(contrib.rho)?);
            burst = burst.max(agg.sigma.checked_add(contrib.sigma)?);
        }

        // H', e': maxima against the standing multisets.
        let hops = ms_max(&self.hops_ms).unwrap_or(0).max(cand_hops);
        let packet = ms_max(&self.packet_ms)
            .unwrap_or(0)
            .max(candidate.max_cost());
        let block = (ms_max(&self.block_ms).unwrap_or(0) - 1).max(0);
        let e = Ratio::int(packet.checked_add(self.lmax)?.checked_add(block)?);
        let numer = e.checked_add(burst)?;

        // D₁ = (e + σ̂) / (1 − (H−1) ν), valid below the Charny
        // threshold only.
        let d1 = if hops <= 1 {
            if util >= Ratio::ONE {
                return Some(ScreenOutcome::Fail { why: "overload" });
            }
            numer
        } else {
            let hm1 = Ratio::int(hops - 1);
            let denom = Ratio::ONE.checked_sub(hm1.checked_mul(util)?)?;
            if denom <= Ratio::ZERO {
                return Some(ScreenOutcome::Fail {
                    why: "above-charny-threshold",
                });
            }
            numer.checked_div(denom)?
        };

        // Every standing EF flow j needs h_j · D₁ + J_j ≤ D_j, i.e.
        // D₁ ≤ min_j (D_j − J_j)/h_j — one comparison via the slack
        // multiset; the candidate contributes its own slack rate.
        let cand_slack = checked_slack_rate(candidate)?;
        let min_slack = match ms_min(&self.slack_ms) {
            Some(s) => s.min(cand_slack),
            None => cand_slack,
        };
        if d1 > min_slack {
            return Some(ScreenOutcome::Fail {
                why: "deadline-not-covered",
            });
        }

        // The candidate's own bound: ⌈h·D₁⌉ + J, finite by construction.
        let bound = Ratio::int(cand_hops)
            .checked_mul(d1)?
            .ceil()
            .checked_add(candidate.jitter)?;
        Some(ScreenOutcome::Pass { bound })
    }

    /// Audit hook: rebuilds the aggregates from `set` cold and compares
    /// every multiset and per-node sum. The incremental maintenance is
    /// exact (rational sums, no rounding), so any difference is a bug.
    pub fn verify_against(&self, set: &FlowSet) -> bool {
        let cold = AggregateCache::build(set);
        self.lmax == cold.lmax
            && self.node_agg == cold.node_agg
            && self.util_ms == cold.util_ms
            && self.sigma_ms == cold.sigma_ms
            && self.hops_ms == cold.hops_ms
            && self.packet_ms == cold.packet_ms
            && self.block_ms == cold.block_ms
            && self.slack_ms == cold.slack_ms
            && self.members.len() == cold.members.len()
    }
}

/// `(D − J)/h` for an EF flow (unchecked variant used on committed
/// flows, whose parameters already passed the checked screen).
fn slack_rate(flow: &SporadicFlow) -> Ratio {
    checked_slack_rate(flow).unwrap_or(Ratio::MIN)
}

fn checked_slack_rate(flow: &SporadicFlow) -> Option<Ratio> {
    let headroom = flow.deadline.checked_sub(flow.jitter)?;
    Ratio::checked_new(headroom as i128, flow.path.len() as i128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};
    use traj_model::flow::TrafficClass;
    use traj_model::Path;

    fn light_set() -> FlowSet {
        // 2 flows over 3 shared hops at utilisation 2·4/400 = 1/50,
        // comfortably below the Charny threshold 1/2.
        line_topology(2, 3, 400, 4, 0, 1).unwrap()
    }

    fn candidate(id: u32, period: i64, deadline: i64) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            Path::from_ids([1, 2, 3]).unwrap(),
            period,
            4,
            0,
            deadline,
        )
        .unwrap()
        .with_class(TrafficClass::Ef)
    }

    #[test]
    fn feasible_candidate_passes_and_bound_is_finite() {
        let set = light_set();
        let cache = AggregateCache::build(&set);
        match cache.screen_admit(&candidate(100, 400, 10_000)) {
            ScreenOutcome::Pass { bound } => {
                assert!(bound > 0);
                assert!(bound <= 10_000);
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn screen_pass_bound_dominates_trajectory_bound() {
        let set = light_set();
        let cache = AggregateCache::build(&set);
        let cand = candidate(100, 400, 10_000);
        let ScreenOutcome::Pass { bound } = cache.screen_admit(&cand) else {
            panic!("light set must screen");
        };
        let extended = set.extended_with(cand.clone()).unwrap();
        let report =
            traj_analysis::analyze_ef(&extended, &traj_analysis::AnalysisConfig::default());
        let traj = report.for_flow(cand.id).unwrap().wcrt.value().unwrap();
        assert!(bound >= traj, "screen {bound} < trajectory {traj}");
    }

    #[test]
    fn paper_example_fails_above_the_charny_threshold() {
        // ν = 4/9 > 1/(H−1) = 1/5: the closed form does not exist, the
        // screen must hand the decision to the exact path.
        let cache = AggregateCache::build(&paper_example());
        let cand =
            SporadicFlow::uniform(100, Path::from_ids([2, 3, 4]).unwrap(), 360, 4, 0, 10_000)
                .unwrap();
        assert_eq!(
            cache.screen_admit(&cand),
            ScreenOutcome::Fail {
                why: "above-charny-threshold"
            }
        );
    }

    #[test]
    fn tight_deadline_fails_the_slack_test() {
        let set = light_set();
        let cache = AggregateCache::build(&set);
        assert_eq!(
            cache.screen_admit(&candidate(100, 400, 5)),
            ScreenOutcome::Fail {
                why: "deadline-not-covered"
            }
        );
    }

    #[test]
    fn non_ef_candidate_is_not_screened() {
        let set = light_set();
        let cache = AggregateCache::build(&set);
        let be = candidate(100, 400, 10_000).with_class(TrafficClass::BestEffort);
        assert_eq!(
            cache.screen_admit(&be),
            ScreenOutcome::Fail { why: "not-ef" }
        );
    }

    #[test]
    fn non_ef_members_contribute_blocking_not_utilisation() {
        let set = light_set();
        let mut cache = AggregateCache::build(&set);
        let util_before = cache.max_utilisation();
        let be = SporadicFlow::uniform(77, Path::from_ids([1, 2, 3]).unwrap(), 50, 9, 0, 10_000)
            .unwrap()
            .with_class(TrafficClass::BestEffort);
        cache.admit(&be);
        assert_eq!(cache.max_utilisation(), util_before);
        assert_eq!(ms_max(&cache.block_ms), Some(9));
        // Blocking inflates e, hence the candidate's bound.
        let ScreenOutcome::Pass { bound: with_be } =
            cache.screen_admit(&candidate(100, 400, 10_000))
        else {
            panic!("still below threshold");
        };
        cache.release(FlowId(77));
        let ScreenOutcome::Pass { bound: without } =
            cache.screen_admit(&candidate(100, 400, 10_000))
        else {
            panic!("still below threshold");
        };
        assert!(with_be > without);
    }

    #[test]
    fn admit_release_round_trips_exactly() {
        let set = light_set();
        let mut cache = AggregateCache::build(&set);
        let reference = AggregateCache::build(&set);
        for id in 200..230u32 {
            cache.admit(&candidate(id, 360 + id as i64, 10_000));
        }
        assert_eq!(cache.len(), reference.len() + 30);
        for id in 200..230u32 {
            cache.release(FlowId(id));
        }
        let cold = AggregateCache::build(&set);
        assert_eq!(cache.node_agg, cold.node_agg);
        assert_eq!(cache.util_ms, cold.util_ms);
        assert_eq!(cache.sigma_ms, cold.sigma_ms);
        assert_eq!(cache.hops_ms, cold.hops_ms);
        assert_eq!(cache.packet_ms, cold.packet_ms);
        assert_eq!(cache.block_ms, cold.block_ms);
        assert_eq!(cache.slack_ms, cold.slack_ms);
        assert!(cache.verify_against(&set));
        assert_eq!(cache.max_utilisation(), reference.max_utilisation());
        // Screens agree with the never-churned cache bit for bit.
        let cand = candidate(500, 400, 10_000);
        assert_eq!(cache.screen_admit(&cand), reference.screen_admit(&cand));
    }

    #[test]
    fn jitter_beyond_deadline_fails_instead_of_wrapping() {
        let set = light_set();
        let cache = AggregateCache::build(&set);
        // Release jitter exceeding the deadline leaves negative
        // headroom: the slack rate goes negative and the screen must
        // refuse (the exact path owns the verdict), never pass on a
        // wrapped comparison.
        let c = SporadicFlow::uniform(100, Path::from_ids([1, 2, 3]).unwrap(), 400, 4, 500, 30)
            .unwrap()
            .with_class(TrafficClass::Ef);
        assert_eq!(
            cache.screen_admit(&c),
            ScreenOutcome::Fail {
                why: "deadline-not-covered"
            }
        );
    }
}
