//! Exact rational arithmetic over `i128`.
//!
//! Network-calculus slopes (`ρ = C/T`) are rarely integers; floating point
//! would make bound comparisons flaky. This minimal rational type keeps
//! every curve operation exact. Values stay tiny (numerators bounded by
//! products of a few periods), so `i128` never overflows in practice and
//! every operation normalises eagerly.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`, normalised with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Builds and normalises `num / den`; panics on a zero denominator.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer as a rational.
    pub fn int(v: i64) -> Ratio {
        Ratio {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (normalised).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (normalised, positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// `⌈self⌉` as an integer.
    pub fn ceil(&self) -> i64 {
        let q = self.num.div_euclid(self.den);
        let r = self.num.rem_euclid(self.den);
        (if r == 0 { q } else { q + 1 }) as i64
    }

    /// `⌊self⌋` as an integer.
    pub fn floor(&self) -> i64 {
        self.num.div_euclid(self.den) as i64
    }

    /// Approximate value for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `max(self, 0)`.
    pub fn clamp_nonneg(&self) -> Ratio {
        if self.num < 0 {
            Ratio::ZERO
        } else {
            *self
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, o: Ratio) -> Ratio {
        Ratio::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, o: Ratio) -> Ratio {
        assert!(o.num != 0, "division by zero");
        Ratio::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, o: &Ratio) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Ratio {
    fn cmp(&self, o: &Ratio) -> Ordering {
        (self.num * o.den).cmp(&(o.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::int(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn ordering_and_rounding() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::int(5).ceil(), 5);
    }

    #[test]
    fn clamp() {
        assert_eq!(Ratio::new(-1, 2).clamp_nonneg(), Ratio::ZERO);
        assert_eq!(Ratio::new(1, 2).clamp_nonneg(), Ratio::new(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 1).to_string(), "3");
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
    }
}
