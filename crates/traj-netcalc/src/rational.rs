//! Exact rational arithmetic over `i128`.
//!
//! Network-calculus slopes (`ρ = C/T`) are rarely integers; floating point
//! would make bound comparisons flaky. This minimal rational type keeps
//! every curve operation exact. Values stay tiny (numerators bounded by
//! products of a few periods), so `i128` rarely overflows — but a dense
//! mesh can stack enough denominators that "rarely" is not "never", and
//! this crate now sits on the admission hot path. Overflow therefore
//! **saturates** instead of aborting: the operator impls clamp to
//! [`Ratio::MAX`]/[`Ratio::MIN`] (detectable via
//! [`Ratio::is_saturated`]), which is sound for upper-bound arithmetic —
//! a saturated delay bound only gets *larger*, so deadline checks fail
//! safe and callers surface a typed overflow verdict instead of a wrong
//! finite bound. Hot-path code that wants to branch on overflow uses the
//! `checked_*` methods directly.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den`, normalised with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Saturation magnitude: far above any meaningful bound, far enough
/// below `i128::MAX` that comparisons against saturated values cannot
/// themselves overflow the cross products with small denominators.
const SAT: i128 = 1 << 126;

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };
    /// The positive saturation value overflowing operations clamp to.
    pub const MAX: Ratio = Ratio { num: SAT, den: 1 };
    /// The negative saturation value overflowing operations clamp to.
    pub const MIN: Ratio = Ratio { num: -SAT, den: 1 };

    /// Builds and normalises `num / den`; panics on a zero denominator.
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer as a rational.
    pub fn int(v: i64) -> Ratio {
        Ratio {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (normalised).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (normalised, positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// True when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// `⌈self⌉` as an integer, saturating at the `i64` range.
    pub fn ceil(&self) -> i64 {
        let q = self.num.div_euclid(self.den);
        let r = self.num.rem_euclid(self.den);
        saturate_i64(if r == 0 { q } else { q + 1 })
    }

    /// `⌊self⌋` as an integer, saturating at the `i64` range.
    pub fn floor(&self) -> i64 {
        saturate_i64(self.num.div_euclid(self.den))
    }

    /// Builds `num / den` without panicking: `None` on a zero
    /// denominator.
    pub fn checked_new(num: i128, den: i128) -> Option<Ratio> {
        if den == 0 {
            None
        } else {
            Some(Ratio::new(num, den))
        }
    }

    /// `self + o`, `None` on `i128` overflow.
    pub fn checked_add(self, o: Ratio) -> Option<Ratio> {
        let num = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Some(Ratio::new(num, self.den.checked_mul(o.den)?))
    }

    /// `self - o`, `None` on `i128` overflow.
    pub fn checked_sub(self, o: Ratio) -> Option<Ratio> {
        self.checked_add(-o)
    }

    /// `self * o`, `None` on `i128` overflow. Cross-reduces first so
    /// intermediate products stay as small as the result allows.
    pub fn checked_mul(self, o: Ratio) -> Option<Ratio> {
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        let num = (self.num / g1).checked_mul(o.num / g2)?;
        let den = (self.den / g2).checked_mul(o.den / g1)?;
        Some(Ratio::new(num, den))
    }

    /// `self / o`, `None` on division by zero or `i128` overflow.
    pub fn checked_div(self, o: Ratio) -> Option<Ratio> {
        if o.num == 0 {
            return None;
        }
        self.checked_mul(Ratio::new(o.den, o.num))
    }

    /// Approximate value for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `max(self, 0)`.
    pub fn clamp_nonneg(&self) -> Ratio {
        if self.num < 0 {
            Ratio::ZERO
        } else {
            *self
        }
    }

    /// True when the value sits at (or beyond) the saturation clamp —
    /// some earlier unchecked operation overflowed. Downstream code maps
    /// this to a typed overflow verdict rather than reporting the
    /// clamped value as a real bound.
    pub fn is_saturated(&self) -> bool {
        self.num.saturating_abs() >= SAT
    }

    /// The saturation value with the sign of `hint` (an f64
    /// approximation of the true result, which is always representable
    /// even when the exact rational is not).
    fn saturated(hint: f64) -> Ratio {
        if hint < 0.0 {
            Ratio::MIN
        } else {
            Ratio::MAX
        }
    }
}

fn saturate_i64(v: i128) -> i64 {
    i64::try_from(v).unwrap_or(if v < 0 { i64::MIN } else { i64::MAX })
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, o: Ratio) -> Ratio {
        self.checked_add(o)
            .unwrap_or_else(|| Ratio::saturated(self.to_f64() + o.to_f64()))
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, o: Ratio) -> Ratio {
        self.checked_sub(o)
            .unwrap_or_else(|| Ratio::saturated(self.to_f64() - o.to_f64()))
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, o: Ratio) -> Ratio {
        self.checked_mul(o)
            .unwrap_or_else(|| Ratio::saturated((self.num.signum() * o.num.signum()) as f64))
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, o: Ratio) -> Ratio {
        assert!(o.num != 0, "division by zero");
        self.checked_div(o)
            .unwrap_or_else(|| Ratio::saturated((self.num.signum() * o.num.signum()) as f64))
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, o: &Ratio) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Ratio {
    fn cmp(&self, o: &Ratio) -> Ordering {
        // Cross products overflow only at astronomical magnitudes; fall
        // back to the f64 approximation there instead of aborting.
        match (self.num.checked_mul(o.den), o.num.checked_mul(self.den)) {
            (Some(a), Some(b)) => a.cmp(&b),
            _ => self
                .to_f64()
                .partial_cmp(&o.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::int(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn ordering_and_rounding() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::int(5).ceil(), 5);
    }

    #[test]
    fn clamp() {
        assert_eq!(Ratio::new(-1, 2).clamp_nonneg(), Ratio::ZERO);
        assert_eq!(Ratio::new(1, 2).clamp_nonneg(), Ratio::new(1, 2));
    }

    #[test]
    fn checked_ops_catch_i128_overflow() {
        let huge = Ratio::new(i128::MAX, 1);
        assert_eq!(huge.checked_mul(Ratio::int(2)), None);
        assert_eq!(huge.checked_add(huge), None);
        assert_eq!(Ratio::ONE.checked_div(Ratio::ZERO), None);
        assert_eq!(Ratio::checked_new(1, 0), None);
        // Cross-reduction keeps representable products exact.
        let a = Ratio::new(i128::MAX, 3);
        assert_eq!(a.checked_mul(Ratio::new(3, i128::MAX)), Some(Ratio::ONE));
    }

    #[test]
    fn near_i64_max_values_saturate_not_wrap() {
        let m = Ratio::int(i64::MAX);
        // i64::MAX^2 fits in i128: exact arithmetic survives…
        let sq = m * m;
        assert_eq!(sq.num(), (i64::MAX as i128) * (i64::MAX as i128));
        // …and the integer conversions saturate instead of wrapping.
        assert_eq!(sq.ceil(), i64::MAX);
        assert_eq!(sq.floor(), i64::MAX);
        assert_eq!((-sq).floor(), i64::MIN);
        assert_eq!(m.ceil(), i64::MAX);
        // Comparison stays total even where cross products overflow.
        assert!(Ratio::new(i128::MAX, 2) > Ratio::new(2, i128::MAX));
    }

    #[test]
    fn operators_saturate_instead_of_aborting() {
        let huge = Ratio::new(i128::MAX - 1, 1);
        // Addition past i128 clamps to the positive saturation value…
        let s = huge + huge;
        assert!(s.is_saturated());
        assert_eq!(s, Ratio::MAX);
        // …and stays an upper bound: any finite comparison fails safe.
        assert!(s > Ratio::int(i64::MAX));
        assert_eq!(s.ceil(), i64::MAX);
        // Subtraction and negative products clamp to the negative side.
        assert_eq!(-huge - huge, Ratio::MIN);
        assert_eq!(huge * Ratio::new(-i128::MAX, 3), Ratio::MIN);
        assert!((-huge - huge).is_saturated());
        // Ordinary values never look saturated.
        assert!(!Ratio::new(7, 3).is_saturated());
        assert!(!Ratio::int(i64::MAX).is_saturated());
        // Saturated values survive further arithmetic without wrapping.
        assert!((s + Ratio::ONE).is_saturated());
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 1).to_string(), "3");
        assert_eq!(Ratio::new(1, 2).to_string(), "1/2");
    }
}
