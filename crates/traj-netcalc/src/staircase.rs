//! Exact staircase arrival curves for sporadic flows.
//!
//! The affine token bucket `σ + ρt` over-approximates a sporadic flow:
//! the exact curve is the staircase `α(t) = C · (1 + ⌊(t + J)/T⌋)` for
//! `t ≥ 0`. Through a unit-rate FIFO server, the aggregate delay bound
//! `max_t (Σ αⱼ(t) − t)` is attained at a staircase breakpoint inside the
//! busy period, so it is computed exactly by scanning the finitely many
//! breakpoints — the same structure as the trajectory bound's
//! maximisation, which is why the two coincide on a single node.

use serde::{Deserialize, Serialize};
use traj_model::{plus_one_floor, Duration, SporadicFlow, Tick};

/// `α(t) = C (1 + ⌊(t + J)/T⌋)⁺`: the exact arrival curve of a sporadic
/// flow (work units in any window of length `t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Staircase {
    /// Work per packet at the node of interest.
    pub c: Duration,
    /// Minimum inter-arrival time.
    pub t: Duration,
    /// Release/arrival jitter widening the window.
    pub j: Duration,
}

impl Staircase {
    /// The staircase of a flow at a node with processing time `c`.
    pub fn new(c: Duration, t: Duration, j: Duration) -> Staircase {
        assert!(c > 0 && t > 0 && j >= 0);
        Staircase { c, t, j }
    }

    /// The staircase of a sporadic flow at its slowest node.
    pub fn of_flow(f: &SporadicFlow) -> Staircase {
        Staircase::new(f.max_cost(), f.period, f.jitter)
    }

    /// Evaluates `α(t)` for `t ≥ 0`.
    pub fn eval(&self, t: Tick) -> Duration {
        debug_assert!(t >= 0);
        plus_one_floor(t + self.j, self.t) * self.c
    }

    /// Long-run rate as (num, den).
    pub fn rate(&self) -> (i64, i64) {
        (self.c, self.t)
    }

    /// Jump instants within `[0, horizon]` (where one more packet enters
    /// the window): `t = k·T − J ≥ 0`.
    pub fn breakpoints(&self, horizon: Tick) -> impl Iterator<Item = Tick> + '_ {
        let first_k = traj_model::ceil_div(self.j, self.t).max(0);
        (first_k..)
            .map(move |k| k * self.t - self.j)
            .take_while(move |&t| t <= horizon)
    }
}

/// Exact FIFO delay bound of an aggregate of staircases through a
/// unit-rate server: the busy period `B` solves `B = Σ αⱼ(B)` and the
/// delay is `max over breakpoints t ∈ [0, B) of (Σ αⱼ(t) − t)`.
/// Returns `None` when the aggregate rate reaches 1 (with jitter pushing
/// the fixed point past `guard`).
pub fn staircase_delay_bound(curves: &[Staircase], guard: Duration) -> Option<Duration> {
    if curves.is_empty() {
        return Some(0);
    }
    // Busy period fixed point.
    let mut b: Duration = curves.iter().map(|s| s.c).sum();
    loop {
        let nb: Duration = curves.iter().map(|s| s.eval(b)).sum();
        // eval uses a closed window; the busy-period recurrence needs
        // arrivals strictly before b, which the fixed point below already
        // over-approximates (sound).
        if nb == b {
            break;
        }
        if nb > guard {
            return None;
        }
        b = nb;
    }
    // Scan t = 0 and every breakpoint below b.
    let total = |t: Tick| -> Duration { curves.iter().map(|s| s.eval(t)).sum() };
    let mut best = total(0);
    for s in curves {
        for t in s.breakpoints(b - 1) {
            if t > 0 {
                best = best.max(total(t) - t);
            }
        }
    }
    Some(best)
}

/// Per-flow delay at a shared FIFO node using staircase aggregates (all
/// flows crossing the node), matching the trajectory bound on one hop.
pub fn staircase_node_delay(
    flows: &[&SporadicFlow],
    node: traj_model::NodeId,
    guard: Duration,
) -> Option<Duration> {
    let curves: Vec<Staircase> = flows
        .iter()
        .filter(|f| f.path.visits(node))
        .map(|f| Staircase::new(f.cost_at(node), f.period, f.jitter))
        .collect();
    staircase_delay_bound(&curves, guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::{delay_bound, ArrivalCurve, ServiceCurve};
    use crate::rational::Ratio;

    #[test]
    fn staircase_counts_packets() {
        let s = Staircase::new(4, 36, 0);
        assert_eq!(s.eval(0), 4);
        assert_eq!(s.eval(35), 4);
        assert_eq!(s.eval(36), 8);
        let sj = Staircase::new(4, 36, 10);
        assert_eq!(sj.eval(26), 8, "jitter widens the window");
    }

    #[test]
    fn breakpoints_enumerate_jumps() {
        let s = Staircase::new(4, 36, 0);
        let bps: Vec<i64> = s.breakpoints(100).collect();
        assert_eq!(bps, vec![0, 36, 72]);
        let sj = Staircase::new(4, 36, 10);
        let bps: Vec<i64> = sj.breakpoints(100).collect();
        assert_eq!(bps, vec![26, 62, 98]);
    }

    #[test]
    fn single_node_delay_matches_busy_period_hand_calc() {
        // 3 flows, C=7, T=100: aggregate busy period 21, delay max at t=0:
        // 21 (all three packets before the observer's byte).
        let curves = vec![Staircase::new(7, 100, 0); 3];
        assert_eq!(staircase_delay_bound(&curves, 1 << 30), Some(21));
    }

    #[test]
    fn staircase_never_looser_than_affine() {
        // The affine bound sigma_tot (rate-1 server) dominates the exact
        // staircase bound on any single node.
        let cases = [
            vec![Staircase::new(4, 36, 0); 4],
            vec![Staircase::new(3, 20, 5), Staircase::new(7, 50, 0)],
            vec![Staircase::new(2, 9, 1); 3],
        ];
        for curves in cases {
            let exact = staircase_delay_bound(&curves, 1 << 30).unwrap();
            let affine = {
                let agg = curves.iter().fold(
                    ArrivalCurve {
                        sigma: Ratio::ZERO,
                        rho: Ratio::ZERO,
                    },
                    |acc, s| acc.aggregate(&ArrivalCurve::sporadic(s.c, s.t, s.j)),
                );
                delay_bound(&agg, &ServiceCurve::constant_rate(Ratio::ONE))
                    .unwrap()
                    .ceil()
            };
            assert!(exact <= affine, "{exact} > {affine}");
        }
    }

    #[test]
    fn overload_detected() {
        let curves = vec![Staircase::new(10, 9, 0)];
        assert_eq!(staircase_delay_bound(&curves, 1 << 20), None);
    }

    #[test]
    fn node_delay_agrees_with_trajectory_on_single_node() {
        use traj_model::examples::line_topology;
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let refs: Vec<&traj_model::SporadicFlow> = set.flows().iter().collect();
        let d = staircase_node_delay(&refs, traj_model::NodeId(1), 1 << 30).unwrap();
        // Trajectory bound on one node is 21 (= delay through the busy
        // period); the staircase node bound counts the same packets.
        assert_eq!(d, 21);
    }

    #[test]
    fn jitter_inflates_the_bound() {
        let no_j = staircase_delay_bound(&[Staircase::new(4, 10, 0); 2], 1 << 20).unwrap();
        let with_j = staircase_delay_bound(&[Staircase::new(4, 10, 6); 2], 1 << 20).unwrap();
        assert!(with_j >= no_j);
    }
}
