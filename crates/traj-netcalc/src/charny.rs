//! The Charny–Le Boudec closed-form delay bound for networks with FIFO
//! aggregate scheduling ("Delay bounds in a network with aggregate
//! scheduling", QoFIS 2000 — the paper's reference [11]).
//!
//! For a network where every flow traverses at most `H` hops and every
//! node's utilisation by the aggregate is at most `ν`, the per-hop delay
//! is bounded by `D₁ = e / (1 − (H−1) ν)` and the end-to-end delay by
//! `H · D₁`, **provided** `ν < 1/(H−1)`. Above that utilisation threshold
//! the bound does not exist — precisely the limitation the paper quotes
//! ("valid only for reasonably small EF traffic utilization") to motivate
//! the trajectory approach.

use serde::{Deserialize, Serialize};
use traj_model::{FlowSet, Network, SporadicFlow};

use crate::rational::Ratio;

/// Inputs of the closed-form bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharnyParams {
    /// Maximum hop count `H` over all flows.
    pub hops: i64,
    /// Per-node utilisation bound `ν` of the aggregate.
    pub utilisation: Ratio,
    /// Per-hop latency term `e`: largest packet transmission time plus
    /// the worst link delay.
    pub per_hop_latency: Ratio,
}

impl CharnyParams {
    /// Extracts the parameters from a flow set (unit-rate servers).
    ///
    /// `None` when the aggregate is empty (see [`Self::from_flows`]); a
    /// [`FlowSet`] is non-empty by construction, so this returns `Some`
    /// for any set built through the model API — the `Option` keeps the
    /// signature honest for callers that filtered the set first.
    pub fn from_flow_set(set: &FlowSet) -> Option<CharnyParams> {
        Self::from_flows(set.network(), set.flows())
    }

    /// Extracts the parameters from an explicit aggregate — typically a
    /// class-filtered subset (the EF flows of a mixed set).
    ///
    /// Returns `None` when `flows` is empty: an empty aggregate has no
    /// hop count and no packet size, and the previous behaviour —
    /// falling through `unwrap_or(0)`/`unwrap_or(1)` into a fabricated
    /// `hops = 1`, `e = lmax` — produced a plausible-looking *finite*
    /// bound for traffic that does not exist. A long-running admission
    /// daemon reaches this state routinely (every EF flow released or
    /// evicted), so the vacuous case must be typed, not invented.
    pub fn from_flows(network: &Network, flows: &[SporadicFlow]) -> Option<CharnyParams> {
        let hops = flows.iter().map(|f| f.path.len() as i64).max()?;
        let max_packet = flows.iter().map(|f| f.max_cost()).max()?;
        // ν = max over nodes of Σ C/T, as an exact rational.
        let mut util = Ratio::ZERO;
        for &n in network.nodes() {
            let mut u = Ratio::ZERO;
            for f in flows {
                let c = f.cost_at(n);
                if c > 0 {
                    u = u + Ratio::new(c as i128, f.period as i128);
                }
            }
            util = util.max(u);
        }
        Some(CharnyParams {
            hops,
            utilisation: util,
            per_hop_latency: Ratio::int(max_packet + network.lmax()),
        })
    }

    /// The utilisation threshold `1/(H−1)` below which the bound exists.
    pub fn threshold(&self) -> Option<Ratio> {
        if self.hops <= 1 {
            None // single hop: always stable below rate 1
        } else {
            Some(Ratio::new(1, (self.hops - 1) as i128))
        }
    }
}

/// End-to-end Charny–Le Boudec bound in ticks (`⌈H · e / (1 − (H−1)ν)⌉`),
/// `None` when `ν ≥ 1/(H−1)` (outside the bound's validity region).
pub fn charny_le_boudec_bound(p: &CharnyParams) -> Option<i64> {
    if p.hops <= 1 {
        return (p.utilisation < Ratio::ONE).then(|| p.per_hop_latency.ceil());
    }
    let hm1 = Ratio::int(p.hops - 1);
    let denom = Ratio::ONE - hm1 * p.utilisation;
    if denom <= Ratio::ZERO {
        return None;
    }
    let d1 = p.per_hop_latency / denom;
    Some((Ratio::int(p.hops) * d1).ceil())
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn bound_exists_below_threshold() {
        let p = CharnyParams {
            hops: 4,
            utilisation: Ratio::new(1, 10),
            per_hop_latency: Ratio::int(5),
        };
        assert_eq!(p.threshold(), Some(Ratio::new(1, 3)));
        // D1 = 5 / (1 - 3/10) = 50/7; H*D1 = 200/7 -> 29
        assert_eq!(charny_le_boudec_bound(&p), Some(29));
    }

    #[test]
    fn bound_vanishes_at_threshold() {
        let p = CharnyParams {
            hops: 4,
            utilisation: Ratio::new(1, 3),
            per_hop_latency: Ratio::int(5),
        };
        assert_eq!(charny_le_boudec_bound(&p), None);
        let above = CharnyParams {
            utilisation: Ratio::new(1, 2),
            ..p
        };
        assert_eq!(charny_le_boudec_bound(&above), None);
    }

    #[test]
    fn paper_example_parameters() {
        let set = paper_example();
        let p = CharnyParams::from_flow_set(&set).unwrap();
        assert_eq!(p.hops, 6);
        // busiest node (3) carries 4 flows of 4/36 each.
        assert_eq!(p.utilisation, Ratio::new(4, 9));
        assert_eq!(p.per_hop_latency, Ratio::int(5));
        // ν = 4/9 exceeds the validity threshold 1/(H−1) = 1/5: the
        // closed-form bound does not exist — exactly the limitation the
        // paper cites to motivate the trajectory approach, which bounds
        // this very flow set without difficulty.
        assert_eq!(p.threshold(), Some(Ratio::new(1, 5)));
        assert_eq!(charny_le_boudec_bound(&p), None);
    }

    #[test]
    fn trajectory_beats_charny_below_the_threshold() {
        // A lightly-loaded shared line where the Charny bound exists:
        // H = 3, ν = 2·4/100 = 2/25 < 1/2.
        let set = line_topology(2, 3, 100, 4, 1, 1).unwrap();
        let p = CharnyParams::from_flow_set(&set).unwrap();
        assert!(p.utilisation < p.threshold().unwrap());
        let charny = charny_le_boudec_bound(&p).unwrap();
        let tr = traj_analysis::analyze_all(&set, &traj_analysis::AnalysisConfig::default());
        for b in tr.bounds() {
            assert!(b.unwrap() <= charny, "{b:?} > {charny}");
        }
    }

    #[test]
    fn single_hop_degenerates_gracefully() {
        let set = line_topology(2, 1, 10, 3, 1, 1).unwrap();
        let p = CharnyParams::from_flow_set(&set).unwrap();
        assert_eq!(p.hops, 1);
        assert!(charny_le_boudec_bound(&p).is_some());
    }

    #[test]
    fn empty_aggregate_is_vacuous_not_a_fabricated_bound() {
        // Regression: the seed code fell through `unwrap_or(0)` /
        // `unwrap_or(1)` on an empty aggregate, manufacturing
        // `hops = 1`, `ν = 0`, `e = lmax` — and `charny_le_boudec_bound`
        // then happily returned the *finite* bound `lmax` for traffic
        // that does not exist. The aggregate must be typed as vacuous.
        let set = paper_example();
        assert_eq!(CharnyParams::from_flows(set.network(), &[]), None);

        // A class-filtered aggregate with no EF members is the way a
        // serving path actually reaches this: every flow below is
        // best-effort, so the EF screening aggregate is empty.
        let be_only: Vec<_> = set
            .flows()
            .iter()
            .map(|f| {
                f.clone()
                    .with_class(traj_model::flow::TrafficClass::BestEffort)
            })
            .collect();
        let ef_only: Vec<_> = be_only
            .iter()
            .filter(|f| f.class.is_ef())
            .cloned()
            .collect();
        assert_eq!(CharnyParams::from_flows(set.network(), &ef_only), None);

        // Sanity: the old fabricated answer would have been `lmax = 1`
        // for the paper network — a finite bound out of thin air.
        let fabricated = CharnyParams {
            hops: 1,
            utilisation: Ratio::ZERO,
            per_hop_latency: Ratio::int(set.network().lmax()),
        };
        assert!(charny_le_boudec_bound(&fabricated).is_some());
    }
}
