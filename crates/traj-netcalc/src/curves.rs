//! Token-bucket arrival curves, rate-latency service curves, and the
//! three classic min-plus results: delay bound, backlog bound, output
//! curve.
//!
//! With `α(t) = σ + ρ t` (for `t > 0`) and `β(t) = R (t − T)⁺`, provided
//! `ρ ≤ R`:
//!
//! * delay (horizontal deviation):  `h(α, β) = T + σ / R`;
//! * backlog (vertical deviation):  `v(α, β) = σ + ρ T`;
//! * output curve:                  `α*(t) = (σ + ρ T) + ρ t`.
//!
//! These closed forms make the general min-plus convolution unnecessary
//! for the affine/rate-latency family used here, keeping everything exact.

use serde::{Deserialize, Serialize};

use crate::rational::Ratio;

/// A token-bucket ("leaky bucket") arrival curve `α(t) = σ + ρ t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalCurve {
    /// Burst `σ` (work units).
    pub sigma: Ratio,
    /// Sustained rate `ρ` (work units per tick).
    pub rho: Ratio,
}

impl ArrivalCurve {
    /// The arrival curve of a sporadic flow with per-node work `c`, period
    /// `t`, and release jitter `j`: rate `c/t`, burst `c + (c/t)·j`
    /// (jitter lets a packet arrive up to `j` early, inflating the burst).
    pub fn sporadic(c: i64, t: i64, j: i64) -> ArrivalCurve {
        let rho = Ratio::new(c as i128, t as i128);
        let sigma = Ratio::int(c) + rho * Ratio::int(j);
        ArrivalCurve { sigma, rho }
    }

    /// Evaluates `α(t)` for `t >= 0` (with `α(0) = σ`, the right-limit
    /// convention).
    pub fn eval(&self, t: Ratio) -> Ratio {
        self.sigma + self.rho * t
    }

    /// Aggregates two curves (`α₁ + α₂`): sums of bursts and rates.
    pub fn aggregate(&self, other: &ArrivalCurve) -> ArrivalCurve {
        ArrivalCurve {
            sigma: self.sigma + other.sigma,
            rho: self.rho + other.rho,
        }
    }

    /// Sum over an iterator of curves.
    pub fn sum<'a>(curves: impl IntoIterator<Item = &'a ArrivalCurve>) -> ArrivalCurve {
        curves.into_iter().fold(
            ArrivalCurve {
                sigma: Ratio::ZERO,
                rho: Ratio::ZERO,
            },
            |acc, c| acc.aggregate(c),
        )
    }
}

/// A rate-latency service curve `β(t) = R (t − T)⁺`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceCurve {
    /// Service rate `R` (work units per tick).
    pub rate: Ratio,
    /// Latency `T` (ticks).
    pub latency: Ratio,
}

impl ServiceCurve {
    /// A constant-rate server (latency 0).
    pub fn constant_rate(rate: Ratio) -> ServiceCurve {
        ServiceCurve {
            rate,
            latency: Ratio::ZERO,
        }
    }

    /// The concatenation of two rate-latency servers
    /// (`β₁ ⊗ β₂` is again rate-latency): `min(R₁,R₂)`, `T₁+T₂`.
    pub fn concatenate(&self, other: &ServiceCurve) -> ServiceCurve {
        ServiceCurve {
            rate: self.rate.min(other.rate),
            latency: self.latency + other.latency,
        }
    }

    /// The residual service left for a flow after serving a higher- or
    /// equal-priority aggregate `cross` (blind multiplexing):
    /// `R' = R − ρ_cross`, `T' = (T R + σ_cross)/(R − ρ_cross)`.
    /// `None` when the cross rate saturates the server.
    pub fn residual(&self, cross: &ArrivalCurve) -> Option<ServiceCurve> {
        if cross.rho >= self.rate {
            return None;
        }
        let rate = self.rate - cross.rho;
        let latency = (self.latency * self.rate + cross.sigma) / rate;
        Some(ServiceCurve { rate, latency })
    }
}

/// Delay bound `h(α, β) = T + σ/R`, `None` when `ρ > R` (unstable).
pub fn delay_bound(alpha: &ArrivalCurve, beta: &ServiceCurve) -> Option<Ratio> {
    if alpha.rho > beta.rate {
        return None;
    }
    Some(beta.latency + alpha.sigma / beta.rate)
}

/// Backlog bound `v(α, β) = σ + ρ T`, `None` when `ρ > R`.
pub fn backlog_bound(alpha: &ArrivalCurve, beta: &ServiceCurve) -> Option<Ratio> {
    if alpha.rho > beta.rate {
        return None;
    }
    Some(alpha.sigma + alpha.rho * beta.latency)
}

/// Output arrival curve `α* = (σ + ρ T, ρ)` after crossing `β`, `None`
/// when unstable.
pub fn output_curve(alpha: &ArrivalCurve, beta: &ServiceCurve) -> Option<ArrivalCurve> {
    if alpha.rho > beta.rate {
        return None;
    }
    Some(ArrivalCurve {
        sigma: alpha.sigma + alpha.rho * beta.latency,
        rho: alpha.rho,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d)
    }

    #[test]
    fn sporadic_arrival_curve() {
        let a = ArrivalCurve::sporadic(4, 36, 0);
        assert_eq!(a.sigma, Ratio::int(4));
        assert_eq!(a.rho, r(1, 9));
        let aj = ArrivalCurve::sporadic(4, 36, 9);
        assert_eq!(aj.sigma, Ratio::int(5));
    }

    #[test]
    fn aggregation_sums_components() {
        let a = ArrivalCurve::sporadic(4, 36, 0);
        let b = ArrivalCurve::sporadic(2, 18, 0);
        let s = a.aggregate(&b);
        assert_eq!(s.sigma, Ratio::int(6));
        assert_eq!(s.rho, r(2, 9));
        let many = ArrivalCurve::sum([&a, &b, &a]);
        assert_eq!(many.sigma, Ratio::int(10));
    }

    #[test]
    fn delay_backlog_output_closed_forms() {
        let alpha = ArrivalCurve {
            sigma: Ratio::int(6),
            rho: r(1, 4),
        };
        let beta = ServiceCurve {
            rate: Ratio::int(1),
            latency: Ratio::int(2),
        };
        assert_eq!(delay_bound(&alpha, &beta), Some(Ratio::int(8)));
        assert_eq!(backlog_bound(&alpha, &beta), Some(r(13, 2)));
        let out = output_curve(&alpha, &beta).unwrap();
        assert_eq!(out.sigma, r(13, 2));
        assert_eq!(out.rho, alpha.rho);
    }

    #[test]
    fn instability_detected() {
        let alpha = ArrivalCurve {
            sigma: Ratio::int(1),
            rho: Ratio::int(2),
        };
        let beta = ServiceCurve::constant_rate(Ratio::int(1));
        assert_eq!(delay_bound(&alpha, &beta), None);
        assert_eq!(backlog_bound(&alpha, &beta), None);
        assert!(output_curve(&alpha, &beta).is_none());
    }

    #[test]
    fn concatenation_is_rate_latency() {
        let b1 = ServiceCurve {
            rate: Ratio::int(2),
            latency: Ratio::int(1),
        };
        let b2 = ServiceCurve {
            rate: Ratio::int(1),
            latency: Ratio::int(3),
        };
        let c = b1.concatenate(&b2);
        assert_eq!(c.rate, Ratio::int(1));
        assert_eq!(c.latency, Ratio::int(4));
    }

    #[test]
    fn residual_service() {
        let beta = ServiceCurve::constant_rate(Ratio::int(1));
        let cross = ArrivalCurve {
            sigma: Ratio::int(8),
            rho: r(1, 2),
        };
        let res = beta.residual(&cross).unwrap();
        assert_eq!(res.rate, r(1, 2));
        assert_eq!(res.latency, Ratio::int(16));
        let saturating = ArrivalCurve {
            sigma: Ratio::int(1),
            rho: Ratio::int(1),
        };
        assert!(beta.residual(&saturating).is_none());
    }

    #[test]
    fn pay_bursts_only_once_beats_per_hop_sum() {
        // The PBOO phenomenon: delay through the concatenation is smaller
        // than the sum of per-hop delays.
        let alpha = ArrivalCurve {
            sigma: Ratio::int(10),
            rho: r(1, 10),
        };
        let b = ServiceCurve {
            rate: Ratio::int(1),
            latency: Ratio::int(1),
        };
        let through = delay_bound(&alpha, &b.concatenate(&b)).unwrap();
        let hop1 = delay_bound(&alpha, &b).unwrap();
        let out1 = output_curve(&alpha, &b).unwrap();
        let hop2 = delay_bound(&out1, &b).unwrap();
        assert!(through < hop1 + hop2);
    }
}
