//! Network-calculus baseline (paper §3, related work [4][11]).
//!
//! The paper discusses deterministic network calculus as the other
//! established route to end-to-end FIFO delay bounds. This crate provides:
//!
//! * exact rational arithmetic ([`rational::Ratio`]) so curve algebra
//!   stays integer-exact like the rest of the workspace;
//! * token-bucket arrival curves `α(t) = σ + ρ t` and rate-latency service
//!   curves `β(t) = R (t − T)⁺` ([`curves`]);
//! * the min-plus results used here: delay bound (horizontal deviation),
//!   backlog bound (vertical deviation), output arrival curve
//!   ([`curves`]);
//! * a per-node FIFO-aggregate end-to-end analysis that propagates
//!   burstiness hop by hop ([`fifo`]);
//! * the Charny–Le Boudec closed-form bound for FIFO aggregates, valid
//!   only below the utilisation threshold `1/(H−1)` — the very limitation
//!   the paper cites when motivating the trajectory approach ([`charny`]);
//! * exact staircase curves for sporadic flows ([`staircase`]), tighter
//!   than the affine approximation on single nodes;
//! * the whole-set analysis behind the common backend trait plus
//!   tightest-per-flow bound selection across engines ([`analyzer`]);
//! * an incremental aggregate-curve cache giving an O(path-length)
//!   admission *screen* in front of the trajectory fixed point
//!   ([`screen`]).

pub mod analyzer;
pub mod charny;
pub mod curves;
pub mod fifo;
pub mod rational;
pub mod screen;
pub mod staircase;

pub use analyzer::{tightest_bounds, BoundSelection, BoundSource, NetcalcAnalyzer};
pub use charny::{charny_le_boudec_bound, CharnyParams};
pub use curves::{ArrivalCurve, ServiceCurve};
pub use fifo::{analyze_netcalc, NetcalcFlowResult};
pub use rational::Ratio;
pub use screen::{AggregateCache, ScreenOutcome};
pub use staircase::{staircase_delay_bound, staircase_node_delay, Staircase};
