//! The network-calculus engine behind the common backend trait, plus
//! tightest-per-flow bound selection across backends.
//!
//! [`NetcalcAnalyzer`] adapts [`crate::analyze_netcalc`] — the per-node
//! FIFO-aggregate burst-propagation analysis — to
//! [`traj_analysis::backend::Analyzer`], mapping its results onto the
//! shared [`Verdict`] vocabulary: a finite total becomes
//! [`Verdict::Bounded`], an unstable or divergent aggregate becomes
//! [`Verdict::Unbounded`], and saturated rational arithmetic (see
//! [`crate::rational::Ratio::is_saturated`]) surfaces as
//! [`Verdict::Overflow`] instead of a silently clamped "bound".
//!
//! [`tightest_bounds`] merges one report per backend into per-flow
//! minima with provenance — neither engine dominates everywhere (the
//! trajectory bound is almost always tighter, but it can diverge where
//! the closed form still exists), so reports carry
//! `min(trajectory, netcalc)` and say which engine produced it.

use serde::{Deserialize, Serialize};
use traj_analysis::backend::Analyzer;
use traj_analysis::{AnalysisConfig, FlowReport, SetReport, Verdict};
use traj_model::{FlowId, FlowSet};

use crate::fifo::analyze_netcalc;

/// The closed-form network-calculus backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetcalcAnalyzer;

impl Analyzer for NetcalcAnalyzer {
    fn name(&self) -> &'static str {
        "netcalc"
    }

    /// Runs [`crate::analyze_netcalc`] over the whole set (all classes
    /// share the FIFO aggregate — more pessimistic than the EF
    /// partition, hence still sound for the EF flows) and reports every
    /// flow. The configuration is unused: the closed forms have no
    /// ablation knobs.
    fn analyze(&self, set: &FlowSet, _cfg: &AnalysisConfig) -> SetReport {
        let results = analyze_netcalc(set);
        let per_flow = set
            .flows()
            .iter()
            .zip(results)
            .map(|(f, r)| {
                let saturated = r.per_node.iter().any(|(_, d)| d.is_saturated());
                let wcrt = match (r.total, saturated) {
                    (_, true) => Verdict::overflow("netcalc per-node delay saturated"),
                    (Some(t), false) if t == i64::MAX => {
                        Verdict::overflow("netcalc end-to-end sum saturated")
                    }
                    (Some(t), false) => Verdict::Bounded(t),
                    (None, false) => {
                        Verdict::unbounded("aggregate unstable or burst feedback divergent")
                    }
                };
                FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt,
                    jitter: None,
                    deadline: f.deadline,
                }
            })
            .collect();
        SetReport::new(per_flow)
    }
}

/// Which backend produced the tightest bound for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BoundSource {
    /// The trajectory fixed point (Property 3).
    Trajectory,
    /// The closed-form network-calculus analysis.
    Netcalc,
}

/// Per-flow result of [`tightest_bounds`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundSelection {
    /// The flow.
    pub flow: FlowId,
    /// The trajectory bound, when finite.
    pub trajectory: Option<i64>,
    /// The netcalc bound, when finite.
    pub netcalc: Option<i64>,
    /// `min` of the finite bounds (`None` when neither engine bounded
    /// the flow — the vacuous case).
    pub tightest: Option<i64>,
    /// Which engine produced `tightest` (trajectory wins ties; `None`
    /// exactly when `tightest` is `None`).
    pub source: Option<BoundSource>,
}

/// Merges a trajectory report and a netcalc report into per-flow
/// tightest bounds with provenance, in the trajectory report's flow
/// order. A flow missing from `netcalc` keeps its trajectory verdict
/// alone (and vice versa never happens for reports over the same set).
pub fn tightest_bounds(trajectory: &SetReport, netcalc: &SetReport) -> Vec<BoundSelection> {
    trajectory
        .per_flow()
        .iter()
        .map(|t| {
            let tr = t.wcrt.value();
            let nc = netcalc.for_flow(t.flow).and_then(|r| r.wcrt.value());
            let (tightest, source) = match (tr, nc) {
                (Some(a), Some(b)) if b < a => (Some(b), Some(BoundSource::Netcalc)),
                (Some(a), _) => (Some(a), Some(BoundSource::Trajectory)),
                (None, Some(b)) => (Some(b), Some(BoundSource::Netcalc)),
                (None, None) => (None, None),
            };
            BoundSelection {
                flow: t.flow,
                trajectory: tr,
                netcalc: nc,
                tightest,
                source,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::backend::TrajectoryAnalyzer;
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn netcalc_backend_matches_direct_analysis() {
        let set = line_topology(2, 3, 100, 4, 1, 1).unwrap();
        let report = NetcalcAnalyzer.analyze(&set, &AnalysisConfig::default());
        let direct = analyze_netcalc(&set);
        assert_eq!(report.per_flow().len(), direct.len());
        for (r, d) in report.per_flow().iter().zip(&direct) {
            assert_eq!(r.wcrt.value(), d.total);
        }
        assert_eq!(NetcalcAnalyzer.name(), "netcalc");
    }

    #[test]
    fn overload_maps_to_unbounded_not_a_fake_bound() {
        let set = line_topology(3, 2, 10, 5, 1, 1).unwrap(); // utilisation 1.5
        let report = NetcalcAnalyzer.analyze(&set, &AnalysisConfig::default());
        for r in report.per_flow() {
            assert!(matches!(r.wcrt, Verdict::Unbounded { .. }));
        }
    }

    #[test]
    fn tightest_selection_prefers_the_smaller_bound_with_provenance() {
        let cfg = AnalysisConfig::default();
        let set = line_topology(4, 5, 100, 4, 1, 1).unwrap();
        let tr = TrajectoryAnalyzer.analyze(&set, &cfg);
        let nc = NetcalcAnalyzer.analyze(&set, &cfg);
        let sel = tightest_bounds(&tr, &nc);
        assert_eq!(sel.len(), set.len());
        for s in &sel {
            // On shared lines the trajectory bound wins everywhere.
            assert_eq!(s.source, Some(BoundSource::Trajectory));
            assert_eq!(s.tightest, s.trajectory);
            assert!(s.netcalc.unwrap() >= s.trajectory.unwrap());
        }
    }

    #[test]
    fn netcalc_carries_the_flow_where_trajectory_has_no_bound() {
        // The paper example is above the Charny threshold but the
        // per-node netcalc analysis still bounds it; fabricate the
        // opposite case by merging against an all-unbounded report.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let nc = NetcalcAnalyzer.analyze(&set, &cfg);
        let unbounded = SetReport::new(
            nc.per_flow()
                .iter()
                .map(|r| FlowReport {
                    flow: r.flow,
                    name: r.name.clone(),
                    wcrt: Verdict::unbounded("forced"),
                    jitter: None,
                    deadline: r.deadline,
                })
                .collect(),
        );
        let sel = tightest_bounds(&unbounded, &nc);
        for (s, n) in sel.iter().zip(nc.per_flow()) {
            assert_eq!(s.trajectory, None);
            assert_eq!(s.tightest, n.wcrt.value());
            if n.wcrt.value().is_some() {
                assert_eq!(s.source, Some(BoundSource::Netcalc));
            }
        }
    }
}
