//! Cross-engine soundness on random meshes.
//!
//! Three contracts keep the tiered fast path honest:
//!
//! 1. **Screen domination** — whenever the aggregate-curve screen
//!    passes a candidate, the *exact* trajectory analysis of the
//!    extended set must agree: every flow bounded and inside its
//!    deadline, and the candidate's trajectory bound at most the
//!    screen's. This is the property that makes a screened admit
//!    decision-identical to the pure controller.
//! 2. **Netcalc soundness** — the per-flow FIFO network-calculus
//!    bounds must dominate the worst response the adversarial
//!    simulator can produce (`observed ≤ bound`).
//! 3. **Non-vacuity** — over a deterministic seed sweep the screen
//!    must actually pass somewhere, or contract 1 tests nothing.

use proptest::prelude::*;
use traj_analysis::{AnalysisConfig, ConvergedState};
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::{FlowSet, SporadicFlow};
use traj_netcalc::{analyze_netcalc, AggregateCache, ScreenOutcome};
use traj_sim::{validate_bounds, AdversaryParams};

/// A lightly-loaded mesh whose deadlines are inflated enough that the
/// (sound, very conservative) Charny screen has room to pass. The
/// generator's native `transit * 5` deadlines sit close to the
/// trajectory bound, where only the exact engine can decide.
fn screenable_mesh(seed: u64, flows: u32) -> Option<FlowSet> {
    let params = MeshParams {
        nodes: 10,
        flows,
        path_len: (2, 3),
        max_utilisation: 0.25,
        ..Default::default()
    };
    let set = random_mesh(seed, &params).ok()?;
    let network = set.network().clone();
    let relaxed: Vec<SporadicFlow> = set
        .flows()
        .iter()
        .cloned()
        .map(|mut f| {
            f.deadline = f.deadline.saturating_mul(200);
            f
        })
        .collect();
    FlowSet::new(network, relaxed).ok()
}

/// Contract 1: a screen pass implies the exact trajectory decision is
/// an admit, with the candidate's exact bound under the screened one.
fn check_screen_domination(set: &FlowSet) -> Result<bool, TestCaseError> {
    let flows = set.flows();
    let candidate = flows[flows.len() - 1].clone();
    let standing: Vec<SporadicFlow> = flows[..flows.len() - 1].to_vec();
    let standing = match FlowSet::new(set.network().clone(), standing) {
        Ok(s) => s,
        Err(_) => return Ok(false),
    };
    let cache = AggregateCache::build(&standing);
    let ScreenOutcome::Pass { bound } = cache.screen_admit(&candidate) else {
        return Ok(false);
    };
    // The screen vouched: the exact engine must agree on "admit".
    let cfg = AnalysisConfig::default();
    let state = ConvergedState::build_ef(set, &cfg).map_err(|v| {
        TestCaseError::fail(format!("screen passed but trajectory diverged: {v:?}"))
    })?;
    let report = state.report();
    for r in report.per_flow() {
        let wcrt = r.wcrt.value().ok_or_else(|| {
            TestCaseError::fail(format!("screen passed but flow {} unbounded", r.flow))
        })?;
        prop_assert!(
            wcrt <= r.deadline,
            "screen passed but flow {} misses: wcrt {} > deadline {}",
            r.flow,
            wcrt,
            r.deadline
        );
        if r.flow == candidate.id {
            prop_assert!(
                wcrt <= bound,
                "trajectory bound {} above the screen bound {} for the candidate",
                wcrt,
                bound
            );
        }
    }
    Ok(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn screen_pass_implies_exact_admit(
        seed in 0u64..1_000_000,
        flows in 3u32..10,
    ) {
        let Some(set) = screenable_mesh(seed, flows) else {
            return Err(TestCaseError::reject());
        };
        check_screen_domination(&set)?;
    }

    #[test]
    fn netcalc_bounds_dominate_observed_worst_cases(
        seed in 0u64..1_000_000,
        flows in 3u32..8,
    ) {
        let params = MeshParams {
            nodes: 8,
            flows,
            path_len: (2, 3),
            max_utilisation: 0.4,
            ..Default::default()
        };
        let Ok(set) = random_mesh(seed, &params) else {
            return Err(TestCaseError::reject());
        };
        let bounds: Vec<Option<i64>> =
            analyze_netcalc(&set).into_iter().map(|r| r.total).collect();
        let rows = validate_bounds(
            &set,
            &bounds,
            &AdversaryParams {
                trials: 8,
                seed,
                ..Default::default()
            },
        );
        for r in rows {
            prop_assert!(
                r.sound,
                "flow {}: observed {} above the netcalc bound {:?}",
                r.flow, r.observed, r.bound
            );
        }
    }
}

/// Contract 3: the domination property must not hold vacuously — the
/// screen has to pass on a healthy fraction of lightly-loaded meshes.
#[test]
fn screen_passes_are_not_vacuous() {
    let mut passes = 0usize;
    let mut tried = 0usize;
    for seed in 0..120u64 {
        let Some(set) = screenable_mesh(seed, 5) else {
            continue;
        };
        tried += 1;
        if check_screen_domination(&set).expect("domination holds") {
            passes += 1;
        }
    }
    assert!(
        passes >= 10,
        "screen passed only {passes}/{tried} lightly-loaded meshes; the \
         domination proptest is close to vacuous"
    );
}
