//! Differential suite: the tiered controller must be
//! decision-identical to the pure trajectory controller.
//!
//! Two controllers over the same random mesh replay the same script of
//! admits (a mix of generously- and tightly-deadlined candidates, so
//! both screen hits and fallbacks occur) and releases. After every
//! operation the decisions must agree — same admit/reject/invalid
//! outcome, same victim and same invalid message on the negative paths
//! (those run the identical exact code). An admitted bound may differ
//! in *value* (the screen hands out its own sound bound) but never in
//! kind. At the end, the settled converged bounds must be bit-identical
//! to the pure controller's: settlement folds the screened suffix
//! through the same warm fixed point an eager admit would have used.

use proptest::prelude::*;
use traj_analysis::AnalysisConfig;
use traj_diffserv::{
    evaluate_whatif, evaluate_whatif_screened, AdmissionController, AdmissionDecision, TieredPolicy,
};
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::{FlowId, FlowSet, SporadicFlow};

/// A mesh split into a standing prefix and a candidate suffix, with
/// candidate deadlines alternating between relaxed (screenable) and the
/// generator's native tight ones (screen fallback territory).
fn mesh_and_candidates(seed: u64, flows: u32) -> Option<(FlowSet, Vec<SporadicFlow>)> {
    let params = MeshParams {
        nodes: 10,
        flows,
        path_len: (2, 3),
        max_utilisation: 0.3,
        ..Default::default()
    };
    let set = random_mesh(seed, &params).ok()?;
    let all = set.flows().to_vec();
    let split = (all.len() / 2).max(1);
    let standing: Vec<SporadicFlow> = all[..split]
        .iter()
        .cloned()
        .map(|mut f| {
            f.deadline = f.deadline.saturating_mul(100);
            f
        })
        .collect();
    let candidates: Vec<SporadicFlow> = all[split..]
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, mut f)| {
            if i % 2 == 0 {
                f.deadline = f.deadline.saturating_mul(100);
            }
            f
        })
        .collect();
    let standing = FlowSet::new(set.network().clone(), standing).ok()?;
    Some((standing, candidates))
}

/// Admit/reject/invalid kinds must match; negative decisions must match
/// exactly (victim, bound, message) since both run the exact path.
fn assert_identical(
    tiered: &AdmissionDecision,
    pure: &AdmissionDecision,
) -> Result<(), TestCaseError> {
    match (tiered, pure) {
        (AdmissionDecision::Admitted { .. }, AdmissionDecision::Admitted { .. }) => Ok(()),
        (t @ AdmissionDecision::Rejected { .. }, p @ AdmissionDecision::Rejected { .. })
        | (t @ AdmissionDecision::Invalid(_), p @ AdmissionDecision::Invalid(_)) => {
            prop_assert_eq!(t, p);
            Ok(())
        }
        (t, p) => Err(TestCaseError::fail(format!(
            "decisions diverged: tiered {t:?} vs pure {p:?}"
        ))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiered_controller_matches_pure_decisions(
        seed in 0u64..1_000_000,
        flows in 4u32..12,
    ) {
        let Some((standing, candidates)) = mesh_and_candidates(seed, flows) else {
            return Err(TestCaseError::reject());
        };
        let cfg = AnalysisConfig::default();
        let mut tiered = AdmissionController::new(standing.clone(), cfg.clone())
            .with_tiered(TieredPolicy::Screened);
        let mut pure = AdmissionController::new(standing, cfg);

        for (i, c) in candidates.iter().enumerate() {
            // What-if identity first: the read-only screened evaluation
            // must agree in kind with the exact one on the same state.
            if let (Some(screen), Some(state)) =
                (tiered.screen_cache().cloned(), tiered.converged_state().cloned())
            {
                let (sd, _) = evaluate_whatif_screened(&screen, &state, c.clone());
                let ed = evaluate_whatif(&state, c.clone());
                assert_identical(&sd, &ed)?;
            }

            let td = tiered.try_admit(c.clone());
            let pd = pure.try_admit(c.clone());
            assert_identical(&td, &pd)?;

            // A duplicate admit must produce the identical invalid
            // string through either path.
            if matches!(td, AdmissionDecision::Admitted { .. }) {
                let t_dup = tiered.try_admit(c.clone());
                let p_dup = pure.try_admit(c.clone());
                prop_assert_eq!(&t_dup, &p_dup);
                prop_assert!(matches!(t_dup, AdmissionDecision::Invalid(_)));
            }

            // Periodically release the oldest admitted flow from both.
            if i % 3 == 2 {
                if let Some(f) = tiered.flows().flows().first() {
                    let id = f.id;
                    let tr = tiered.release(id);
                    let pr = pure.release(id);
                    prop_assert_eq!(tr, pr);
                }
            }
            prop_assert_eq!(
                tiered.flows().flows().len(),
                pure.flows().flows().len(),
                "standing sets diverged"
            );
        }

        // Settlement: the tiered controller's converged bounds must be
        // bit-identical to the pure controller's on the same final set.
        let t_state = tiered.converged_state().cloned();
        let p_state = pure.converged_state().cloned();
        match (t_state, p_state) {
            (Some(t), Some(p)) => {
                prop_assert_eq!(t.report().bounds(), p.report().bounds());
            }
            (t, p) => prop_assert!(
                t.is_none() && p.is_none(),
                "one controller settled, the other did not"
            ),
        }
    }
}

/// The screen must actually serve a share of the admits across the
/// sweep — identity alone could hold with a screen that never fires.
#[test]
fn tiered_sweep_has_real_screen_traffic() {
    let mut hits = 0u64;
    let mut fallbacks = 0u64;
    for seed in 0..60u64 {
        let Some((standing, candidates)) = mesh_and_candidates(seed, 8) else {
            continue;
        };
        let mut ac = AdmissionController::new(standing, AnalysisConfig::default())
            .with_tiered(TieredPolicy::Screened);
        for c in candidates {
            let _ = ac.try_admit(c);
        }
        hits += ac.metrics().screen_hits;
        fallbacks += ac.metrics().screen_fallbacks;
    }
    assert!(
        hits > 0,
        "the screen never served an admit across the sweep"
    );
    assert!(
        fallbacks > 0,
        "the screen never fell back — tight candidates were not exercised"
    );
}

/// Releases on a screened controller keep the screen and the standing
/// set in lockstep (exercised via the controller's own invariants).
#[test]
fn release_after_screened_admits_settles_and_stays_consistent() {
    let Some((standing, candidates)) = mesh_and_candidates(7, 10) else {
        panic!("seed 7 must generate");
    };
    let mut ac = AdmissionController::new(standing, AnalysisConfig::default())
        .with_tiered(TieredPolicy::Screened);
    let mut admitted: Vec<FlowId> = Vec::new();
    for c in candidates {
        let id = c.id;
        if matches!(ac.try_admit(c), AdmissionDecision::Admitted { .. }) {
            admitted.push(id);
        }
    }
    for id in admitted {
        assert!(ac.release(id).released());
    }
    assert_eq!(ac.pending_settlement(), 0);
    assert!(ac.converged_state().is_some());
}
