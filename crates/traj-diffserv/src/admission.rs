//! Deterministic admission control for the EF class.
//!
//! The paper (§6.2, discussing [12]) argues that deterministic guarantees
//! require admission control based on *worst-case* response times and
//! jitters, not measurements. [`AdmissionController`] implements exactly
//! that: a candidate EF flow is admitted iff, after adding it, **every**
//! EF flow (existing and new) still meets its deadline under the
//! Property 3 bound.
//!
//! # Warm-start evaluation
//!
//! The controller holds the standing set's converged analysis
//! ([`ConvergedState`]) across `try_admit`/`release` calls. A what-if is
//! then evaluated by [`traj_analysis::analyze_ef_incremental`]: only the
//! candidate's transitive dirty closure over the crossing graph is
//! re-solved, everything else — interference skeletons, `Smax`
//! fixed-point rows, full-path verdicts — is reused, and the resulting
//! bounds are bit-identical to the cold analysis (DESIGN.md §10). The
//! state is dropped on structural invalidation (a fault) and rebuilt
//! lazily; every decision still taken by a cold `analyze_ef` run is
//! counted in [`AdmissionMetrics::cold_fallbacks`].
//!
//! [`AdmissionController::try_admit_batch`] evaluates K independent
//! what-ifs against the standing state in parallel (rayon; serially
//! below [`SERIAL_BATCH_MAX_CANDIDATES`]), then commits
//! winners sequentially: because Property 3 bounds are monotone in the
//! flow set, a candidate rejected against the standing set alone is
//! rejected against any superset, so provisional rejections are final;
//! provisional winners after the first commit are re-evaluated against
//! the evolving state.
//!
//! # Graceful degradation
//!
//! [`AdmissionController::on_fault`] re-evaluates the admitted flows on
//! the degraded topology: flows whose route died are dropped, rerouted
//! flows keep their guarantee only if the re-analysis still bounds them
//! under their deadline, and when the degraded set is unschedulable the
//! controller *evicts* flows — ordered by [`EvictionPolicy`] — until the
//! survivors are guaranteed again. Every displaced flow lands in a retry
//! queue with exponential backoff; [`AdmissionController::tick`] drains
//! the queue, re-running full admission control for each entry once the
//! fault is (assumed) repaired.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use traj_analysis::{analyze_ef, AnalysisConfig, ConvergedState, EfWhatIf, SetReport};
use traj_model::flow::TrafficClass;
use traj_model::{FaultScenario, FlowFate, FlowId, FlowSet, ModelError, SporadicFlow};
use traj_netcalc::{AggregateCache, ScreenOutcome};

/// Batches at or below this size evaluate their what-ifs serially.
///
/// Fanning two or three closure-pruned what-ifs across rayon costs more
/// in task dispatch than the evaluations themselves: `BENCH_admission.json`
/// measured `speedup_batch` 0.96 (a regression) at 10 standing flows with
/// batches of 2. The threshold keeps small batches on the caller's
/// thread; the decision sequence is identical either way.
const SERIAL_BATCH_MAX_CANDIDATES: usize = 4;

/// Why a flow was rejected, or the bounds it was admitted with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted; the bound computed for the new flow.
    Admitted {
        /// Property 3 bound of the new flow.
        wcrt: i64,
    },
    /// Rejected: some flow (possibly the candidate) would miss its
    /// deadline.
    Rejected {
        /// The first flow that would miss, with its bound (`None` when
        /// the analysis diverged).
        victim: FlowId,
        /// The offending bound.
        wcrt: Option<i64>,
    },
    /// Rejected: the candidate is malformed for this network.
    Invalid(String),
}

/// Outcome of [`AdmissionController::release`].
///
/// The seed API returned `bool`, which conflated "no such flow" with
/// the structural last-flow case: a [`FlowSet`] cannot be empty, so the
/// final admitted flow is *retained* rather than released, and callers
/// that treated `false` as "already gone" leaked guaranteed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReleaseOutcome {
    /// The flow existed and was removed.
    Released,
    /// No admitted flow has this id.
    NotFound,
    /// The flow exists but is the last one standing; it stays admitted
    /// because the flow set cannot be empty.
    LastFlowRetained,
}

impl ReleaseOutcome {
    /// `true` iff the flow was actually removed.
    pub fn released(&self) -> bool {
        matches!(self, ReleaseOutcome::Released)
    }
}

/// How a decision was evaluated, for metrics and the decision event.
#[derive(Debug, Clone, Copy)]
struct AdmitMeta {
    /// Served by the warm-start path (standing converged state).
    warm: bool,
    /// Size of the dirty closure the warm path re-solved.
    closure: Option<usize>,
    /// Decided by the O(path) network-calculus screen — no fixed point
    /// ran at all (see [`TieredPolicy::Screened`]).
    screened: bool,
}

impl AdmitMeta {
    fn warm(closure: Option<usize>) -> Self {
        AdmitMeta {
            warm: true,
            closure,
            screened: false,
        }
    }

    fn cold() -> Self {
        AdmitMeta {
            warm: false,
            closure: None,
            screened: false,
        }
    }

    fn screened() -> Self {
        AdmitMeta {
            warm: true,
            closure: None,
            screened: true,
        }
    }
}

/// Which evaluation tiers an [`AdmissionController`] runs per decision.
///
/// [`TieredPolicy::Screened`] puts the O(path-length) network-calculus
/// screen ([`traj_netcalc::AggregateCache`]) in front of the trajectory
/// fixed point: when the (sound, looser) Charny-style closed-form bound
/// already meets every affected flow's deadline the admit commits
/// immediately, and the standing converged state is *settled* lazily —
/// pending screen-admitted flows are folded in with **one** warm fixed
/// point the next time an exact answer is needed (a screen miss, a
/// release, an audit). The decision *kind* is identical to
/// [`TieredPolicy::TrajectoryOnly`] by construction on misses (same
/// code path) and by bound domination on hits (a screen pass implies
/// the trajectory analysis would also admit — enforced by the
/// differential proptest suites and the soak screening audit); the
/// reported `wcrt` of a screen-hit admit carries the netcalc bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieredPolicy {
    /// Every decision runs the exact trajectory what-if (seed behaviour).
    #[default]
    TrajectoryOnly,
    /// Screen first; fall back to the exact what-if when the screen
    /// cannot vouch (above the Charny threshold, deadline not covered,
    /// non-EF candidate, or checked-arithmetic overflow).
    Screened,
}

/// Which admitted flow to sacrifice first when a fault leaves the
/// degraded set unschedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the lowest scheduling class first (best effort, then AF in
    /// ascending class order, EF last); ties broken latest-admitted-first.
    #[default]
    LowestPriorityFirst,
    /// Evict in reverse admission order regardless of class: the flows
    /// admitted most recently lose their guarantee first.
    LatestAdmittedFirst,
}

/// A displaced flow waiting to be re-admitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryEntry {
    /// The flow, exactly as it was admitted.
    pub flow: SporadicFlow,
    /// Earliest tick at which the next admission attempt may run.
    pub next_attempt: u64,
    /// Current backoff interval; doubles after every failed attempt,
    /// saturating at the configured [`RetryPolicy`] cap.
    pub backoff: u64,
    /// Failed re-admission attempts so far.
    pub attempts: u32,
    /// Why the flow was displaced.
    pub reason: String,
}

/// What [`AdmissionController::on_fault`] did to the admitted set.
#[derive(Debug, Clone, Default)]
pub struct FaultResponse {
    /// Flows whose route died with the fault (queued for retry).
    pub dropped: Vec<(FlowId, String)>,
    /// Flows rerouted around the fault that kept their guarantee.
    pub rerouted: Vec<FlowId>,
    /// Flows evicted to make the degraded set schedulable again
    /// (queued for retry).
    pub evicted: Vec<FlowId>,
    /// Eviction stopped at the last standing flow while it (or the set)
    /// was still unschedulable: the flow is retained — a [`FlowSet`]
    /// cannot be empty — but its guarantee is void until re-admission
    /// succeeds. Mirrors [`ReleaseOutcome::LastFlowRetained`].
    pub last_flow_retained: bool,
}

/// Retry-queue backoff schedule: exponential doubling from `base`,
/// saturating at `cap`.
///
/// The cap used to be a hard-wired constant; making it configurable lets
/// deployments trade re-admission latency (small cap: repaired capacity
/// is noticed quickly) against analysis load (large cap: fewer futile
/// re-analyses while the fault persists). A cap below `base` is treated
/// as `base` — the first backoff interval is the floor of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// First backoff interval (ticks) after a displacement or a failed
    /// re-admission attempt.
    pub base: u64,
    /// Backoff saturation point (ticks).
    pub cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: 8,
            cap: 1 << 16,
        }
    }
}

impl RetryPolicy {
    /// The effective saturation point (`cap`, floored at `base`).
    pub fn effective_cap(&self) -> u64 {
        self.cap.max(self.base)
    }

    /// The interval following `current`: doubled (saturating in u64,
    /// so a huge cap cannot wrap the arithmetic), clamped to the cap.
    pub fn next_backoff(&self, current: u64) -> u64 {
        current.saturating_mul(2).min(self.effective_cap())
    }
}

/// Monotone counters of everything the controller decided, plus the
/// retry-queue high-water mark. Cheap to keep (a few integer adds per
/// operation), exposed for dashboards and asserted on by the CI
/// observability job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionMetrics {
    /// Successful admissions, including re-admissions from the retry
    /// queue.
    pub admitted: u64,
    /// Rejections (some flow would miss its deadline).
    pub rejected: u64,
    /// Malformed candidates.
    pub invalid: u64,
    /// Flows whose route a fault killed.
    pub dropped: u64,
    /// Flows evicted to restore schedulability after a fault.
    pub evicted: u64,
    /// Retry-queue entries that made it back in.
    pub readmitted: u64,
    /// Re-admission attempts run by [`AdmissionController::tick`].
    pub retry_attempts: u64,
    /// Largest retry-queue depth ever observed.
    pub retry_depth_peak: u64,
    /// Decisions served by the incremental warm-start path.
    #[serde(default)]
    pub warm_hits: u64,
    /// Decisions that fell back to a cold `analyze_ef` run (no standing
    /// converged state, or its rebuild failed).
    #[serde(default)]
    pub cold_fallbacks: u64,
    /// Batched what-if evaluations run.
    #[serde(default)]
    pub batches: u64,
    /// Largest batch ever evaluated.
    #[serde(default)]
    pub batch_peak: u64,
    /// Decisions served by the O(path) network-calculus screen without
    /// running any trajectory fixed point.
    #[serde(default)]
    pub screen_hits: u64,
    /// Screen evaluations that could not vouch and fell back to the
    /// exact trajectory path.
    #[serde(default)]
    pub screen_fallbacks: u64,
    /// Settlements run: pending screen-admitted flows folded into the
    /// standing converged state with one warm fixed point.
    #[serde(default)]
    pub screen_settles: u64,
}

/// Serializable image of an [`AdmissionController`]: the admitted set,
/// configuration, retry queue, metrics and bookkeeping — everything
/// *except* the standing converged analysis, which
/// [`AdmissionController::restore`] rebuilds cold on first use (the
/// warm ≡ cold bit-identity contract makes the rebuild equivalent to
/// having serialized it).
///
/// Taken by [`AdmissionController::snapshot`]; a daemon persists it
/// across restarts so displaced flows keep their backoff schedule and
/// metrics stay monotone over the process boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// The admitted flow set (network + flows).
    pub flows: FlowSet,
    /// Analysis configuration in force.
    pub cfg: AnalysisConfig,
    /// Eviction policy in force.
    pub policy: EvictionPolicy,
    /// Retry backoff schedule in force.
    pub retry_policy: RetryPolicy,
    /// Pending retry queue, verbatim (backoffs and due times included).
    pub retry: Vec<RetryEntry>,
    /// Decision counters at snapshot time.
    pub metrics: AdmissionMetrics,
    /// Admission-order bookkeeping (flow id, sequence number).
    pub order: Vec<(FlowId, u64)>,
    /// Next admission sequence number.
    pub next_seq: u64,
    /// Monotone clock high-water mark (see [`AdmissionController::clock`]).
    pub last_tick: u64,
    /// Tiered-evaluation policy in force (absent in pre-tiering
    /// snapshots, defaulting to [`TieredPolicy::TrajectoryOnly`]).
    #[serde(default)]
    pub tiered: TieredPolicy,
}

/// Why [`AdmissionController::restore`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot's flow set does not validate as a model (duplicate
    /// ids, broken paths, …) — the file is corrupt or hand-edited.
    InvalidFlowSet(String),
    /// The snapshot's bookkeeping violates the controller invariants
    /// (see [`AdmissionController::check_invariants`]); each violation
    /// is listed.
    Inconsistent(Vec<String>),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::InvalidFlowSet(e) => {
                write!(f, "snapshot flow set does not validate: {e}")
            }
            RestoreError::Inconsistent(v) => {
                write!(
                    f,
                    "snapshot violates controller invariants: {}",
                    v.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Stateful admission controller for a DiffServ domain.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    current: FlowSet,
    cfg: AnalysisConfig,
    /// The standing set's converged analysis, extended/shrunk in place
    /// by admissions and releases. `None` after structural invalidation
    /// (a fault) or a failed build; rebuilt lazily on the next what-if.
    /// Under [`TieredPolicy::Screened`] it may cover only a settled
    /// *prefix* of `current` — screen-hit admits are appended to
    /// `current` without touching it, and [`Self::settle`] folds the
    /// pending suffix in with one warm fixed point.
    state: Option<ConvergedState>,
    /// Incrementally maintained aggregates behind the admission screen;
    /// `None` until first use (or after a fault) and rebuilt lazily.
    /// Tracks `current` exactly whenever present.
    screen: Option<AggregateCache>,
    tiered: TieredPolicy,
    policy: EvictionPolicy,
    retry_policy: RetryPolicy,
    retry: Vec<RetryEntry>,
    metrics: AdmissionMetrics,
    /// Admission sequence numbers; flows present at construction get the
    /// lowest ones in set order.
    order: Vec<(FlowId, u64)>,
    next_seq: u64,
    /// High-water mark of every caller-supplied clock value (`tick`,
    /// `tick_gated`, `on_fault`). The controller's retry schedule runs
    /// on this *monotone* clock: a caller clock that steps backwards —
    /// an NTP correction on a daemon feeding wall-derived ticks — is
    /// clamped to the mark instead of rescheduling entries into the
    /// past (premature fire) or leaving entries scheduled far beyond
    /// the real clock (stranding).
    last_tick: u64,
}

impl AdmissionController {
    /// Starts from an existing (already guaranteed) flow set.
    pub fn new(current: FlowSet, cfg: AnalysisConfig) -> Self {
        Self::with_policy(current, cfg, EvictionPolicy::default())
    }

    /// Starts from an existing flow set with an explicit eviction policy.
    pub fn with_policy(current: FlowSet, cfg: AnalysisConfig, policy: EvictionPolicy) -> Self {
        let order: Vec<(FlowId, u64)> = current
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.id, i as u64))
            .collect();
        let next_seq = order.len() as u64;
        AdmissionController {
            current,
            cfg,
            state: None,
            screen: None,
            tiered: TieredPolicy::default(),
            policy,
            retry_policy: RetryPolicy::default(),
            retry: Vec::new(),
            metrics: AdmissionMetrics::default(),
            order,
            next_seq,
            last_tick: 0,
        }
    }

    /// Replaces the retry backoff schedule (builder style).
    pub fn with_retry_policy(mut self, retry_policy: RetryPolicy) -> Self {
        self.retry_policy = retry_policy;
        self
    }

    /// Selects the tiered-evaluation policy (builder style). Under
    /// [`TieredPolicy::Screened`] the aggregate cache is built eagerly
    /// so read-side consumers (the serve view) can screen what-ifs
    /// before the first admit.
    pub fn with_tiered(mut self, tiered: TieredPolicy) -> Self {
        self.tiered = tiered;
        if self.tiered == TieredPolicy::Screened && self.screen.is_none() {
            self.screen = Some(AggregateCache::build(&self.current));
        }
        self
    }

    /// The active tiered-evaluation policy.
    pub fn tiered(&self) -> TieredPolicy {
        self.tiered
    }

    /// Screen-admitted flows not yet folded into the standing converged
    /// state (always 0 under [`TieredPolicy::TrajectoryOnly`]).
    pub fn pending_settlement(&self) -> usize {
        match &self.state {
            Some(st) => self.current.len().saturating_sub(st.set().len()),
            None => 0,
        }
    }

    /// The screen's aggregate cache, if one has been built. Serving
    /// layers publish a clone next to the converged-state snapshot so
    /// read-only what-ifs can screen too; audits compare it against a
    /// cold rebuild via [`AggregateCache::verify_against`].
    pub fn screen_cache(&self) -> Option<&AggregateCache> {
        self.screen.as_ref()
    }

    /// The active eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The active retry backoff schedule.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Decision counters accumulated since construction.
    pub fn metrics(&self) -> &AdmissionMetrics {
        &self.metrics
    }

    /// Flows displaced by a fault and still waiting for re-admission.
    pub fn retry_queue(&self) -> &[RetryEntry] {
        &self.retry
    }

    /// The controller's monotone clock: the largest `now` any
    /// [`Self::tick`], [`Self::tick_gated`] or [`Self::on_fault`] call
    /// has supplied so far.
    ///
    /// # Clock contract
    ///
    /// The controller never reads a wall clock; callers drive time by
    /// passing `now`. The retry schedule, however, is interpreted on
    /// the *monotone envelope* of those values: a `now` below a
    /// previously seen one is treated as the previous high-water mark.
    /// Without the clamp a backwards step has two failure modes, both
    /// observed under a daemon feeding wall-derived ticks across an NTP
    /// correction:
    ///
    /// * **premature fire** — a failed re-admission at a bogus small
    ///   `now` reschedules `next_attempt = now + backoff`, so the entry
    ///   fires long before its backoff really elapsed;
    /// * **stranding** — entries scheduled off a bogus *large* `now`
    ///   stay dormant for the difference even after the clock recovers,
    ///   because nothing re-anchors them.
    ///
    /// Clamping keeps `next_attempt` within
    /// `clock() + effective_cap` at all times (checked by
    /// [`Self::check_invariants`]), so no entry can be deferred further
    /// than one full backoff cap past the clock, and no entry fires
    /// before its scheduled distance on the monotone clock.
    pub fn clock(&self) -> u64 {
        self.last_tick
    }

    /// Advances the monotone clock to `now` (or keeps the mark if `now`
    /// runs backwards) and returns the effective time.
    fn advance_clock(&mut self, now: u64) -> u64 {
        if now < self.last_tick && traj_obs::enabled() {
            traj_obs::counter_add("admission.clock_regressions", 1);
            traj_obs::emit(
                traj_obs::Event::new("admission.clock_regression")
                    .field("now", now)
                    .field("clock", self.last_tick),
            );
        }
        self.last_tick = self.last_tick.max(now);
        self.last_tick
    }

    /// The current flow set.
    pub fn flows(&self) -> &FlowSet {
        &self.current
    }

    /// The standing converged analysis of the admitted set, building it
    /// cold first if a fault invalidated it (or nothing warmed it yet).
    /// `None` when the standing set itself cannot be bounded.
    ///
    /// This is the audit surface: the soak harness calls
    /// [`traj_analysis::ConvergedState::verify_bit_identity`] on the
    /// result to spot-check the warm state against a cold re-analysis.
    pub fn converged_state(&mut self) -> Option<&ConvergedState> {
        // Fold any screen-admitted pending flows in first, so the
        // returned state always covers the full admitted set.
        self.settle();
        self.ensure_state()
    }

    /// Checks the controller's internal bookkeeping invariants and
    /// returns a human-readable description of every violation (empty =
    /// healthy). Run by the soak harness after every fault storm.
    ///
    /// Invariants: retry entries are unique per flow and disjoint from
    /// the admitted set; every backoff lies within the configured
    /// policy's `[base, effective_cap]` band; the admission-order
    /// bookkeeping covers exactly the admitted flows; a standing
    /// converged state, if present, describes exactly the admitted set.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let policy = self.retry_policy;
        let mut seen = std::collections::HashSet::new();
        for e in &self.retry {
            if !seen.insert(e.flow.id) {
                violations.push(format!("retry queue holds flow {} twice", e.flow.id));
            }
            if self.current.index_of(e.flow.id).is_some() {
                violations.push(format!(
                    "flow {} is both admitted and queued for retry",
                    e.flow.id
                ));
            }
            if e.backoff < policy.base || e.backoff > policy.effective_cap() {
                violations.push(format!(
                    "flow {} backoff {} outside [{}, {}]",
                    e.flow.id,
                    e.backoff,
                    policy.base,
                    policy.effective_cap()
                ));
            }
            // Monotone-clock consequence: every entry is anchored at an
            // effective time ≤ clock(), so its next attempt can sit at
            // most one full backoff cap past the clock. A violation
            // means some path bypassed `advance_clock`.
            if e.next_attempt > self.last_tick.saturating_add(policy.effective_cap()) {
                violations.push(format!(
                    "flow {} next_attempt {} beyond clock {} + cap {}",
                    e.flow.id,
                    e.next_attempt,
                    self.last_tick,
                    policy.effective_cap()
                ));
            }
        }
        let order_ids: std::collections::HashSet<FlowId> =
            self.order.iter().map(|(f, _)| *f).collect();
        if order_ids.len() != self.order.len() {
            violations.push("admission order holds duplicate flow ids".to_string());
        }
        if self.order.len() != self.current.len() {
            violations.push(format!(
                "admission order tracks {} flows but {} are admitted",
                self.order.len(),
                self.current.len()
            ));
        }
        for f in self.current.flows() {
            if !order_ids.contains(&f.id) {
                violations.push(format!(
                    "admitted flow {} missing from admission order",
                    f.id
                ));
            }
        }
        if let Some(st) = &self.state {
            let state_ids: Vec<FlowId> = st.set().flows().iter().map(|f| f.id).collect();
            let current_ids: Vec<FlowId> = self.current.flows().iter().map(|f| f.id).collect();
            // Under the screened policy the state may lag behind by the
            // pending (screen-admitted, unsettled) suffix; it must still
            // describe a prefix of the admitted set in admission order.
            let settled_prefix =
                self.tiered == TieredPolicy::Screened && current_ids.starts_with(&state_ids);
            if state_ids != current_ids && !settled_prefix {
                violations
                    .push("standing converged state diverged from the admitted set".to_string());
            }
        }
        if let Some(sc) = &self.screen {
            if sc.len() != self.current.len() {
                violations.push(format!(
                    "screen cache tracks {} flows but {} are admitted",
                    sc.len(),
                    self.current.len()
                ));
            }
        }
        violations
    }

    /// Captures a serializable image of the controller (admitted set,
    /// retry queue, metrics, clock). The standing converged analysis is
    /// deliberately not part of it — [`Self::restore`] rebuilds it cold,
    /// which the bit-identity contract guarantees is equivalent.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            flows: self.current.clone(),
            cfg: self.cfg.clone(),
            policy: self.policy,
            retry_policy: self.retry_policy,
            retry: self.retry.clone(),
            metrics: self.metrics,
            order: self.order.clone(),
            next_seq: self.next_seq,
            last_tick: self.last_tick,
            tiered: self.tiered,
        }
    }

    /// Reconstructs a controller from a [`ControllerSnapshot`],
    /// re-validating everything a deserializer cannot: the flow set is
    /// rebuilt through [`FlowSet::new`] (so a corrupt snapshot cannot
    /// smuggle duplicate ids or broken paths past the model layer) and
    /// the bookkeeping must pass [`Self::check_invariants`]. The
    /// converged analysis state is rebuilt lazily on the first what-if.
    pub fn restore(snap: ControllerSnapshot) -> Result<AdmissionController, RestoreError> {
        let flows = FlowSet::new(snap.flows.network().clone(), snap.flows.flows().to_vec())
            .map_err(|e| RestoreError::InvalidFlowSet(format!("{e:?}")))?;
        let ac = AdmissionController {
            screen: (snap.tiered == TieredPolicy::Screened).then(|| AggregateCache::build(&flows)),
            current: flows,
            cfg: snap.cfg,
            state: None,
            tiered: snap.tiered,
            policy: snap.policy,
            retry_policy: snap.retry_policy,
            retry: snap.retry,
            metrics: snap.metrics,
            order: snap.order,
            next_seq: snap.next_seq,
            last_tick: snap.last_tick,
        };
        let violations = ac.check_invariants();
        if !violations.is_empty() {
            return Err(RestoreError::Inconsistent(violations));
        }
        // Sequence numbers must stay ahead of every recorded admission,
        // or the next admission would reuse an order slot.
        if let Some(max_seq) = ac.order.iter().map(|&(_, s)| s).max() {
            if ac.next_seq <= max_seq {
                return Err(RestoreError::Inconsistent(vec![format!(
                    "next_seq {} not beyond the largest recorded sequence {}",
                    ac.next_seq, max_seq
                )]));
            }
        }
        Ok(ac)
    }

    /// Tries to admit `candidate`; on success the controller's state is
    /// updated.
    pub fn try_admit(&mut self, candidate: SporadicFlow) -> AdmissionDecision {
        let (decision, meta) = self.admit_inner(candidate);
        self.record_decision(&decision, meta);
        decision
    }

    /// Evaluates `candidates` as independent what-ifs against the
    /// standing converged state **in parallel** (serially at or below
    /// [`SERIAL_BATCH_MAX_CANDIDATES`], where dispatch would dominate),
    /// then commits winners sequentially. Returns one decision per
    /// candidate, input order.
    ///
    /// Bounds are monotone in the flow set, so a candidate that misses
    /// against the standing set alone misses against any superset:
    /// provisional rejections (and structural invalids) are final.
    /// Provisional winners after the first commit are re-evaluated
    /// against the evolving state — only the first winner's parallel
    /// result is committed as-is.
    ///
    /// The rejected/admitted/invalid *outcome* of every candidate is
    /// identical to sequential [`Self::try_admit`] calls in the same
    /// order; the diagnostic `victim`/`wcrt` of a provisional rejection
    /// is reported against the standing set at fan-out time, which may
    /// differ from what a sequential evaluation (standing set plus
    /// already-committed winners) would have named.
    pub fn try_admit_batch(
        &mut self,
        candidates: Vec<SporadicFlow>,
    ) -> Vec<(FlowId, AdmissionDecision)> {
        if candidates.is_empty() {
            return Vec::new();
        }
        if candidates.len() == 1 {
            return candidates
                .into_iter()
                .map(|c| (c.id, self.try_admit(c)))
                .collect();
        }
        self.metrics.batches += 1;
        self.metrics.batch_peak = self.metrics.batch_peak.max(candidates.len() as u64);
        if traj_obs::enabled() {
            traj_obs::counter_add("admission.batch_size", candidates.len() as u64);
            traj_obs::emit(
                traj_obs::Event::new("admission.batch")
                    .field("candidates", candidates.len())
                    .field("flows", self.current.len()),
            );
        }
        if self.tiered == TieredPolicy::Screened {
            // Screen-first sequential drain: hits commit in O(path)
            // without touching the fixed point, so there is no warm
            // fan-out to amortise; misses settle once, then take the
            // exact path. Decision kinds match the pure batch (itself
            // sequential-equivalent by monotonicity).
            return candidates
                .into_iter()
                .map(|c| (c.id, self.try_admit(c)))
                .collect();
        }
        if self.ensure_state().is_none() {
            // No warm state to fan out against: sequential cold path.
            return candidates
                .into_iter()
                .map(|c| (c.id, self.try_admit(c)))
                .collect();
        }
        let Some(standing) = self.state.take() else {
            // ensure_state just filled it; unreachable, kept total.
            return candidates
                .into_iter()
                .map(|c| (c.id, self.try_admit(c)))
                .collect();
        };
        let whatifs: Vec<Result<EfWhatIf, ModelError>> =
            if candidates.len() <= SERIAL_BATCH_MAX_CANDIDATES {
                // Too few what-ifs to amortise the fork-join dispatch.
                candidates
                    .iter()
                    .map(|c| standing.extend(c.clone()))
                    .collect()
            } else {
                candidates
                    .par_iter()
                    .map(|c| standing.extend(c.clone()))
                    .collect()
            };
        // Put the standing state back before the sequential commits;
        // the first committed winner replaces it.
        self.state = Some(standing);

        let mut committed = false;
        let mut out = Vec::with_capacity(candidates.len());
        for (cand, res) in candidates.into_iter().zip(whatifs) {
            let id = cand.id;
            let decision = if !committed {
                // Nothing changed since the parallel evaluation: the
                // provisional result is exact. Commit on admission.
                let (d, meta) = self.finish_warm(&cand, res);
                committed = matches!(d, AdmissionDecision::Admitted { .. });
                self.record_decision(&d, meta);
                d
            } else {
                match &res {
                    // Structural invalidity against the standing set is
                    // final (duplicate ids vs committed winners surface
                    // through the re-evaluation branch below).
                    Err(e) => {
                        let d = AdmissionDecision::Invalid(e.to_string());
                        self.record_decision(&d, AdmitMeta::warm(None));
                        d
                    }
                    // Provisional miss: final by monotonicity.
                    Ok(w) if Self::first_miss(&w.report).is_some() => {
                        let (victim, wcrt) = Self::first_miss(&w.report).unwrap_or((id, None));
                        let d = AdmissionDecision::Rejected { victim, wcrt };
                        self.record_decision(&d, AdmitMeta::warm(Some(w.recomputed())));
                        d
                    }
                    // Provisional winner: the standing set grew since
                    // the parallel evaluation — re-run against it.
                    Ok(_) => self.try_admit(cand),
                }
            };
            out.push((id, decision));
        }
        out
    }

    /// Lazily (re)builds the standing converged state. `None` when the
    /// cold build itself fails (the standing set cannot be bounded).
    fn ensure_state(&mut self) -> Option<&ConvergedState> {
        if self.state.is_none() {
            self.state = ConvergedState::build_ef(&self.current, &self.cfg).ok();
        }
        self.state.as_ref()
    }

    /// Lazily (re)builds the screen's aggregate cache from the admitted
    /// set. O(flows · path), amortised across every later O(path) screen.
    fn ensure_screen(&mut self) -> &AggregateCache {
        self.screen
            .get_or_insert_with(|| AggregateCache::build(&self.current))
    }

    /// Folds screen-admitted pending flows into the standing converged
    /// state with **one** warm fixed point ([`ConvergedState::extend_many`],
    /// bit-identical to chained single extends and to a cold rebuild).
    /// No-op when nothing is pending; a failed fold drops the state for
    /// a lazy cold rebuild, never losing admitted flows.
    fn settle(&mut self) {
        let Some(st) = self.state.take() else {
            // No standing state: the next `ensure_state` builds cold
            // from `current`, which already contains every admit.
            return;
        };
        let n = st.set().len();
        if n >= self.current.len() {
            self.state = Some(st);
            return;
        }
        let _span =
            traj_obs::ScopedTimer::new("admission.settle").field("pending", self.current.len() - n);
        self.metrics.screen_settles += 1;
        let pending: Vec<SporadicFlow> = self.current.flows()[n..].to_vec();
        self.state = match st.extend_many(&pending) {
            Ok(whatif) => whatif.into_state(),
            Err(_) => None,
        };
        if traj_obs::enabled() {
            traj_obs::counter_add("admission.screen_settles", 1);
        }
    }

    /// The O(path) screened fast path. `Some` when the screen could
    /// decide on its own (a pass commits the admit immediately, deferring
    /// settlement); `None` when it cannot vouch and the exact trajectory
    /// path must run.
    fn screened_admit(
        &mut self,
        candidate: &SporadicFlow,
    ) -> Option<(AdmissionDecision, AdmitMeta)> {
        self.ensure_screen();
        let outcome = self
            .screen
            .as_ref()
            .map(|sc| sc.screen_admit(candidate))
            .unwrap_or(ScreenOutcome::Overflow);
        match outcome {
            ScreenOutcome::Pass { bound } => {
                // Structural validation identical to the exact path —
                // same `ModelError` strings on duplicates and unknown
                // nodes, so Invalid decisions stay bit-identical.
                let tentative = match self.current.extended_with(candidate.clone()) {
                    Ok(s) => s,
                    Err(e) => {
                        return Some((
                            AdmissionDecision::Invalid(e.to_string()),
                            AdmitMeta::screened(),
                        ))
                    }
                };
                self.current = tentative;
                if let Some(sc) = self.screen.as_mut() {
                    sc.admit(candidate);
                }
                self.order.push((candidate.id, self.next_seq));
                self.next_seq += 1;
                // Mirror the warm/cold commits: a successful admission
                // settles any pending retry for this flow.
                self.retry.retain(|e| e.flow.id != candidate.id);
                Some((
                    AdmissionDecision::Admitted { wcrt: bound },
                    AdmitMeta::screened(),
                ))
            }
            ScreenOutcome::Fail { why } => {
                self.metrics.screen_fallbacks += 1;
                if traj_obs::enabled() {
                    traj_obs::counter_add("admission.screen_fallbacks", 1);
                    traj_obs::emit(
                        traj_obs::Event::new("admission.screen_fallback").field("why", why),
                    );
                }
                None
            }
            ScreenOutcome::Overflow => {
                self.metrics.screen_fallbacks += 1;
                if traj_obs::enabled() {
                    traj_obs::counter_add("admission.screen_fallbacks", 1);
                    traj_obs::emit(
                        traj_obs::Event::new("admission.screen_fallback").field("why", "overflow"),
                    );
                }
                None
            }
        }
    }

    fn admit_inner(&mut self, candidate: SporadicFlow) -> (AdmissionDecision, AdmitMeta) {
        if self.tiered == TieredPolicy::Screened {
            if let Some(decided) = self.screened_admit(&candidate) {
                return decided;
            }
            // The screen could not vouch: fold pending screen admits in
            // (one warm fixed point) and take the exact path below.
            self.settle();
        }
        // Warm path: extend the standing converged state; only the
        // candidate's dirty closure is re-solved and the bounds are
        // bit-identical to the cold analysis below.
        let res = self.ensure_state().map(|st| st.extend(candidate.clone()));
        match res {
            Some(res) => self.finish_warm(&candidate, res),
            None => (self.cold_admit(candidate), AdmitMeta::cold()),
        }
    }

    /// The first flow of `report` that would miss its deadline (or has
    /// no bound), if any.
    fn first_miss(report: &SetReport) -> Option<(FlowId, Option<i64>)> {
        report
            .per_flow()
            .iter()
            .find(|r| r.meets_deadline() != Some(true))
            .map(|r| (r.flow, r.wcrt.value()))
    }

    /// The decision implied by a what-if report: the first deadline
    /// miss rejects, a candidate without a verdict is not EF, anything
    /// else is admitted with the candidate's Property 3 bound. Shared
    /// by the warm commit path, the cold fallback and the read-only
    /// [`evaluate_whatif`], so all three decide identically by
    /// construction.
    fn decision_for(report: &SetReport, cand_id: FlowId) -> AdmissionDecision {
        if let Some((victim, wcrt)) = Self::first_miss(report) {
            return AdmissionDecision::Rejected { victim, wcrt };
        }
        match report.for_flow(cand_id).and_then(|r| r.wcrt.value()) {
            Some(wcrt) => AdmissionDecision::Admitted { wcrt },
            None => AdmissionDecision::Invalid(format!(
                "flow {cand_id} is not in the EF class; deterministic admission \
                 covers EF flows only"
            )),
        }
    }

    /// Turns a warm what-if result into a decision, committing the
    /// extended state on admission.
    fn finish_warm(
        &mut self,
        candidate: &SporadicFlow,
        res: Result<EfWhatIf, ModelError>,
    ) -> (AdmissionDecision, AdmitMeta) {
        let cand_id = candidate.id;
        let whatif = match res {
            Ok(w) => w,
            Err(e) => {
                return (
                    AdmissionDecision::Invalid(e.to_string()),
                    AdmitMeta::warm(None),
                )
            }
        };
        let meta = AdmitMeta::warm(Some(whatif.recomputed()));
        let decision = Self::decision_for(&whatif.report, cand_id);
        let AdmissionDecision::Admitted { wcrt } = decision else {
            return (decision, meta);
        };
        match whatif.into_state() {
            Some(st) => {
                self.current = st.set().clone();
                self.state = Some(st);
                if let Some(sc) = self.screen.as_mut() {
                    sc.admit(candidate);
                }
                self.order.push((cand_id, self.next_seq));
                self.next_seq += 1;
                // A successful admission settles any pending retry for
                // this flow: without the purge, a flow re-admitted
                // outside `tick` (operator action, detour restoration)
                // leaves a zombie entry whose backoff keeps doubling on
                // duplicate-id failures — and a later fault's dedup
                // then inherits that inflated backoff instead of
                // restarting at base.
                self.retry.retain(|e| e.flow.id != cand_id);
                (AdmissionDecision::Admitted { wcrt }, meta)
            }
            // Unreachable in practice (an all-bounded report implies a
            // converged state); degrade to the cold path, never panic.
            None => {
                self.state = None;
                (self.cold_admit(candidate.clone()), AdmitMeta::cold())
            }
        }
    }

    /// The seed's from-scratch admission check, kept as the fallback
    /// when no standing converged state exists.
    fn cold_admit(&mut self, candidate: SporadicFlow) -> AdmissionDecision {
        let cand_id = candidate.id;
        // `extended_with` shares the current set's crossing-segment memo
        // with the tentative set: only pairs involving the candidate's
        // path are computed afresh, the standing flows' crossing
        // structure is reused across admission attempts.
        let tentative = match self.current.extended_with(candidate) {
            Ok(s) => s,
            Err(e) => return AdmissionDecision::Invalid(e.to_string()),
        };
        let report = analyze_ef(&tentative, &self.cfg);
        let decision = Self::decision_for(&report, cand_id);
        let AdmissionDecision::Admitted { wcrt } = decision else {
            return decision;
        };
        self.current = tentative;
        if let (Some(sc), Some(f)) = (self.screen.as_mut(), self.current.flows().last()) {
            sc.admit(f);
        }
        self.order.push((cand_id, self.next_seq));
        self.next_seq += 1;
        // Mirror the warm commit: a successful admission settles any
        // pending retry for this flow (see `finish_warm`).
        self.retry.retain(|e| e.flow.id != cand_id);
        AdmissionDecision::Admitted { wcrt }
    }

    /// Counts a decision in the metrics and emits the decision event.
    fn record_decision(&mut self, decision: &AdmissionDecision, meta: AdmitMeta) {
        match decision {
            AdmissionDecision::Admitted { .. } => self.metrics.admitted += 1,
            AdmissionDecision::Rejected { .. } => self.metrics.rejected += 1,
            AdmissionDecision::Invalid(_) => self.metrics.invalid += 1,
        }
        if meta.screened {
            self.metrics.screen_hits += 1;
        } else if meta.warm {
            self.metrics.warm_hits += 1;
        } else {
            self.metrics.cold_fallbacks += 1;
        }
        if traj_obs::enabled() {
            let outcome = match decision {
                AdmissionDecision::Admitted { .. } => "admitted",
                AdmissionDecision::Rejected { .. } => "rejected",
                AdmissionDecision::Invalid(_) => "invalid",
            };
            traj_obs::counter_add("admission.decisions", 1);
            if meta.screened {
                traj_obs::counter_add("admission.screen_hits", 1);
            } else if meta.warm {
                traj_obs::counter_add("admission.warm_hits", 1);
            } else {
                traj_obs::counter_add("admission.cold_fallbacks", 1);
            }
            let mut ev = traj_obs::Event::new("admission.decision")
                .field("outcome", outcome)
                .field("flows", self.current.len())
                .field("warm", meta.warm)
                .field("screened", meta.screened);
            if let Some(closure) = meta.closure {
                ev = ev.field("closure", closure);
            }
            traj_obs::emit(ev);
        }
    }

    /// Removes a flow (session teardown). The relation memo is carried
    /// over, so a later re-admission over the same paths costs no
    /// segment recomputation, and the standing converged state is
    /// shrunk in place (only the flows that crossed the departing one
    /// are re-solved) so the next admission stays warm.
    pub fn release(&mut self, id: FlowId) -> ReleaseOutcome {
        if self.current.index_of(id).is_none() {
            return ReleaseOutcome::NotFound;
        }
        if self.current.len() == 1 {
            // FlowSet cannot be empty: the final flow stays admitted.
            return ReleaseOutcome::LastFlowRetained;
        }
        // The warm shrink removes by id from the converged state, so any
        // screen-admitted pending flows must be folded in first.
        self.settle();
        match self.current.without_flow(id) {
            Ok(rest) => {
                // Warm maintenance; a failed shrink degrades to a lazy
                // cold rebuild on the next what-if.
                self.state = self.state.take().and_then(|s| s.remove(id));
                if let Some(sc) = self.screen.as_mut() {
                    sc.release(id);
                }
                self.current = rest;
                self.order.retain(|(f, _)| *f != id);
                ReleaseOutcome::Released
            }
            Err(_) => ReleaseOutcome::NotFound,
        }
    }

    /// Re-evaluates the admitted flows on the topology degraded by
    /// `scenario`, evicting flows (per the configured [`EvictionPolicy`])
    /// until every surviving EF flow meets its deadline again. Displaced
    /// flows — both route casualties and evictees — join the retry queue
    /// with exponential backoff starting at `now`.
    ///
    /// On error (e.g. the fault kills every admitted flow) the controller
    /// state is unchanged.
    pub fn on_fault(
        &mut self,
        scenario: &FaultScenario,
        now: u64,
    ) -> Result<FaultResponse, ModelError> {
        // Same monotone-clock clamp as `tick_gated`: retry entries are
        // anchored at the effective time, never at a backwards wall
        // reading (see `clock()`).
        let now = self.advance_clock(now);
        let degraded = scenario.apply(&self.current)?;
        let mut response = FaultResponse::default();
        let mut set = degraded.surviving_set()?;

        for (idx, fate) in degraded.fates.iter().enumerate() {
            let flow = &degraded.set.flows()[idx];
            match fate {
                FlowFate::Untouched => {}
                FlowFate::Rerouted { .. } => response.rerouted.push(flow.id),
                FlowFate::Dropped { reason } => {
                    response.dropped.push((flow.id, reason.to_string()));
                    // Queue the *healthy* flow (original path): retry
                    // models repair-and-readmission.
                    if let Some(orig) = self.current.flows().iter().find(|f| f.id == flow.id) {
                        self.enqueue_retry(orig.clone(), now, format!("route lost: {reason}"));
                    }
                }
            }
        }

        // Evict until the degraded set is schedulable (or nothing is left
        // to sacrifice: FlowSet cannot be empty).
        loop {
            let report = analyze_ef(&set, &self.cfg);
            if report
                .per_flow()
                .iter()
                .all(|r| r.meets_deadline() == Some(true))
            {
                break;
            }
            if set.len() == 1 {
                response.last_flow_retained = true;
                break;
            }
            let Some(victim) = self.pick_victim(&set) else {
                break;
            };
            let Ok(rest) = set.without_flow(victim) else {
                break;
            };
            set = rest;
            response.evicted.push(victim);
            if let Some(orig) = self.current.flows().iter().find(|f| f.id == victim) {
                self.enqueue_retry(
                    orig.clone(),
                    now,
                    "evicted: unschedulable after fault".to_string(),
                );
            }
        }

        let keep: std::collections::HashSet<FlowId> = set.flows().iter().map(|f| f.id).collect();
        self.order.retain(|(f, _)| keep.contains(f));
        self.current = set;
        // Structural invalidation: paths and the universe changed in
        // ways the append/remove deltas do not model; the next what-if
        // rebuilds the converged state cold. The screen is rebuilt
        // eagerly under `Screened` so published views never go dark.
        self.state = None;
        self.screen =
            (self.tiered == TieredPolicy::Screened).then(|| AggregateCache::build(&self.current));
        self.metrics.dropped += response.dropped.len() as u64;
        self.metrics.evicted += response.evicted.len() as u64;
        if traj_obs::enabled() {
            traj_obs::emit(
                traj_obs::Event::new("admission.fault")
                    .field("dropped", response.dropped.len())
                    .field("evicted", response.evicted.len())
                    .field("rerouted", response.rerouted.len())
                    .field("retry_depth", self.retry.len()),
            );
            traj_obs::gauge_set("admission.retry_depth", self.retry.len() as i64);
        }
        Ok(response)
    }

    /// Drains due retry-queue entries: each gets one full admission
    /// attempt. Success removes the entry; failure doubles its backoff
    /// (saturating at the configured [`RetryPolicy`] cap). Returns the
    /// decisions taken this tick, in queue order.
    ///
    /// `now` is interpreted on the controller's monotone clock (see
    /// [`Self::clock`]): a value below an earlier tick is clamped, so a
    /// caller feeding wall-derived times through a clock step cannot
    /// fire or strand backoff entries.
    pub fn tick(&mut self, now: u64) -> Vec<(FlowId, AdmissionDecision)> {
        self.tick_gated(now, |_| true)
    }

    /// [`Self::tick`] with an admissibility gate: only due entries whose
    /// flow passes `admissible` are attempted. Gated-out entries are
    /// left untouched — no attempt is counted and their backoff does not
    /// grow, because the flow never got a chance to fail. The soak
    /// driver gates on "the flow's path is clear of every active fault"
    /// so a flow displaced by an unrepaired fault does not burn backoff
    /// doublings on attempts that are known to be futile.
    ///
    /// Entries are tracked by flow id, not queue index: a successful
    /// re-admission purges its own entry inside the commit (see
    /// `finish_warm`), shifting the queue under this loop.
    pub fn tick_gated(
        &mut self,
        now: u64,
        admissible: impl Fn(&SporadicFlow) -> bool,
    ) -> Vec<(FlowId, AdmissionDecision)> {
        // See `clock()` for the monotonicity contract: a backwards
        // caller clock is clamped to the high-water mark so backoff
        // entries neither fire early nor strand.
        let now = self.advance_clock(now);
        let _span = traj_obs::ScopedTimer::new("admission.tick").field("now", now);
        let flows: Vec<SporadicFlow> = self
            .retry
            .iter()
            .filter(|e| e.next_attempt <= now && admissible(&e.flow))
            .map(|e| e.flow.clone())
            .collect();
        self.metrics.retry_attempts += flows.len() as u64;
        // Batched drain: the due entries' what-ifs run in parallel
        // against the standing state; winners commit in queue order.
        let decisions = self.try_admit_batch(flows);
        let policy = self.retry_policy;
        for (id, decision) in &decisions {
            match decision {
                // The commit already purged this flow's entry.
                AdmissionDecision::Admitted { .. } => self.metrics.readmitted += 1,
                _ => {
                    if let Some(e) = self.retry.iter_mut().find(|e| e.flow.id == *id) {
                        e.attempts += 1;
                        e.backoff = policy.next_backoff(e.backoff);
                        e.next_attempt = now.saturating_add(e.backoff);
                    }
                }
            }
        }
        if traj_obs::enabled() && !decisions.is_empty() {
            traj_obs::emit(
                traj_obs::Event::new("admission.tick")
                    .field("attempted", decisions.len())
                    .field("retry_depth", self.retry.len()),
            );
            traj_obs::gauge_set("admission.retry_depth", self.retry.len() as i64);
        }
        decisions
    }

    fn enqueue_retry(&mut self, flow: SporadicFlow, now: u64, reason: String) {
        if self.retry.iter().any(|e| e.flow.id == flow.id) {
            return;
        }
        let base = self.retry_policy.base;
        self.retry.push(RetryEntry {
            flow,
            next_attempt: now.saturating_add(base),
            backoff: base,
            attempts: 0,
            reason,
        });
        self.metrics.retry_depth_peak = self.metrics.retry_depth_peak.max(self.retry.len() as u64);
    }

    /// Picks the next eviction victim among `set`'s flows per the policy.
    fn pick_victim(&self, set: &FlowSet) -> Option<FlowId> {
        let seq = |id: FlowId| -> u64 {
            self.order
                .iter()
                .find(|(f, _)| *f == id)
                .map(|(_, s)| *s)
                .unwrap_or(0)
        };
        let class_rank = |c: &TrafficClass| -> u8 {
            match c {
                TrafficClass::BestEffort => 0,
                TrafficClass::Af(k) => *k,
                TrafficClass::Ef => u8::MAX,
            }
        };
        set.flows()
            .iter()
            .max_by_key(|f| match self.policy {
                // Lowest class first; ties latest-admitted-first.
                EvictionPolicy::LowestPriorityFirst => (u8::MAX - class_rank(&f.class), seq(f.id)),
                EvictionPolicy::LatestAdmittedFirst => (0, seq(f.id)),
            })
            .map(|f| f.id)
    }
}

/// Read-only what-if: the decision an [`AdmissionController`] holding
/// `state` would take for `candidate`, computed without committing
/// anything. Evaluation runs entirely against `&ConvergedState`, so
/// many what-ifs can run concurrently on the same snapshot — this is
/// the serving primitive behind the admission daemon's `whatif`
/// endpoint, and it decides through the exact code path `try_admit`
/// uses ([`AdmissionController::decision_for`]), so a concurrent
/// read is bit-identical to the sequential library answer.
pub fn evaluate_whatif(state: &ConvergedState, candidate: SporadicFlow) -> AdmissionDecision {
    let cand_id = candidate.id;
    match state.extend(candidate) {
        Err(e) => AdmissionDecision::Invalid(e.to_string()),
        Ok(whatif) => AdmissionController::decision_for(&whatif.report, cand_id),
    }
}

/// Tiered read-only what-if: screens `candidate` against the published
/// aggregate cache first and only falls back to the exact
/// [`evaluate_whatif`] when the screen cannot vouch. Returns the
/// decision plus whether the screen served it (for hit/fallback
/// counters). `screen` and `state` must describe the same standing set.
///
/// On a screen pass the candidate is still validated structurally
/// (duplicate id, unknown path nodes) with the same [`ModelError`]
/// strings the exact path would produce — without cloning the flow set,
/// so a screened what-if stays O(path).
pub fn evaluate_whatif_screened(
    screen: &AggregateCache,
    state: &ConvergedState,
    candidate: SporadicFlow,
) -> (AdmissionDecision, bool) {
    if let ScreenOutcome::Pass { bound } = screen.screen_admit(&candidate) {
        let set = state.set();
        if set.index_of(candidate.id).is_some() {
            return (
                AdmissionDecision::Invalid(
                    ModelError::DuplicateFlowId { id: candidate.id }.to_string(),
                ),
                true,
            );
        }
        for &n in candidate.path.nodes() {
            if !set.network().contains(n) {
                return (
                    AdmissionDecision::Invalid(
                        ModelError::UnknownNode {
                            flow: candidate.id,
                            node: n,
                        }
                        .to_string(),
                    ),
                    true,
                );
            }
        }
        return (AdmissionDecision::Admitted { wcrt: bound }, true);
    }
    (evaluate_whatif(state, candidate), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::Path;

    fn candidate(id: u32, period: i64, deadline: i64) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            Path::from_ids([2, 3, 4]).unwrap(),
            period,
            4,
            0,
            deadline,
        )
        .unwrap()
    }

    #[test]
    fn admits_light_flow() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(10, 360, 200)) {
            AdmissionDecision::Admitted { wcrt } => assert!(wcrt <= 200),
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 6);
    }

    #[test]
    fn rejects_when_existing_flow_would_miss() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // A heavy flow on the shared trunk pushes someone past a deadline.
        let heavy =
            SporadicFlow::uniform(11, Path::from_ids([2, 3, 4, 7]).unwrap(), 36, 12, 0, 10_000)
                .unwrap();
        match ac.try_admit(heavy) {
            AdmissionDecision::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 5, "state unchanged on rejection");
    }

    #[test]
    fn rejects_candidate_missing_its_own_deadline() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(12, 360, 5)) {
            AdmissionDecision::Rejected { victim, .. } => assert_eq!(victim, FlowId(12)),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_is_invalid() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(1, 360, 200)) {
            AdmissionDecision::Invalid(msg) => assert!(msg.contains("duplicate")),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn release_frees_capacity() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(ac.release(FlowId(10)), ReleaseOutcome::Released);
        assert_eq!(ac.release(FlowId(10)), ReleaseOutcome::NotFound);
        assert_eq!(ac.flows().len(), 5);
    }

    #[test]
    fn last_flow_is_retained_not_silently_dropped() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        for id in [1u32, 2, 3, 4] {
            assert_eq!(ac.release(FlowId(id)), ReleaseOutcome::Released);
        }
        let last = ac.flows().flows()[0].id;
        assert_eq!(ac.release(last), ReleaseOutcome::LastFlowRetained);
        assert_eq!(ac.flows().len(), 1, "the final flow stays admitted");
        assert!(!ac.release(last).released());
    }

    #[test]
    fn admission_reuses_the_relation_memo() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        let warm = ac.flows().relation_cache().len();
        assert!(warm > 0, "first admission warms the memo");
        // Release and re-admit over the same path: the memo survives both
        // transitions (entries are keyed by path values, which recur).
        assert!(ac.release(FlowId(10)).released());
        assert_eq!(ac.flows().relation_cache().len(), warm);
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(ac.flows().relation_cache().len(), warm);
    }

    #[test]
    fn fault_drops_route_casualties_and_queues_them() {
        use traj_model::NodeId;
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // Node 9 is the source of flow 2: it cannot be rerouted.
        let resp = ac
            .on_fault(&FaultScenario::node_down(NodeId(9)), 0)
            .unwrap();
        assert!(resp.dropped.iter().any(|(id, _)| *id == FlowId(2)));
        assert!(ac.flows().index_of(FlowId(2)).is_none());
        assert!(ac.retry_queue().iter().any(|e| e.flow.id == FlowId(2)));
    }

    #[test]
    fn unschedulable_degradation_evicts_until_guaranteed() {
        // Load the trunk close to capacity, then kill a link so the
        // reroutes concentrate load and someone misses: eviction must
        // restore the guarantee for everyone left.
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut id = 100;
        while let AdmissionDecision::Admitted { .. } = ac.try_admit(candidate(id, 72, 60)) {
            id += 1;
        }
        let before = ac.flows().len();
        let resp = ac
            .on_fault(
                &FaultScenario::link_down(traj_model::NodeId(3), traj_model::NodeId(4)),
                0,
            )
            .unwrap();
        let report = analyze_ef(ac.flows(), &AnalysisConfig::default());
        assert!(
            report
                .per_flow()
                .iter()
                .all(|r| r.meets_deadline() == Some(true))
                || ac.flows().len() == 1,
            "survivors must be guaranteed"
        );
        assert_eq!(
            ac.flows().len() + resp.evicted.len() + resp.dropped.len(),
            before,
            "every displaced flow is accounted for"
        );
    }

    #[test]
    fn eviction_policies_pick_different_victims() {
        use traj_model::flow::TrafficClass;
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        // A BE flow admitted *before* an EF flow: LowestPriorityFirst
        // must pick the BE flow, LatestAdmittedFirst the EF flow.
        let be = SporadicFlow::uniform(50, Path::from_ids([2, 3, 4]).unwrap(), 360, 4, 0, 10_000)
            .unwrap()
            .with_class(TrafficClass::BestEffort);
        let ef = candidate(51, 360, 200);
        let mut extended = set.clone();
        for f in [be, ef] {
            extended = extended.extended_with(f).unwrap();
        }
        let low = AdmissionController::with_policy(
            extended.clone(),
            cfg.clone(),
            EvictionPolicy::LowestPriorityFirst,
        );
        let late = AdmissionController::with_policy(
            extended.clone(),
            cfg.clone(),
            EvictionPolicy::LatestAdmittedFirst,
        );
        assert_eq!(low.pick_victim(&extended), Some(FlowId(50)));
        assert_eq!(late.pick_victim(&extended), Some(FlowId(51)));
    }

    #[test]
    fn retry_backoff_doubles_until_capacity_returns() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // Fill to rejection so a retried flow cannot come back.
        let mut id = 100;
        while let AdmissionDecision::Admitted { .. } = ac.try_admit(candidate(id, 72, 60)) {
            id += 1;
        }
        // Displace one admitted flow by hand through a fault on its path:
        // use the eviction path via an impossible candidate instead —
        // simpler: drop flow 2's source.
        let resp = ac
            .on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(!resp.dropped.is_empty());
        let n_queued = ac.retry_queue().len();
        assert!(n_queued > 0);
        let first_attempt = ac.retry_queue()[0].next_attempt;
        // Nothing due before the backoff expires.
        assert!(ac.tick(first_attempt - 1).is_empty());
        let decisions = ac.tick(first_attempt);
        assert_eq!(decisions.len(), 1);
        if !matches!(decisions[0].1, AdmissionDecision::Admitted { .. }) {
            let e = &ac.retry_queue()[0];
            assert_eq!(e.attempts, 1);
            assert_eq!(e.backoff, 2 * RetryPolicy::default().base);
            assert_eq!(e.next_attempt, first_attempt + e.backoff);
        }
    }

    #[test]
    fn retry_backoff_saturates_at_the_configured_cap() {
        // Fill to rejection so the displaced flow keeps failing
        // re-admission, then watch its backoff double into the cap.
        let cap = 20;
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default())
            .with_retry_policy(RetryPolicy { base: 8, cap });
        let mut id = 100;
        while let AdmissionDecision::Admitted { .. } = ac.try_admit(candidate(id, 72, 60)) {
            id += 1;
        }
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        let queued: Vec<FlowId> = ac.retry_queue().iter().map(|e| e.flow.id).collect();
        assert!(!queued.is_empty());
        let mut saturated = false;
        for _ in 0..6 {
            let Some(e) = ac.retry_queue().iter().find(|e| e.flow.id == queued[0]) else {
                break; // readmitted — nothing left to saturate
            };
            let due = e.next_attempt;
            ac.tick(due);
            if let Some(e) = ac.retry_queue().iter().find(|e| e.flow.id == queued[0]) {
                assert!(e.backoff <= cap, "backoff {} exceeds cap {cap}", e.backoff);
                saturated |= e.backoff == cap;
            }
        }
        if ac.retry_queue().iter().any(|e| e.flow.id == queued[0]) {
            assert!(saturated, "six failed attempts must reach the 20-tick cap");
        }
    }

    #[test]
    fn retry_policy_cap_below_base_clamps_to_base() {
        let p = RetryPolicy { base: 10, cap: 1 };
        assert_eq!(p.effective_cap(), 10);
        assert_eq!(p.next_backoff(10), 10);
        // Saturating doubling: no u64 wrap even at extreme values.
        let huge = RetryPolicy {
            base: 1,
            cap: u64::MAX,
        };
        assert_eq!(huge.next_backoff(u64::MAX / 2 + 1), u64::MAX);
    }

    #[test]
    fn metrics_count_decisions_and_displacements() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Invalid(_)
        ));
        assert!(matches!(
            ac.try_admit(candidate(12, 360, 5)),
            AdmissionDecision::Rejected { .. }
        ));
        let m = ac.metrics();
        assert_eq!((m.admitted, m.rejected, m.invalid), (1, 1, 1));
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        let m = ac.metrics();
        assert!(m.dropped >= 1);
        assert!(m.retry_depth_peak >= 1);
        let due = ac.retry_queue()[0].next_attempt;
        ac.tick(due);
        let m = ac.metrics();
        assert!(m.retry_attempts >= 1);
        assert_eq!(
            m.readmitted, 1,
            "the repaired topology takes flow 2 back on the first due tick"
        );
    }

    #[test]
    fn admission_emits_events_when_sink_installed() {
        let _g = traj_obs::test_guard();
        let ring = std::sync::Arc::new(traj_obs::RingSink::new(64));
        traj_obs::set_sink(ring.clone());
        traj_obs::reset_metrics();
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.try_admit(candidate(10, 360, 200));
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        let due = ac.retry_queue()[0].next_attempt;
        ac.tick(due);
        traj_obs::disable();
        let events = ring.drain();
        assert!(events.iter().any(|e| e.name == "admission.decision"));
        assert!(events.iter().any(|e| e.name == "admission.fault"));
        assert!(events.iter().any(|e| e.name == "admission.tick"));
        assert!(events.iter().any(|e| e.name == "span"
            && e.get("name") == Some(&traj_obs::Value::Str("admission.tick".into()))));
        traj_obs::reset_metrics();
    }

    #[test]
    fn readmission_after_release_clears_the_queue() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let resp = ac
            .on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(resp.dropped.iter().any(|(id, _)| *id == FlowId(2)));
        // The topology is "repaired" (the controller re-checks against
        // the full network); the queued flow comes back on the next due
        // tick.
        let due = ac.retry_queue()[0].next_attempt;
        let decisions = ac.tick(due);
        assert!(matches!(
            decisions[0],
            (FlowId(2), AdmissionDecision::Admitted { .. })
        ));
        assert!(ac.retry_queue().is_empty());
        assert!(ac.flows().index_of(FlowId(2)).is_some());
    }

    #[test]
    fn admission_fills_up_then_rejects() {
        // Keep admitting identical light flows until rejection: the
        // controller must reject in finite time (capacity is finite).
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut admitted = 0;
        for id in 100..200 {
            match ac.try_admit(candidate(id, 72, 60)) {
                AdmissionDecision::Admitted { .. } => admitted += 1,
                AdmissionDecision::Rejected { .. } => break,
                AdmissionDecision::Invalid(m) => panic!("unexpected invalid: {m}"),
            }
        }
        assert!(admitted >= 1, "at least one light flow fits");
        assert!(admitted < 100, "capacity is finite");
    }

    #[test]
    fn warm_admissions_decide_exactly_like_a_cold_controller() {
        // Two controllers, same operation sequence; `warm` keeps its
        // converged state hot, `cold` has it knocked out before every
        // decision. Decisions and final sets must agree exactly.
        let mut warm = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut cold = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let script: Vec<(u32, i64, i64)> = vec![
            (10, 360, 200),
            (11, 72, 60),
            (12, 360, 5),
            (13, 36, 10_000),
            (14, 144, 150),
        ];
        for (id, period, deadline) in script {
            cold.state = None;
            let dw = warm.try_admit(candidate(id, period, deadline));
            let dc = cold.try_admit(candidate(id, period, deadline));
            assert_eq!(dw, dc, "flow {id}");
        }
        assert!(warm.release(FlowId(10)).released());
        cold.state = None;
        assert!(cold.release(FlowId(10)).released());
        let dw = warm.try_admit(candidate(20, 144, 150));
        cold.state = None;
        let dc = cold.try_admit(candidate(20, 144, 150));
        assert_eq!(dw, dc);
        assert_eq!(
            warm.flows()
                .flows()
                .iter()
                .map(|f| f.id)
                .collect::<Vec<_>>(),
            cold.flows()
                .flows()
                .iter()
                .map(|f| f.id)
                .collect::<Vec<_>>(),
        );
        assert!(warm.metrics().warm_hits >= 5, "warm path actually ran");
    }

    #[test]
    fn batch_matches_sequential_admission_order() {
        // A batch must produce exactly the decisions sequential
        // try_admit calls produce in the same order.
        let cands: Vec<SporadicFlow> = vec![
            candidate(10, 360, 200),
            candidate(11, 360, 5),   // misses its own deadline
            candidate(10, 360, 200), // duplicate of the first winner
            candidate(12, 144, 150),
        ];
        let mut batch = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut seq = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let got = batch.try_admit_batch(cands.clone());
        let want: Vec<(FlowId, AdmissionDecision)> = cands
            .into_iter()
            .map(|c| (c.id, seq.try_admit(c)))
            .collect();
        // Outcomes match sequential evaluation exactly; a provisional
        // rejection's diagnostic victim is allowed to differ (it is
        // named against the standing set at fan-out time).
        for ((gid, g), (wid, w)) in got.iter().zip(&want) {
            assert_eq!(gid, wid);
            match (g, w) {
                (AdmissionDecision::Rejected { .. }, AdmissionDecision::Rejected { .. }) => {}
                _ => assert_eq!(g, w),
            }
        }
        assert_eq!(batch.metrics().batches, 1);
        assert_eq!(batch.metrics().batch_peak, 4);
        assert_eq!(
            batch
                .flows()
                .flows()
                .iter()
                .map(|f| f.id)
                .collect::<Vec<_>>(),
            seq.flows().flows().iter().map(|f| f.id).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn empty_and_singleton_batches_take_the_direct_path() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(ac.try_admit_batch(Vec::new()).is_empty());
        let got = ac.try_admit_batch(vec![candidate(10, 360, 200)]);
        assert!(matches!(got[0].1, AdmissionDecision::Admitted { .. }));
        assert_eq!(ac.metrics().batches, 0, "singletons are not batches");
    }

    #[test]
    fn fault_invalidates_the_warm_state_and_counts_a_cold_fallback() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(ac.state.is_some(), "admission leaves a standing state");
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(ac.state.is_none(), "a fault is structural invalidation");
        // The next admission rebuilds the state lazily and serves warm.
        let before = ac.metrics().warm_hits;
        assert!(matches!(
            ac.try_admit(candidate(30, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(ac.metrics().warm_hits, before + 1);
        assert!(ac.state.is_some());
    }

    #[test]
    fn backoff_resets_on_successful_readmission_not_on_fault() {
        // Regression: a flow re-admitted outside `tick` (operator
        // action, detour restoration) used to leave a zombie retry
        // entry; later due attempts failed as duplicate ids, doubling
        // the backoff, and the *next* fault's dedup inherited that
        // inflated schedule. A successful admission must settle the
        // retry entry so a fresh displacement restarts at base.
        let base = RetryPolicy::default().base;
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let orig = paper_example()
            .flows()
            .iter()
            .find(|f| f.id == FlowId(2))
            .cloned()
            .unwrap();
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(ac.retry_queue().iter().any(|e| e.flow.id == FlowId(2)));
        // The route is repaired out of band and the flow re-admitted
        // directly, not via the retry queue.
        assert!(matches!(
            ac.try_admit(orig),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(
            ac.retry_queue().iter().all(|e| e.flow.id != FlowId(2)),
            "successful admission must purge the retry entry"
        );
        // A later tick has nothing to attempt for flow 2 (no zombie
        // duplicate-id failures inflating the backoff). Probed at 50 —
        // past the purged entry's original due time — rather than a
        // huge value, so the monotone clock clamp (see `clock()`) does
        // not pin the second fault's schedule below.
        assert!(ac.tick(50).is_empty());
        // A second displacement starts a *fresh* schedule at base.
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 100)
            .unwrap();
        let e = ac
            .retry_queue()
            .iter()
            .find(|e| e.flow.id == FlowId(2))
            .unwrap();
        assert_eq!(e.backoff, base);
        assert_eq!(e.attempts, 0);
        assert_eq!(e.next_attempt, 100 + base);
        assert!(ac.check_invariants().is_empty());
    }

    #[test]
    fn gated_tick_leaves_blocked_entries_untouched() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        let due = ac.retry_queue()[0].next_attempt;
        let attempts_before = ac.metrics().retry_attempts;
        // Gate every flow out (the fault is "still active"): no attempt
        // runs, no backoff grows.
        assert!(ac.tick_gated(due, |_| false).is_empty());
        let e = &ac.retry_queue()[0];
        assert_eq!(e.attempts, 0);
        assert_eq!(e.backoff, RetryPolicy::default().base);
        assert_eq!(ac.metrics().retry_attempts, attempts_before);
        // Lift the gate: the flow comes back and its entry is purged.
        let decisions = ac.tick_gated(due, |_| true);
        assert!(matches!(
            decisions[0],
            (FlowId(2), AdmissionDecision::Admitted { .. })
        ));
        assert!(ac.retry_queue().is_empty());
        assert!(ac.check_invariants().is_empty());
    }

    #[test]
    fn converged_state_accessor_builds_lazily_and_audits_clean() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(ac.state.is_none());
        let audit = ac.converged_state().map(|st| st.verify_bit_identity());
        assert!(audit.map(|a| a.passed()).unwrap_or(false));
        assert!(ac.state.is_some(), "the accessor leaves the state warm");
    }

    #[test]
    fn decision_events_carry_warm_flag_and_closure_size() {
        let _g = traj_obs::test_guard();
        let ring = std::sync::Arc::new(traj_obs::RingSink::new(64));
        traj_obs::set_sink(ring.clone());
        traj_obs::reset_metrics();
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.try_admit(candidate(10, 360, 200));
        ac.try_admit_batch(vec![candidate(11, 144, 150), candidate(12, 360, 5)]);
        let metrics = traj_obs::metrics_snapshot();
        traj_obs::disable();
        let events = ring.drain();
        let decision = events
            .iter()
            .find(|e| e.name == "admission.decision")
            .expect("decision event");
        assert_eq!(decision.get("warm"), Some(&traj_obs::Value::Bool(true)));
        assert!(decision.get("closure").is_some());
        assert!(events.iter().any(|e| e.name == "admission.batch"));
        let counter = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(counter("admission.warm_hits") >= 1);
        assert_eq!(counter("admission.batch_size"), 2);
        traj_obs::reset_metrics();
    }

    #[test]
    fn clock_is_a_monotone_envelope() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert_eq!(ac.clock(), 0);
        assert!(ac.tick(100).is_empty());
        assert_eq!(ac.clock(), 100);
        // A backwards tick (an NTP step on a daemon feeding wall-derived
        // times) is clamped to the high-water mark…
        assert!(ac.tick(40).is_empty());
        assert_eq!(ac.clock(), 100);
        // …and a fault at a bogus small `now` anchors its retry entries
        // on the envelope, not the bogus clock: no premature fire.
        let base = RetryPolicy::default().base;
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 50)
            .unwrap();
        let e = ac
            .retry_queue()
            .iter()
            .find(|e| e.flow.id == FlowId(2))
            .unwrap();
        assert_eq!(e.next_attempt, 100 + base);
        assert!(ac.check_invariants().is_empty());
    }

    #[test]
    fn clock_regressions_are_counted() {
        let _g = traj_obs::test_guard();
        let ring = std::sync::Arc::new(traj_obs::RingSink::new(16));
        traj_obs::set_sink(ring.clone());
        traj_obs::reset_metrics();
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.tick(100);
        ac.tick(40);
        let metrics = traj_obs::metrics_snapshot();
        traj_obs::disable();
        let events = ring.drain();
        assert!(events
            .iter()
            .any(|e| e.name == "admission.clock_regression"));
        let regressions = metrics
            .iter()
            .find(|(k, _)| k == "admission.clock_regressions")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(regressions, 1);
        traj_obs::reset_metrics();
    }

    #[test]
    fn snapshot_restore_round_trip_preserves_everything() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 100)
            .unwrap();
        assert!(ac.tick(105).is_empty()); // advance the clock mid-backoff
        let snap = ac.snapshot();
        let mut restored = AdmissionController::restore(snap).unwrap();
        assert_eq!(restored.clock(), ac.clock());
        assert_eq!(restored.metrics(), ac.metrics());
        assert_eq!(restored.retry_queue(), ac.retry_queue());
        assert_eq!(restored.policy(), ac.policy());
        assert_eq!(restored.retry_policy(), ac.retry_policy());
        let ids =
            |a: &AdmissionController| a.flows().flows().iter().map(|f| f.id).collect::<Vec<_>>();
        assert_eq!(ids(&restored), ids(&ac));
        assert!(restored.check_invariants().is_empty());
        // The restored controller behaves identically from here on:
        // drain both retry queues at the entry's due time.
        let due = ac.retry_queue()[0].next_attempt;
        assert_eq!(ac.tick(due), restored.tick(due));
        assert_eq!(restored.metrics(), ac.metrics());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        // A duplicated retry entry.
        let mut snap = ac.snapshot();
        let dup = snap.retry[0].clone();
        snap.retry.push(dup);
        assert!(matches!(
            AdmissionController::restore(snap),
            Err(RestoreError::Inconsistent(_))
        ));
        // A sequence counter behind a recorded admission.
        let mut snap = ac.snapshot();
        snap.next_seq = 0;
        assert!(matches!(
            AdmissionController::restore(snap),
            Err(RestoreError::Inconsistent(_))
        ));
        // An entry stranded beyond the monotone-clock bound.
        let mut snap = ac.snapshot();
        snap.retry[0].next_attempt = u64::MAX;
        assert!(matches!(
            AdmissionController::restore(snap),
            Err(RestoreError::Inconsistent(_))
        ));
    }

    /// A light standing set the screen can vouch for: low utilisation,
    /// generous deadlines, well below the Charny threshold.
    fn light_controller(tiered: TieredPolicy) -> AdmissionController {
        let set = traj_model::examples::line_topology(2, 3, 4000, 4, 0, 1).unwrap();
        AdmissionController::new(set, AnalysisConfig::default()).with_tiered(tiered)
    }

    fn light_candidate(id: u32, deadline: i64) -> SporadicFlow {
        SporadicFlow::uniform(id, Path::from_ids([1, 2, 3]).unwrap(), 4000, 4, 0, deadline)
            .unwrap()
            .with_class(traj_model::flow::TrafficClass::Ef)
    }

    #[test]
    fn screened_admits_without_running_the_fixed_point() {
        let mut ac = light_controller(TieredPolicy::Screened);
        for id in 100..110 {
            assert!(matches!(
                ac.try_admit(light_candidate(id, 50_000)),
                AdmissionDecision::Admitted { .. }
            ));
        }
        assert_eq!(ac.metrics().screen_hits, 10);
        assert_eq!(ac.metrics().warm_hits, 0);
        assert_eq!(ac.metrics().cold_fallbacks, 0);
        assert_eq!(ac.pending_settlement(), 0, "no state was ever built");
        assert!(ac.check_invariants().is_empty());
        // The settled state covers everyone and every deadline holds.
        let st = ac.converged_state().unwrap();
        assert_eq!(st.set().len(), 12);
        assert!(st
            .report()
            .per_flow()
            .iter()
            .all(|r| r.meets_deadline() == Some(true)));
    }

    #[test]
    fn screened_decisions_match_the_pure_controller() {
        let mut pure = light_controller(TieredPolicy::TrajectoryOnly);
        let mut tiered = light_controller(TieredPolicy::Screened);
        // Feasible admits, an infeasible deadline, a duplicate id, a
        // release, then more admits: kinds (and victims) must agree.
        let script: Vec<SporadicFlow> = vec![
            light_candidate(100, 50_000),
            light_candidate(101, 50_000),
            light_candidate(102, 5),      // misses its own deadline
            light_candidate(100, 50_000), // duplicate
            light_candidate(103, 50_000),
        ];
        for cand in script {
            let p = pure.try_admit(cand.clone());
            let t = tiered.try_admit(cand);
            match (&p, &t) {
                (AdmissionDecision::Admitted { .. }, AdmissionDecision::Admitted { .. }) => {}
                _ => assert_eq!(p, t),
            }
        }
        assert_eq!(pure.release(FlowId(101)), tiered.release(FlowId(101)));
        let p = pure.try_admit(light_candidate(104, 50_000));
        let t = tiered.try_admit(light_candidate(104, 50_000));
        assert!(matches!(p, AdmissionDecision::Admitted { .. }));
        assert!(matches!(t, AdmissionDecision::Admitted { .. }));
        // Settled standing analyses are bit-identical.
        let pb = pure.converged_state().unwrap().report().bounds();
        let tb = tiered.converged_state().unwrap().report().bounds();
        assert_eq!(pb, tb);
        assert!(tiered.metrics().screen_hits > 0, "the screen served admits");
        assert!(tiered.check_invariants().is_empty());
    }

    #[test]
    fn screen_fallback_still_decides_exactly() {
        // paper_example sits above the Charny threshold: every screened
        // decision must fall back and agree with the pure path exactly.
        let cfg = AnalysisConfig::default();
        let mut pure = AdmissionController::new(paper_example(), cfg.clone());
        let mut tiered =
            AdmissionController::new(paper_example(), cfg).with_tiered(TieredPolicy::Screened);
        for (id, deadline) in [(10u32, 200i64), (11, 5), (12, 200)] {
            let p = pure.try_admit(candidate(id, 360, deadline));
            let t = tiered.try_admit(candidate(id, 360, deadline));
            assert_eq!(p, t, "fallback decisions are bit-identical");
        }
        assert_eq!(tiered.metrics().screen_hits, 0);
        assert!(tiered.metrics().screen_fallbacks >= 3);
    }

    #[test]
    fn snapshot_round_trips_the_tiered_policy() {
        let mut ac = light_controller(TieredPolicy::Screened);
        assert!(matches!(
            ac.try_admit(light_candidate(100, 50_000)),
            AdmissionDecision::Admitted { .. }
        ));
        let snap = ac.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ControllerSnapshot = serde_json::from_str(&json).unwrap();
        let restored = AdmissionController::restore(back).unwrap();
        assert_eq!(restored.tiered(), TieredPolicy::Screened);
        assert_eq!(restored.flows().len(), ac.flows().len());
        // Pre-tiering snapshots (no field) default to TrajectoryOnly.
        let stripped = json.replace(",\"tiered\":\"Screened\"", "");
        assert_ne!(stripped, json, "the field must actually be stripped");
        let old: ControllerSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(
            AdmissionController::restore(old).unwrap().tiered(),
            TieredPolicy::TrajectoryOnly
        );
    }

    #[test]
    fn screened_whatif_matches_controller_outcomes() {
        let mut ac = light_controller(TieredPolicy::Screened);
        ac.try_admit(light_candidate(100, 50_000));
        let screen = ac.screen_cache().cloned().unwrap();
        let state = ac.converged_state().unwrap().clone();
        let (d, hit) = evaluate_whatif_screened(&screen, &state, light_candidate(101, 50_000));
        assert!(hit);
        assert!(matches!(d, AdmissionDecision::Admitted { .. }));
        // Duplicate id: same Invalid string as the exact path.
        let (d, hit) = evaluate_whatif_screened(&screen, &state, light_candidate(100, 50_000));
        assert!(hit);
        let exact = evaluate_whatif(&state, light_candidate(100, 50_000));
        assert_eq!(d, exact);
        // Tight deadline: screen falls back, exact rejection.
        let (d, hit) = evaluate_whatif_screened(&screen, &state, light_candidate(102, 5));
        assert!(!hit);
        assert_eq!(d, evaluate_whatif(&state, light_candidate(102, 5)));
    }
}
