//! Deterministic admission control for the EF class.
//!
//! The paper (§6.2, discussing [12]) argues that deterministic guarantees
//! require admission control based on *worst-case* response times and
//! jitters, not measurements. [`AdmissionController`] implements exactly
//! that: a candidate EF flow is admitted iff, after adding it, **every**
//! EF flow (existing and new) still meets its deadline under the
//! Property 3 bound.

use serde::{Deserialize, Serialize};
use traj_analysis::{analyze_ef, AnalysisConfig};
use traj_model::{FlowId, FlowSet, ModelError, SporadicFlow};

/// Why a flow was rejected, or the bounds it was admitted with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted; the bound computed for the new flow.
    Admitted {
        /// Property 3 bound of the new flow.
        wcrt: i64,
    },
    /// Rejected: some flow (possibly the candidate) would miss its
    /// deadline.
    Rejected {
        /// The first flow that would miss, with its bound (`None` when
        /// the analysis diverged).
        victim: FlowId,
        /// The offending bound.
        wcrt: Option<i64>,
    },
    /// Rejected: the candidate is malformed for this network.
    Invalid(String),
}

/// Stateful admission controller for a DiffServ domain.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    current: FlowSet,
    cfg: AnalysisConfig,
}

impl AdmissionController {
    /// Starts from an existing (already guaranteed) flow set.
    pub fn new(current: FlowSet, cfg: AnalysisConfig) -> Self {
        AdmissionController { current, cfg }
    }

    /// The current flow set.
    pub fn flows(&self) -> &FlowSet {
        &self.current
    }

    /// Tries to admit `candidate`; on success the controller's state is
    /// updated.
    pub fn try_admit(&mut self, candidate: SporadicFlow) -> AdmissionDecision {
        let cand_id = candidate.id;
        // `extended_with` shares the current set's crossing-segment memo
        // with the tentative set: only pairs involving the candidate's
        // path are computed afresh, the standing flows' crossing
        // structure is reused across admission attempts.
        let tentative = match self.current.extended_with(candidate) {
            Ok(s) => s,
            Err(e @ ModelError::DuplicateFlowId { .. })
            | Err(e @ ModelError::UnknownNode { .. }) => {
                return AdmissionDecision::Invalid(e.to_string())
            }
            Err(e) => return AdmissionDecision::Invalid(e.to_string()),
        };
        let report = analyze_ef(&tentative, &self.cfg);
        for r in report.per_flow() {
            if r.meets_deadline() != Some(true) {
                return AdmissionDecision::Rejected {
                    victim: r.flow,
                    wcrt: r.wcrt.value(),
                };
            }
        }
        let wcrt = report
            .for_flow(cand_id)
            .and_then(|r| r.wcrt.value())
            .expect("candidate is EF or analysis covered it");
        self.current = tentative;
        AdmissionDecision::Admitted { wcrt }
    }

    /// Removes a flow (session teardown); `true` when it existed. The
    /// relation memo is carried over, so a later re-admission over the
    /// same paths costs no segment recomputation.
    pub fn release(&mut self, id: FlowId) -> bool {
        if self.current.index_of(id).is_none() {
            return false;
        }
        if self.current.len() == 1 {
            return false; // keep the last flow; FlowSet cannot be empty
        }
        self.current = self
            .current
            .without_flow(id)
            .expect("removal keeps the set valid");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::Path;

    fn candidate(id: u32, period: i64, deadline: i64) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            Path::from_ids([2, 3, 4]).unwrap(),
            period,
            4,
            0,
            deadline,
        )
        .unwrap()
    }

    #[test]
    fn admits_light_flow() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(10, 360, 200)) {
            AdmissionDecision::Admitted { wcrt } => assert!(wcrt <= 200),
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 6);
    }

    #[test]
    fn rejects_when_existing_flow_would_miss() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // A heavy flow on the shared trunk pushes someone past a deadline.
        let heavy =
            SporadicFlow::uniform(11, Path::from_ids([2, 3, 4, 7]).unwrap(), 36, 12, 0, 10_000)
                .unwrap();
        match ac.try_admit(heavy) {
            AdmissionDecision::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 5, "state unchanged on rejection");
    }

    #[test]
    fn rejects_candidate_missing_its_own_deadline() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(12, 360, 5)) {
            AdmissionDecision::Rejected { victim, .. } => assert_eq!(victim, FlowId(12)),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_is_invalid() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(1, 360, 200)) {
            AdmissionDecision::Invalid(msg) => assert!(msg.contains("duplicate")),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn release_frees_capacity() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(ac.release(FlowId(10)));
        assert!(!ac.release(FlowId(10)));
        assert_eq!(ac.flows().len(), 5);
    }

    #[test]
    fn admission_reuses_the_relation_memo() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        let warm = ac.flows().relation_cache().len();
        assert!(warm > 0, "first admission warms the memo");
        // Release and re-admit over the same path: the memo survives both
        // transitions (entries are keyed by path values, which recur).
        assert!(ac.release(FlowId(10)));
        assert_eq!(ac.flows().relation_cache().len(), warm);
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(ac.flows().relation_cache().len(), warm);
    }

    #[test]
    fn admission_fills_up_then_rejects() {
        // Keep admitting identical light flows until rejection: the
        // controller must reject in finite time (capacity is finite).
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut admitted = 0;
        for id in 100..200 {
            match ac.try_admit(candidate(id, 72, 60)) {
                AdmissionDecision::Admitted { .. } => admitted += 1,
                AdmissionDecision::Rejected { .. } => break,
                AdmissionDecision::Invalid(m) => panic!("unexpected invalid: {m}"),
            }
        }
        assert!(admitted >= 1, "at least one light flow fits");
        assert!(admitted < 100, "capacity is finite");
    }
}
