//! Deterministic admission control for the EF class.
//!
//! The paper (§6.2, discussing [12]) argues that deterministic guarantees
//! require admission control based on *worst-case* response times and
//! jitters, not measurements. [`AdmissionController`] implements exactly
//! that: a candidate EF flow is admitted iff, after adding it, **every**
//! EF flow (existing and new) still meets its deadline under the
//! Property 3 bound.
//!
//! # Graceful degradation
//!
//! [`AdmissionController::on_fault`] re-evaluates the admitted flows on
//! the degraded topology: flows whose route died are dropped, rerouted
//! flows keep their guarantee only if the re-analysis still bounds them
//! under their deadline, and when the degraded set is unschedulable the
//! controller *evicts* flows — ordered by [`EvictionPolicy`] — until the
//! survivors are guaranteed again. Every displaced flow lands in a retry
//! queue with exponential backoff; [`AdmissionController::tick`] drains
//! the queue, re-running full admission control for each entry once the
//! fault is (assumed) repaired.

use serde::{Deserialize, Serialize};
use traj_analysis::{analyze_ef, AnalysisConfig};
use traj_model::flow::TrafficClass;
use traj_model::{FaultScenario, FlowFate, FlowId, FlowSet, ModelError, SporadicFlow};

/// Why a flow was rejected, or the bounds it was admitted with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// Admitted; the bound computed for the new flow.
    Admitted {
        /// Property 3 bound of the new flow.
        wcrt: i64,
    },
    /// Rejected: some flow (possibly the candidate) would miss its
    /// deadline.
    Rejected {
        /// The first flow that would miss, with its bound (`None` when
        /// the analysis diverged).
        victim: FlowId,
        /// The offending bound.
        wcrt: Option<i64>,
    },
    /// Rejected: the candidate is malformed for this network.
    Invalid(String),
}

/// Which admitted flow to sacrifice first when a fault leaves the
/// degraded set unschedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the lowest scheduling class first (best effort, then AF in
    /// ascending class order, EF last); ties broken latest-admitted-first.
    #[default]
    LowestPriorityFirst,
    /// Evict in reverse admission order regardless of class: the flows
    /// admitted most recently lose their guarantee first.
    LatestAdmittedFirst,
}

/// A displaced flow waiting to be re-admitted.
#[derive(Debug, Clone)]
pub struct RetryEntry {
    /// The flow, exactly as it was admitted.
    pub flow: SporadicFlow,
    /// Earliest tick at which the next admission attempt may run.
    pub next_attempt: u64,
    /// Current backoff interval; doubles after every failed attempt.
    pub backoff: u64,
    /// Failed re-admission attempts so far.
    pub attempts: u32,
    /// Why the flow was displaced.
    pub reason: String,
}

/// What [`AdmissionController::on_fault`] did to the admitted set.
#[derive(Debug, Clone, Default)]
pub struct FaultResponse {
    /// Flows whose route died with the fault (queued for retry).
    pub dropped: Vec<(FlowId, String)>,
    /// Flows rerouted around the fault that kept their guarantee.
    pub rerouted: Vec<FlowId>,
    /// Flows evicted to make the degraded set schedulable again
    /// (queued for retry).
    pub evicted: Vec<FlowId>,
}

/// First backoff interval (in ticks) after a failed re-admission.
const RETRY_BACKOFF_BASE: u64 = 8;
/// Backoff saturates here so repaired capacity is eventually noticed.
const RETRY_BACKOFF_CAP: u64 = 1 << 16;

/// Stateful admission controller for a DiffServ domain.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    current: FlowSet,
    cfg: AnalysisConfig,
    policy: EvictionPolicy,
    retry: Vec<RetryEntry>,
    /// Admission sequence numbers; flows present at construction get the
    /// lowest ones in set order.
    order: Vec<(FlowId, u64)>,
    next_seq: u64,
}

impl AdmissionController {
    /// Starts from an existing (already guaranteed) flow set.
    pub fn new(current: FlowSet, cfg: AnalysisConfig) -> Self {
        Self::with_policy(current, cfg, EvictionPolicy::default())
    }

    /// Starts from an existing flow set with an explicit eviction policy.
    pub fn with_policy(current: FlowSet, cfg: AnalysisConfig, policy: EvictionPolicy) -> Self {
        let order: Vec<(FlowId, u64)> = current
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.id, i as u64))
            .collect();
        let next_seq = order.len() as u64;
        AdmissionController {
            current,
            cfg,
            policy,
            retry: Vec::new(),
            order,
            next_seq,
        }
    }

    /// The active eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Flows displaced by a fault and still waiting for re-admission.
    pub fn retry_queue(&self) -> &[RetryEntry] {
        &self.retry
    }

    /// The current flow set.
    pub fn flows(&self) -> &FlowSet {
        &self.current
    }

    /// Tries to admit `candidate`; on success the controller's state is
    /// updated.
    pub fn try_admit(&mut self, candidate: SporadicFlow) -> AdmissionDecision {
        let cand_id = candidate.id;
        // `extended_with` shares the current set's crossing-segment memo
        // with the tentative set: only pairs involving the candidate's
        // path are computed afresh, the standing flows' crossing
        // structure is reused across admission attempts.
        let tentative = match self.current.extended_with(candidate) {
            Ok(s) => s,
            Err(e @ ModelError::DuplicateFlowId { .. })
            | Err(e @ ModelError::UnknownNode { .. }) => {
                return AdmissionDecision::Invalid(e.to_string())
            }
            Err(e) => return AdmissionDecision::Invalid(e.to_string()),
        };
        let report = analyze_ef(&tentative, &self.cfg);
        for r in report.per_flow() {
            if r.meets_deadline() != Some(true) {
                return AdmissionDecision::Rejected {
                    victim: r.flow,
                    wcrt: r.wcrt.value(),
                };
            }
        }
        let Some(wcrt) = report.for_flow(cand_id).and_then(|r| r.wcrt.value()) else {
            return AdmissionDecision::Invalid(format!(
                "flow {cand_id} is not in the EF class; deterministic admission \
                 covers EF flows only"
            ));
        };
        self.current = tentative;
        self.order.push((cand_id, self.next_seq));
        self.next_seq += 1;
        AdmissionDecision::Admitted { wcrt }
    }

    /// Removes a flow (session teardown); `true` when it existed. The
    /// relation memo is carried over, so a later re-admission over the
    /// same paths costs no segment recomputation.
    pub fn release(&mut self, id: FlowId) -> bool {
        if self.current.index_of(id).is_none() {
            return false;
        }
        if self.current.len() == 1 {
            return false; // keep the last flow; FlowSet cannot be empty
        }
        match self.current.without_flow(id) {
            Ok(rest) => {
                self.current = rest;
                self.order.retain(|(f, _)| *f != id);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-evaluates the admitted flows on the topology degraded by
    /// `scenario`, evicting flows (per the configured [`EvictionPolicy`])
    /// until every surviving EF flow meets its deadline again. Displaced
    /// flows — both route casualties and evictees — join the retry queue
    /// with exponential backoff starting at `now`.
    ///
    /// On error (e.g. the fault kills every admitted flow) the controller
    /// state is unchanged.
    pub fn on_fault(
        &mut self,
        scenario: &FaultScenario,
        now: u64,
    ) -> Result<FaultResponse, ModelError> {
        let degraded = scenario.apply(&self.current)?;
        let mut response = FaultResponse::default();
        let mut set = degraded.surviving_set()?;

        for (idx, fate) in degraded.fates.iter().enumerate() {
            let flow = &degraded.set.flows()[idx];
            match fate {
                FlowFate::Untouched => {}
                FlowFate::Rerouted { .. } => response.rerouted.push(flow.id),
                FlowFate::Dropped { reason } => {
                    response.dropped.push((flow.id, reason.to_string()));
                    // Queue the *healthy* flow (original path): retry
                    // models repair-and-readmission.
                    if let Some(orig) = self.current.flows().iter().find(|f| f.id == flow.id) {
                        self.enqueue_retry(orig.clone(), now, format!("route lost: {reason}"));
                    }
                }
            }
        }

        // Evict until the degraded set is schedulable (or nothing is left
        // to sacrifice: FlowSet cannot be empty).
        loop {
            let report = analyze_ef(&set, &self.cfg);
            if report
                .per_flow()
                .iter()
                .all(|r| r.meets_deadline() == Some(true))
            {
                break;
            }
            if set.len() == 1 {
                break;
            }
            let Some(victim) = self.pick_victim(&set) else {
                break;
            };
            let Ok(rest) = set.without_flow(victim) else {
                break;
            };
            set = rest;
            response.evicted.push(victim);
            if let Some(orig) = self.current.flows().iter().find(|f| f.id == victim) {
                self.enqueue_retry(
                    orig.clone(),
                    now,
                    "evicted: unschedulable after fault".to_string(),
                );
            }
        }

        let keep: std::collections::HashSet<FlowId> = set.flows().iter().map(|f| f.id).collect();
        self.order.retain(|(f, _)| keep.contains(f));
        self.current = set;
        Ok(response)
    }

    /// Drains due retry-queue entries: each gets one full admission
    /// attempt. Success removes the entry; failure doubles its backoff.
    /// Returns the decisions taken this tick, in queue order.
    pub fn tick(&mut self, now: u64) -> Vec<(FlowId, AdmissionDecision)> {
        let mut decisions = Vec::new();
        let due: Vec<usize> = (0..self.retry.len())
            .filter(|&i| self.retry[i].next_attempt <= now)
            .collect();
        let mut readmitted: Vec<usize> = Vec::new();
        for i in due {
            let flow = self.retry[i].flow.clone();
            let id = flow.id;
            let decision = self.try_admit(flow);
            match decision {
                AdmissionDecision::Admitted { .. } => readmitted.push(i),
                _ => {
                    let e = &mut self.retry[i];
                    e.attempts += 1;
                    e.backoff = (e.backoff * 2).min(RETRY_BACKOFF_CAP);
                    e.next_attempt = now + e.backoff;
                }
            }
            decisions.push((id, decision));
        }
        for i in readmitted.into_iter().rev() {
            self.retry.remove(i);
        }
        decisions
    }

    fn enqueue_retry(&mut self, flow: SporadicFlow, now: u64, reason: String) {
        if self.retry.iter().any(|e| e.flow.id == flow.id) {
            return;
        }
        self.retry.push(RetryEntry {
            flow,
            next_attempt: now + RETRY_BACKOFF_BASE,
            backoff: RETRY_BACKOFF_BASE,
            attempts: 0,
            reason,
        });
    }

    /// Picks the next eviction victim among `set`'s flows per the policy.
    fn pick_victim(&self, set: &FlowSet) -> Option<FlowId> {
        let seq = |id: FlowId| -> u64 {
            self.order
                .iter()
                .find(|(f, _)| *f == id)
                .map(|(_, s)| *s)
                .unwrap_or(0)
        };
        let class_rank = |c: &TrafficClass| -> u8 {
            match c {
                TrafficClass::BestEffort => 0,
                TrafficClass::Af(k) => *k,
                TrafficClass::Ef => u8::MAX,
            }
        };
        set.flows()
            .iter()
            .max_by_key(|f| match self.policy {
                // Lowest class first; ties latest-admitted-first.
                EvictionPolicy::LowestPriorityFirst => (u8::MAX - class_rank(&f.class), seq(f.id)),
                EvictionPolicy::LatestAdmittedFirst => (0, seq(f.id)),
            })
            .map(|f| f.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::Path;

    fn candidate(id: u32, period: i64, deadline: i64) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            Path::from_ids([2, 3, 4]).unwrap(),
            period,
            4,
            0,
            deadline,
        )
        .unwrap()
    }

    #[test]
    fn admits_light_flow() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(10, 360, 200)) {
            AdmissionDecision::Admitted { wcrt } => assert!(wcrt <= 200),
            other => panic!("expected admission, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 6);
    }

    #[test]
    fn rejects_when_existing_flow_would_miss() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // A heavy flow on the shared trunk pushes someone past a deadline.
        let heavy =
            SporadicFlow::uniform(11, Path::from_ids([2, 3, 4, 7]).unwrap(), 36, 12, 0, 10_000)
                .unwrap();
        match ac.try_admit(heavy) {
            AdmissionDecision::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(ac.flows().len(), 5, "state unchanged on rejection");
    }

    #[test]
    fn rejects_candidate_missing_its_own_deadline() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(12, 360, 5)) {
            AdmissionDecision::Rejected { victim, .. } => assert_eq!(victim, FlowId(12)),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_is_invalid() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        match ac.try_admit(candidate(1, 360, 200)) {
            AdmissionDecision::Invalid(msg) => assert!(msg.contains("duplicate")),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn release_frees_capacity() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert!(ac.release(FlowId(10)));
        assert!(!ac.release(FlowId(10)));
        assert_eq!(ac.flows().len(), 5);
    }

    #[test]
    fn admission_reuses_the_relation_memo() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        let warm = ac.flows().relation_cache().len();
        assert!(warm > 0, "first admission warms the memo");
        // Release and re-admit over the same path: the memo survives both
        // transitions (entries are keyed by path values, which recur).
        assert!(ac.release(FlowId(10)));
        assert_eq!(ac.flows().relation_cache().len(), warm);
        assert!(matches!(
            ac.try_admit(candidate(10, 360, 200)),
            AdmissionDecision::Admitted { .. }
        ));
        assert_eq!(ac.flows().relation_cache().len(), warm);
    }

    #[test]
    fn fault_drops_route_casualties_and_queues_them() {
        use traj_model::NodeId;
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // Node 9 is the source of flow 2: it cannot be rerouted.
        let resp = ac
            .on_fault(&FaultScenario::node_down(NodeId(9)), 0)
            .unwrap();
        assert!(resp.dropped.iter().any(|(id, _)| *id == FlowId(2)));
        assert!(ac.flows().index_of(FlowId(2)).is_none());
        assert!(ac.retry_queue().iter().any(|e| e.flow.id == FlowId(2)));
    }

    #[test]
    fn unschedulable_degradation_evicts_until_guaranteed() {
        // Load the trunk close to capacity, then kill a link so the
        // reroutes concentrate load and someone misses: eviction must
        // restore the guarantee for everyone left.
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut id = 100;
        while let AdmissionDecision::Admitted { .. } = ac.try_admit(candidate(id, 72, 60)) {
            id += 1;
        }
        let before = ac.flows().len();
        let resp = ac
            .on_fault(
                &FaultScenario::link_down(traj_model::NodeId(3), traj_model::NodeId(4)),
                0,
            )
            .unwrap();
        let report = analyze_ef(ac.flows(), &AnalysisConfig::default());
        assert!(
            report
                .per_flow()
                .iter()
                .all(|r| r.meets_deadline() == Some(true))
                || ac.flows().len() == 1,
            "survivors must be guaranteed"
        );
        assert_eq!(
            ac.flows().len() + resp.evicted.len() + resp.dropped.len(),
            before,
            "every displaced flow is accounted for"
        );
    }

    #[test]
    fn eviction_policies_pick_different_victims() {
        use traj_model::flow::TrafficClass;
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        // A BE flow admitted *before* an EF flow: LowestPriorityFirst
        // must pick the BE flow, LatestAdmittedFirst the EF flow.
        let be = SporadicFlow::uniform(50, Path::from_ids([2, 3, 4]).unwrap(), 360, 4, 0, 10_000)
            .unwrap()
            .with_class(TrafficClass::BestEffort);
        let ef = candidate(51, 360, 200);
        let mut extended = set.clone();
        for f in [be, ef] {
            extended = extended.extended_with(f).unwrap();
        }
        let low = AdmissionController::with_policy(
            extended.clone(),
            cfg.clone(),
            EvictionPolicy::LowestPriorityFirst,
        );
        let late = AdmissionController::with_policy(
            extended.clone(),
            cfg.clone(),
            EvictionPolicy::LatestAdmittedFirst,
        );
        assert_eq!(low.pick_victim(&extended), Some(FlowId(50)));
        assert_eq!(late.pick_victim(&extended), Some(FlowId(51)));
    }

    #[test]
    fn retry_backoff_doubles_until_capacity_returns() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        // Fill to rejection so a retried flow cannot come back.
        let mut id = 100;
        while let AdmissionDecision::Admitted { .. } = ac.try_admit(candidate(id, 72, 60)) {
            id += 1;
        }
        // Displace one admitted flow by hand through a fault on its path:
        // use the eviction path via an impossible candidate instead —
        // simpler: drop flow 2's source.
        let resp = ac
            .on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(!resp.dropped.is_empty());
        let n_queued = ac.retry_queue().len();
        assert!(n_queued > 0);
        let first_attempt = ac.retry_queue()[0].next_attempt;
        // Nothing due before the backoff expires.
        assert!(ac.tick(first_attempt - 1).is_empty());
        let decisions = ac.tick(first_attempt);
        assert_eq!(decisions.len(), 1);
        if !matches!(decisions[0].1, AdmissionDecision::Admitted { .. }) {
            let e = &ac.retry_queue()[0];
            assert_eq!(e.attempts, 1);
            assert_eq!(e.backoff, 2 * super::RETRY_BACKOFF_BASE);
            assert_eq!(e.next_attempt, first_attempt + e.backoff);
        }
    }

    #[test]
    fn readmission_after_release_clears_the_queue() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let resp = ac
            .on_fault(&FaultScenario::node_down(traj_model::NodeId(9)), 0)
            .unwrap();
        assert!(resp.dropped.iter().any(|(id, _)| *id == FlowId(2)));
        // The topology is "repaired" (the controller re-checks against
        // the full network); the queued flow comes back on the next due
        // tick.
        let due = ac.retry_queue()[0].next_attempt;
        let decisions = ac.tick(due);
        assert!(matches!(
            decisions[0],
            (FlowId(2), AdmissionDecision::Admitted { .. })
        ));
        assert!(ac.retry_queue().is_empty());
        assert!(ac.flows().index_of(FlowId(2)).is_some());
    }

    #[test]
    fn admission_fills_up_then_rejects() {
        // Keep admitting identical light flows until rejection: the
        // controller must reject in finite time (capacity is finite).
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut admitted = 0;
        for id in 100..200 {
            match ac.try_admit(candidate(id, 72, 60)) {
                AdmissionDecision::Admitted { .. } => admitted += 1,
                AdmissionDecision::Rejected { .. } => break,
                AdmissionDecision::Invalid(m) => panic!("unexpected invalid: {m}"),
            }
        }
        assert!(admitted >= 1, "at least one light flow fits");
        assert!(admitted < 100, "capacity is finite");
    }
}
