//! Delay estimation for the Assured Forwarding classes.
//!
//! The paper only bounds the EF class; AF traffic receives a *bandwidth
//! share*, not a hard deadline. Still, a DiffServ operator dimensioning a
//! domain wants per-class delay estimates. This module derives them with
//! the network-calculus residual-service construction: at each node, the
//! EF aggregate (strictly higher priority) plus the AF classes of higher
//! weight are subtracted from the unit-rate server; the class's aggregate
//! then crosses the residual rate-latency curve.
//!
//! These are *estimates under the SFQ weight model* (documented
//! approximation), not the deterministic Property 3 guarantees — which is
//! exactly the service differentiation the DiffServ architecture intends.

use serde::{Deserialize, Serialize};
use traj_model::flow::TrafficClass;
use traj_model::{Duration, FlowSet, NodeId};
use traj_netcalc::curves::{delay_bound, output_curve, ArrivalCurve, ServiceCurve};
use traj_netcalc::Ratio;

/// Per-class end-to-end delay estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AfDelayEstimate {
    /// The AF class (1..=4), or `None` for best effort.
    pub class: Option<u8>,
    /// Per-flow end-to-end estimates `(flow index, ticks)`; `None` when
    /// some node's residual service is saturated.
    pub per_flow: Vec<(usize, Option<Duration>)>,
}

/// Estimates end-to-end delays for every non-EF flow.
///
/// Priority model: EF preempts (up to one packet, ignored here — the
/// residual is an estimate), AF classes 1..4 rank above best effort, and
/// within the lower band classes share by SFQ weight; a class's residual
/// subtracts everything ranked at or above it.
pub fn af_delay_estimates(set: &FlowSet) -> Vec<AfDelayEstimate> {
    let mut classes: Vec<Option<u8>> = set
        .non_ef_flows()
        .map(|f| match f.class {
            TrafficClass::Af(c) => Some(c),
            _ => None,
        })
        .collect();
    classes.sort_unstable();
    classes.dedup();

    classes
        .into_iter()
        .map(|class| {
            let per_flow = set
                .flows()
                .iter()
                .enumerate()
                .filter(|(_, f)| match (&f.class, class) {
                    (TrafficClass::Af(c), Some(k)) => *c == k,
                    (TrafficClass::BestEffort, None) => true,
                    _ => false,
                })
                .map(|(idx, f)| {
                    let mut total = Ratio::ZERO;
                    let mut cur = ArrivalCurve::sporadic(f.max_cost(), f.period, f.jitter);
                    let mut ok = true;
                    for &h in f.path.nodes() {
                        match residual_at(set, h, class) {
                            Some(beta) => {
                                match delay_bound(&agg_class(set, h, class, idx, &cur), &beta) {
                                    Some(d) => {
                                        total = total + d;
                                        if let Some(out) = output_curve(&cur, &beta) {
                                            cur = out;
                                        }
                                    }
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    let links: i64 = f
                        .path
                        .links()
                        .map(|(a, b)| set.network().link_delay(a, b).lmax)
                        .sum();
                    (idx, ok.then(|| total.ceil() + links))
                })
                .collect();
            AfDelayEstimate { class, per_flow }
        })
        .collect()
}

/// Residual rate-latency service left for `class` at `node` after EF and
/// higher-ranked classes.
fn residual_at(set: &FlowSet, node: NodeId, class: Option<u8>) -> Option<ServiceCurve> {
    let higher = |f: &traj_model::SporadicFlow| -> bool {
        match (&f.class, class) {
            (TrafficClass::Ef, _) => true,
            (TrafficClass::Af(c), Some(k)) => *c < k,
            (TrafficClass::Af(_), None) => true, // all AF above best effort
            _ => false,
        }
    };
    let mut cross = ArrivalCurve {
        sigma: Ratio::ZERO,
        rho: Ratio::ZERO,
    };
    for f in set.flows() {
        if f.path.visits(node) && higher(f) {
            cross = cross.aggregate(&ArrivalCurve::sporadic(f.cost_at(node), f.period, f.jitter));
        }
    }
    ServiceCurve::constant_rate(Ratio::ONE).residual(&cross)
}

/// Aggregate of the class's own flows at a node (the flow under study
/// uses its accumulated curve `cur`).
fn agg_class(
    set: &FlowSet,
    node: NodeId,
    class: Option<u8>,
    me: usize,
    cur: &ArrivalCurve,
) -> ArrivalCurve {
    let mut agg = *cur;
    for (idx, f) in set.flows().iter().enumerate() {
        if idx == me || !f.path.visits(node) {
            continue;
        }
        let same = match (&f.class, class) {
            (TrafficClass::Af(c), Some(k)) => *c == k,
            (TrafficClass::BestEffort, None) => true,
            _ => false,
        };
        if same {
            agg = agg.aggregate(&ArrivalCurve::sporadic(f.cost_at(node), f.period, f.jitter));
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example_with_best_effort;
    use traj_model::{Network, Path, SporadicFlow};

    fn mixed_set() -> FlowSet {
        let network = Network::uniform(3, 1, 1).unwrap();
        let chain = Path::from_ids([1, 2, 3]).unwrap();
        let flows = vec![
            SporadicFlow::uniform(1, chain.clone(), 30, 2, 0, 60)
                .unwrap()
                .with_class(TrafficClass::Ef),
            SporadicFlow::uniform(2, chain.clone(), 40, 4, 0, 1_000)
                .unwrap()
                .with_class(TrafficClass::Af(1)),
            SporadicFlow::uniform(3, chain.clone(), 40, 4, 0, 1_000)
                .unwrap()
                .with_class(TrafficClass::Af(2)),
            SporadicFlow::uniform(4, chain, 60, 6, 0, 1_000)
                .unwrap()
                .with_class(TrafficClass::BestEffort),
        ];
        FlowSet::new(network, flows).unwrap()
    }

    #[test]
    fn estimates_cover_all_non_ef_classes() {
        let set = mixed_set();
        let est = af_delay_estimates(&set);
        let classes: Vec<Option<u8>> = est.iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![None, Some(1), Some(2)]);
        for e in &est {
            assert_eq!(e.per_flow.len(), 1);
        }
    }

    #[test]
    fn lower_classes_see_larger_delays() {
        let set = mixed_set();
        let est = af_delay_estimates(&set);
        let by_class: std::collections::HashMap<Option<u8>, i64> = est
            .iter()
            .map(|e| (e.class, e.per_flow[0].1.expect("stable")))
            .collect();
        // AF1 outranks AF2 outranks best effort.
        assert!(by_class[&Some(1)] <= by_class[&Some(2)]);
        assert!(by_class[&Some(2)] <= by_class[&None]);
    }

    #[test]
    fn saturation_yields_none() {
        // EF consumes the full rate: residual for AF vanishes.
        let network = Network::uniform(2, 1, 1).unwrap();
        let chain = Path::from_ids([1, 2]).unwrap();
        let flows = vec![
            SporadicFlow::uniform(1, chain.clone(), 10, 10, 0, 1_000)
                .unwrap()
                .with_class(TrafficClass::Ef),
            SporadicFlow::uniform(2, chain, 50, 2, 0, 1_000)
                .unwrap()
                .with_class(TrafficClass::Af(1)),
        ];
        let set = FlowSet::new(network, flows).unwrap();
        let est = af_delay_estimates(&set);
        assert_eq!(est[0].per_flow[0].1, None);
    }

    #[test]
    fn paper_example_best_effort_estimates_exist() {
        let set = paper_example_with_best_effort(4).unwrap();
        let est = af_delay_estimates(&set);
        assert_eq!(est.len(), 1); // only best effort
        for (_, d) in &est[0].per_flow {
            let d = d.expect("light BE load is stable");
            assert!(d > 0);
        }
    }
}
