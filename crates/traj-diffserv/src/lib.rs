//! DiffServ Expedited Forwarding application (paper §6).
//!
//! The DiffServ architecture (RFC 2475) distributes traffic over a small
//! number of classes; packets carry a codepoint selecting a per-hop
//! behaviour. This crate models the pieces the paper builds on:
//!
//! * [`dscp`] — codepoints and their mapping to per-hop behaviours
//!   (EF — RFC 2598, the AF groups — RFC 2597, best effort);
//! * [`conditioner`] — token-bucket traffic conditioning at the boundary
//!   (EF guarantees hold "up to a negotiated rate");
//! * [`router`] — the Figure 3 router: EF at fixed priority, AF/BE under
//!   fair queueing, non-preemptive service; assembles the simulator
//!   configuration for a DiffServ domain;
//! * [`admission`] — deterministic admission control for the EF class
//!   driven by Property 3 (worst-case bounds, not measurements);
//! * [`af`] — residual-service delay estimates for the AF classes and
//!   best effort (the bandwidth-share side of the architecture).

pub mod admission;
pub mod af;
pub mod conditioner;
pub mod dscp;
pub mod router;

pub use admission::{
    evaluate_whatif, evaluate_whatif_screened, AdmissionController, AdmissionDecision,
    AdmissionMetrics, ControllerSnapshot, EvictionPolicy, FaultResponse, ReleaseOutcome,
    RestoreError, RetryEntry, RetryPolicy, TieredPolicy,
};
pub use af::{af_delay_estimates, AfDelayEstimate};
pub use conditioner::TokenBucket;
pub use dscp::{Dscp, PerHopBehaviour};
pub use router::DiffServDomain;
