//! The DiffServ domain: Figure 3 routers over a flow set.
//!
//! A DiffServ-compliant router (paper Figure 3) classifies packets on
//! their codepoint, serves EF at fixed priority, shares the rest of the
//! capacity between AF and best effort under fair queueing, and never
//! preempts an ongoing transmission. [`DiffServDomain`] ties together the
//! model, the analytical EF bounds (Property 3) and the simulator
//! configuration realising the same router.

use serde::{Deserialize, Serialize};
use traj_analysis::{analyze_ef, AnalysisConfig, SetReport};
use traj_model::{FlowSet, SporadicFlow};
use traj_sim::{SchedulerKind, SimConfig, Simulator};

use crate::dscp::PerHopBehaviour;

/// A DiffServ domain: a flow set where classes matter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffServDomain {
    flows: FlowSet,
    /// Analysis configuration for the EF bounds.
    pub analysis: AnalysisConfig,
}

impl DiffServDomain {
    /// Wraps a flow set as a DiffServ domain.
    pub fn new(flows: FlowSet) -> Self {
        DiffServDomain {
            flows,
            analysis: AnalysisConfig::default(),
        }
    }

    /// The underlying flows.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// Classifies one flow's per-hop behaviour.
    pub fn phb(&self, flow: &SporadicFlow) -> PerHopBehaviour {
        match flow.class {
            traj_model::flow::TrafficClass::Ef => PerHopBehaviour::Ef,
            traj_model::flow::TrafficClass::Af(c) => PerHopBehaviour::Af {
                class: c.clamp(1, 4),
                drop: 1,
            },
            traj_model::flow::TrafficClass::BestEffort => PerHopBehaviour::BestEffort,
        }
    }

    /// Property 3 bounds for the EF flows of the domain.
    pub fn ef_bounds(&self) -> SetReport {
        analyze_ef(&self.flows, &self.analysis)
    }

    /// A simulator over the domain with Figure 3 routers.
    pub fn simulator(&self, packets_per_flow: usize) -> Simulator<'_> {
        Simulator::new(
            &self.flows,
            SimConfig {
                scheduler: SchedulerKind::DiffServ,
                packets_per_flow,
                ..Default::default()
            },
        )
    }

    /// EF utilisation at the busiest node (EF flows only) — the quantity
    /// the Charny–Le Boudec validity threshold constrains.
    pub fn ef_utilisation(&self) -> f64 {
        self.flows
            .network()
            .nodes()
            .iter()
            .map(|&n| {
                self.flows
                    .ef_flows()
                    .map(|f| f.utilisation_at(n))
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{paper_example, paper_example_with_best_effort};

    #[test]
    fn ef_bounds_match_property3() {
        let dom = DiffServDomain::new(paper_example_with_best_effort(9).unwrap());
        let rep = dom.ef_bounds();
        assert_eq!(rep.per_flow().len(), 5);
        for r in rep.per_flow() {
            assert!(r.wcrt.is_bounded());
        }
    }

    #[test]
    fn simulated_ef_responses_respect_property3() {
        let dom = DiffServDomain::new(paper_example_with_best_effort(9).unwrap());
        let bounds = dom.ef_bounds();
        let sim = dom.simulator(16);
        let offsets: Vec<i64> = vec![0; dom.flows().len()];
        let out = sim.run_periodic(&offsets);
        for (r, s) in bounds.per_flow().iter().zip(&out.flows[..5]) {
            assert!(s.delivered > 0);
            assert!(
                s.max_response <= r.wcrt.value().unwrap(),
                "flow {}: observed {} > Property 3 bound {:?}",
                s.flow,
                s.max_response,
                r.wcrt
            );
        }
    }

    #[test]
    fn utilisation_counts_only_ef() {
        let pure = DiffServDomain::new(paper_example());
        let mixed = DiffServDomain::new(paper_example_with_best_effort(9).unwrap());
        assert!((pure.ef_utilisation() - mixed.ef_utilisation()).abs() < 1e-12);
        assert!(pure.ef_utilisation() > 0.0);
    }

    #[test]
    fn phb_classification_follows_flow_class() {
        let dom = DiffServDomain::new(paper_example_with_best_effort(5).unwrap());
        let ef = dom.flows().ef_flows().next().unwrap();
        let be = dom.flows().non_ef_flows().next().unwrap();
        assert_eq!(dom.phb(ef), PerHopBehaviour::Ef);
        assert_eq!(dom.phb(be), PerHopBehaviour::BestEffort);
    }
}
