//! DSCP codepoints and per-hop behaviours.

use serde::{Deserialize, Serialize};
use traj_model::flow::TrafficClass;

/// A Differentiated Services codepoint (6 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dscp(pub u8);

impl Dscp {
    /// Expedited Forwarding (RFC 2598): 101110.
    pub const EF: Dscp = Dscp(0b101110);
    /// Default / best effort: 000000.
    pub const DEFAULT: Dscp = Dscp(0);

    /// Assured Forwarding class `c ∈ 1..=4`, drop precedence `d ∈ 1..=3`
    /// (RFC 2597): `001dd0` patterns — AFcd = `c*8 + d*2`.
    pub fn af(class: u8, drop: u8) -> Option<Dscp> {
        if (1..=4).contains(&class) && (1..=3).contains(&drop) {
            Some(Dscp(class * 8 + drop * 2))
        } else {
            None
        }
    }

    /// Whether the codepoint is valid (6 bits).
    pub fn is_valid(&self) -> bool {
        self.0 < 64
    }
}

/// The per-hop behaviour a codepoint selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerHopBehaviour {
    /// Expedited Forwarding: low latency, low drop, fixed priority.
    Ef,
    /// Assured Forwarding with class and drop precedence.
    Af {
        /// AF class 1..=4.
        class: u8,
        /// Drop precedence 1..=3.
        drop: u8,
    },
    /// Default forwarding.
    BestEffort,
}

impl PerHopBehaviour {
    /// Classifies a codepoint (unknown codepoints default to best effort,
    /// per RFC 2475 §4).
    pub fn classify(dscp: Dscp) -> PerHopBehaviour {
        if dscp == Dscp::EF {
            return PerHopBehaviour::Ef;
        }
        for class in 1..=4u8 {
            for drop in 1..=3u8 {
                if Dscp::af(class, drop) == Some(dscp) {
                    return PerHopBehaviour::Af { class, drop };
                }
            }
        }
        PerHopBehaviour::BestEffort
    }

    /// The scheduling class used by the analytical model.
    pub fn traffic_class(&self) -> TrafficClass {
        match self {
            PerHopBehaviour::Ef => TrafficClass::Ef,
            PerHopBehaviour::Af { class, .. } => TrafficClass::Af(*class),
            PerHopBehaviour::BestEffort => TrafficClass::BestEffort,
        }
    }

    /// The codepoint to mark packets with.
    pub fn dscp(&self) -> Dscp {
        match self {
            PerHopBehaviour::Ef => Dscp::EF,
            // Out-of-range AF selectors degrade to the default PHB, the
            // same fallback RFC 2475 §4 prescribes for unknown codepoints.
            PerHopBehaviour::Af { class, drop } => Dscp::af(*class, *drop).unwrap_or(Dscp::DEFAULT),
            PerHopBehaviour::BestEffort => Dscp::DEFAULT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ef_codepoint_is_46() {
        assert_eq!(Dscp::EF.0, 46);
        assert!(Dscp::EF.is_valid());
    }

    #[test]
    fn af_codepoints_match_rfc_2597() {
        assert_eq!(Dscp::af(1, 1), Some(Dscp(10)));
        assert_eq!(Dscp::af(2, 2), Some(Dscp(20)));
        assert_eq!(Dscp::af(4, 3), Some(Dscp(38)));
        assert_eq!(Dscp::af(0, 1), None);
        assert_eq!(Dscp::af(5, 1), None);
        assert_eq!(Dscp::af(1, 4), None);
    }

    #[test]
    fn classify_roundtrips() {
        for phb in [
            PerHopBehaviour::Ef,
            PerHopBehaviour::Af { class: 2, drop: 3 },
            PerHopBehaviour::BestEffort,
        ] {
            assert_eq!(PerHopBehaviour::classify(phb.dscp()), phb);
        }
        // Unknown codepoints fall back to best effort.
        assert_eq!(
            PerHopBehaviour::classify(Dscp(63)),
            PerHopBehaviour::BestEffort
        );
    }

    #[test]
    fn traffic_class_mapping() {
        assert_eq!(PerHopBehaviour::Ef.traffic_class(), TrafficClass::Ef);
        assert_eq!(
            PerHopBehaviour::Af { class: 3, drop: 1 }.traffic_class(),
            TrafficClass::Af(3)
        );
    }
}
