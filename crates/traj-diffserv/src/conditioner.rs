//! Token-bucket traffic conditioning at the domain boundary.
//!
//! RFC 2598 grants EF guarantees "up to a negotiated rate": ingress
//! routers police or shape each flow against a token bucket. The bucket
//! here is exact-integer: `rate_num / rate_den` tokens per tick (tokens
//! are work units), capacity `burst`.

use serde::{Deserialize, Serialize};
use traj_model::{SporadicFlow, Tick};

/// An integer-exact token bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Tokens gained per `rate_den` ticks.
    pub rate_num: i64,
    /// Denominator of the rate.
    pub rate_den: i64,
    /// Bucket capacity.
    pub burst: i64,
    /// Current level, scaled by `rate_den` to stay integral.
    level_scaled: i64,
    /// Last update instant.
    last: Tick,
}

impl TokenBucket {
    /// A bucket with rate `rate_num/rate_den` tokens per tick and the
    /// given capacity, initially full.
    pub fn new(rate_num: i64, rate_den: i64, burst: i64) -> TokenBucket {
        assert!(rate_num > 0 && rate_den > 0 && burst > 0);
        TokenBucket {
            rate_num,
            rate_den,
            burst,
            level_scaled: burst * rate_den,
            last: 0,
        }
    }

    /// The bucket dimensioned for a sporadic flow: sustained rate `C/T`,
    /// burst one packet plus the jitter allowance (matching the arrival
    /// curve of `traj-netcalc`).
    pub fn for_flow(f: &SporadicFlow) -> TokenBucket {
        let c = f.max_cost();
        // burst = C + ceil(C*J/T)
        let extra = (c * f.jitter + f.period - 1) / f.period;
        TokenBucket::new(c, f.period, c + extra)
    }

    fn refill(&mut self, now: Tick) {
        assert!(now >= self.last, "time moves forward");
        let gained = (now - self.last) * self.rate_num;
        self.level_scaled = (self.level_scaled + gained).min(self.burst * self.rate_den);
        self.last = now;
    }

    /// Polices a packet of `size` work units arriving at `now`: consumes
    /// tokens and returns `true` when conformant, or returns `false`
    /// (tokens untouched) when the packet would overdraw the bucket.
    pub fn police(&mut self, now: Tick, size: i64) -> bool {
        self.refill(now);
        let need = size * self.rate_den;
        if self.level_scaled >= need {
            self.level_scaled -= need;
            true
        } else {
            false
        }
    }

    /// Shapes a packet of `size` arriving at `now`: returns the earliest
    /// instant it may be forwarded (tokens consumed at that instant).
    pub fn shape(&mut self, now: Tick, size: i64) -> Tick {
        self.refill(now);
        let need = size * self.rate_den;
        if self.level_scaled >= need {
            self.level_scaled -= need;
            return now;
        }
        let deficit = need - self.level_scaled;
        // ceil(deficit / rate_num) ticks until enough tokens.
        let wait = (deficit + self.rate_num - 1) / self.rate_num;
        self.level_scaled += wait * self.rate_num - need;
        self.last = now + wait;
        now + wait
    }

    /// Current token level (floored).
    pub fn level(&self) -> i64 {
        self.level_scaled / self.rate_den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::Path;

    #[test]
    fn conformant_stream_passes() {
        // rate 1/9 per tick (C=4, T=36), burst 4.
        let mut tb = TokenBucket::new(4, 36, 4);
        for k in 0..50 {
            assert!(tb.police(k * 36, 4), "packet {k}");
        }
    }

    #[test]
    fn back_to_back_burst_rejected() {
        let mut tb = TokenBucket::new(4, 36, 4);
        assert!(tb.police(0, 4));
        assert!(
            !tb.police(1, 4),
            "second packet one tick later must overdraw"
        );
        // After a full period the bucket has refilled.
        assert!(tb.police(37, 4));
    }

    #[test]
    fn shaping_delays_to_conformance() {
        let mut tb = TokenBucket::new(4, 36, 4);
        assert_eq!(tb.shape(0, 4), 0);
        // Needs 4 tokens = 36 ticks at 4/36.
        assert_eq!(tb.shape(0, 4), 36);
        assert_eq!(tb.shape(36, 4), 72);
    }

    #[test]
    fn for_flow_matches_curve_parameters() {
        let f = SporadicFlow::uniform(1, Path::from_ids([1, 2]).unwrap(), 36, 4, 9, 99).unwrap();
        let tb = TokenBucket::for_flow(&f);
        assert_eq!(tb.rate_num, 4);
        assert_eq!(tb.rate_den, 36);
        assert_eq!(tb.burst, 5); // 4 + ceil(36/36)
    }

    #[test]
    fn level_reports_floored_tokens() {
        let mut tb = TokenBucket::new(1, 3, 5);
        assert_eq!(tb.level(), 5);
        assert!(tb.police(0, 5));
        assert_eq!(tb.level(), 0);
        assert!(!tb.police(2, 1)); // only 2/3 token
        assert!(tb.police(3, 1));
    }
}
