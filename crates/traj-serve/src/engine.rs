//! The serving engine: one writer, many readers.
//!
//! # Architecture
//!
//! Every mutation (`admit`, `release`, `tick`, `fault`, `init`, `save`)
//! flows through a **bounded queue** into a single writer thread that
//! owns the [`AdmissionController`]. After each commit the writer
//! publishes an immutable [`View`] — an `Arc` of the standing
//! [`ConvergedState`] plus the bookkeeping a read needs — under an
//! `RwLock` held only for the pointer swap.
//!
//! Reads (`whatif`, `report`, `metrics`, `ping`) never touch the
//! writer: a `whatif` grabs the current view and runs
//! [`traj_diffserv::evaluate_whatif`] against the shared
//! `&ConvergedState`, so any number of what-ifs proceed concurrently
//! with each other *and* with an in-flight commit (they see the state
//! as of their snapshot — exactly the library's sequential semantics,
//! since bounds are a pure function of the set). The what-if path is
//! the same `extend` + decision code `try_admit` runs, so a concurrent
//! read is bit-identical to the sequential answer on the same set.
//!
//! Under [`TieredPolicy::Screened`] the view additionally carries the
//! controller's aggregate-curve screen: a `whatif` whose candidate the
//! (sound, looser) network-calculus bound already covers is answered in
//! O(path length) without touching the warm fixed point, and the writer
//! settles a burst of screen-admitted flows with **one** warm solve at
//! publication time. Decisions stay identical to the pure trajectory
//! controller — the screen only ever short-circuits clear admits.
//!
//! # Backpressure
//!
//! The write queue is a `sync_channel` of configurable depth submitted
//! to with `try_send`: when the writer falls behind, submissions fail
//! *immediately* with a typed [`ErrorKind::Overloaded`] response
//! instead of queueing unboundedly or blocking the connection thread.
//! The rejected request was never executed; clients retry with their
//! own policy. Reads are never shed — they don't consume writer
//! capacity.
//!
//! # Burst drain
//!
//! When several mutations are already queued, the writer drains them
//! into one **burst** (capped at the queue depth): every op in the
//! burst is applied in arrival order, the view is published **once**
//! for the whole burst, and only then are the replies delivered. A
//! client therefore still reads its own writes — its reply arrives
//! strictly after the view reflecting its op — but a pile-up of N
//! admits costs one `RwLock` swap and one snapshot rebuild instead of
//! N. The `metrics` endpoint reports `write_ops` / `write_batches` so
//! the amortisation is observable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use serde::{Serialize, Value};
use traj_analysis::backend::Analyzer as _;
use traj_analysis::{AnalysisConfig, ConvergedState};
use traj_diffserv::{
    evaluate_whatif, evaluate_whatif_screened, AdmissionController, AdmissionMetrics, TieredPolicy,
};
use traj_model::{FaultScenario, FlowId, FlowSet, Network, SporadicFlow};
use traj_netcalc::{
    charny_le_boudec_bound, tightest_bounds, AggregateCache, BoundSource, CharnyParams,
    NetcalcAnalyzer,
};
use traj_obs::Histogram;

use crate::persist::{save_atomic, DaemonSnapshot};
use crate::protocol::{
    decision_to_value, obj, Envelope, ErrorKind, Request, Response, WireError, PROTOCOL_VERSION,
};

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Write-queue depth: mutations beyond this many pending are
    /// rejected with `overloaded` instead of queueing further.
    pub queue_depth: usize,
    /// Snapshot file for `save`, autosave and shutdown persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Autosave after every N commits (0 = only explicit `save` /
    /// shutdown).
    pub autosave_every: u64,
    /// Analysis configuration used when `init` installs a fresh set.
    pub analysis: AnalysisConfig,
    /// Admission tier used when `init` installs a fresh set:
    /// [`TieredPolicy::Screened`] puts the O(path) network-calculus
    /// screen in front of the trajectory fixed point.
    pub tiered: TieredPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_depth: 64,
            snapshot_path: None,
            autosave_every: 0,
            analysis: AnalysisConfig::default(),
            tiered: TieredPolicy::default(),
        }
    }
}

/// Endpoint names, in metrics order.
pub const ENDPOINTS: [&str; 11] = [
    "ping", "init", "admit", "whatif", "release", "report", "metrics", "tick", "fault", "save",
    "shutdown",
];

fn endpoint_index(name: &str) -> usize {
    ENDPOINTS.iter().position(|e| *e == name).unwrap_or(0)
}

/// Per-endpoint request counters and a log2 latency histogram (µs).
struct EpStat {
    requests: u64,
    errors: u64,
    latency_us: Histogram,
}

impl EpStat {
    fn new() -> Self {
        EpStat {
            requests: 0,
            errors: 0,
            latency_us: Histogram::new(),
        }
    }
}

/// The immutable read snapshot the writer publishes after each commit.
struct View {
    /// Standing converged analysis; `None` before `init` or when the
    /// standing set cannot be bounded.
    state: Option<Arc<ConvergedState>>,
    /// Aggregate-curve screen tracking the standing set; present only
    /// under [`TieredPolicy::Screened`]. Lets a `whatif` answer a
    /// clearly-feasible candidate in O(path) without the warm solve.
    screen: Option<Arc<AggregateCache>>,
    /// Admitted flow count (0 before `init`).
    flows: usize,
    metrics: AdmissionMetrics,
    /// Retry queue digest: (flow id, next attempt, attempts).
    retry: Vec<(u32, u64, u32)>,
    clock: u64,
}

impl View {
    fn empty() -> Self {
        View {
            state: None,
            screen: None,
            flows: 0,
            metrics: AdmissionMetrics::default(),
            retry: Vec::new(),
            clock: 0,
        }
    }
}

/// State shared between the writer thread and every reader.
struct Shared {
    view: RwLock<Arc<View>>,
    eps: Mutex<Vec<EpStat>>,
    protocol_errors: AtomicU64,
    overloaded: AtomicU64,
    /// Mutations the writer has applied.
    write_ops: AtomicU64,
    /// Bursts the writer has drained; `write_ops / write_batches` is
    /// the view-publication amortisation factor under load.
    write_batches: AtomicU64,
    /// `whatif` requests answered by the network-calculus screen alone.
    whatif_screen_hits: AtomicU64,
    /// `whatif` requests where the screen was present but could not
    /// vouch, falling back to the exact warm what-if.
    whatif_screen_fallbacks: AtomicU64,
    stopping: AtomicBool,
}

fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

enum WriteOp {
    Init(Network, Vec<SporadicFlow>),
    Admit(SporadicFlow),
    Release(FlowId),
    Tick(u64),
    Fault(FaultScenario, u64),
    Save,
    Shutdown,
}

struct Cmd {
    op: WriteOp,
    reply: SyncSender<Result<Value, WireError>>,
}

/// The daemon engine: call [`Engine::handle`] (or
/// [`Engine::dispatch_line`]) from any number of threads.
pub struct Engine {
    shared: Arc<Shared>,
    tx: SyncSender<Cmd>,
    writer: Mutex<Option<JoinHandle<()>>>,
    queue_depth: usize,
    /// Copy of the analysis config for read-side netcalc reports.
    analysis: AnalysisConfig,
}

impl Engine {
    /// Starts the writer thread around an optional initial controller
    /// (restored from a snapshot, or `None` to await `init`).
    pub fn start(initial: Option<AdmissionController>, cfg: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            view: RwLock::new(Arc::new(View::empty())),
            eps: Mutex::new((0..ENDPOINTS.len()).map(|_| EpStat::new()).collect()),
            protocol_errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            write_batches: AtomicU64::new(0),
            whatif_screen_hits: AtomicU64::new(0),
            whatif_screen_fallbacks: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });
        // Publish the restored state before accepting any request:
        // reads must never observe the empty bootstrap view when the
        // daemon came up from a snapshot.
        let mut initial = initial;
        publish(&shared, &mut initial, true);
        let queue_depth = cfg.queue_depth.max(1);
        let analysis = cfg.analysis.clone();
        let (tx, rx) = sync_channel(queue_depth);
        let sh = shared.clone();
        let writer = std::thread::spawn(move || writer_loop(initial, rx, sh, cfg));
        Engine {
            shared,
            tx,
            writer: Mutex::new(Some(writer)),
            queue_depth,
            analysis,
        }
    }

    /// Whether a shutdown request has been processed.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Waits for the writer thread to exit (after shutdown).
    pub fn join(&self) {
        if let Some(h) = lock(&self.writer).take() {
            let _ = h.join();
        }
    }

    /// Parses and serves one request line, returning the response line
    /// (without trailing newline). Protocol errors are counted and
    /// answered in-band; the connection stays usable.
    pub fn dispatch_line(&self, line: &str) -> String {
        match crate::protocol::parse_request(line) {
            Ok(env) => self.handle(env).to_line(),
            Err((id, msg)) => {
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::err(id, ErrorKind::Protocol, msg).to_line()
            }
        }
    }

    /// Serves one parsed request.
    pub fn handle(&self, env: Envelope) -> Response {
        let start = Instant::now();
        let ep = env.req.endpoint();
        let body = self.dispatch(env.req);
        let elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        {
            let mut eps = lock(&self.shared.eps);
            let stat = &mut eps[endpoint_index(ep)];
            stat.requests += 1;
            if body.is_err() {
                stat.errors += 1;
            }
            stat.latency_us.record(elapsed_us);
        }
        if traj_obs::enabled() {
            traj_obs::counter_add("serve.requests", 1);
        }
        Response { id: env.id, body }
    }

    fn dispatch(&self, req: Request) -> Result<Value, WireError> {
        match req {
            Request::Ping => Ok(obj(vec![
                ("pong", Value::Bool(true)),
                ("version", Value::Int(PROTOCOL_VERSION as i128)),
            ])),
            Request::WhatIf { flow } => self.whatif(flow),
            Request::Report => self.report(),
            Request::Metrics => Ok(self.metrics_value()),
            Request::Init { network, flows } => self.write(WriteOp::Init(network, flows)),
            Request::Admit { flow } => self.write(WriteOp::Admit(flow)),
            Request::Release { flow_id } => self.write(WriteOp::Release(flow_id)),
            Request::Tick { now } => self.write(WriteOp::Tick(now)),
            Request::Fault { scenario, now } => self.write(WriteOp::Fault(scenario, now)),
            Request::Save => self.write(WriteOp::Save),
            Request::Shutdown => {
                let res = self.write(WriteOp::Shutdown);
                // Flag after the writer acknowledged: the response
                // still goes out, then connections and acceptor close.
                self.shared.stopping.store(true, Ordering::SeqCst);
                res
            }
        }
    }

    /// Submits a mutation to the writer, applying backpressure.
    fn write(&self, op: WriteOp) -> Result<Value, WireError> {
        let (rtx, rrx) = sync_channel(1);
        match self.tx.try_send(Cmd { op, reply: rtx }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                if traj_obs::enabled() {
                    traj_obs::counter_add("serve.overloaded", 1);
                }
                return Err(WireError::new(
                    ErrorKind::Overloaded,
                    format!(
                        "write queue full ({} pending); request not executed, retry later",
                        self.queue_depth
                    ),
                ));
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(WireError::new(ErrorKind::Engine, "daemon is stopping"))
            }
        }
        rrx.recv()
            .map_err(|_| WireError::new(ErrorKind::Engine, "writer exited before replying"))?
    }

    fn view(&self) -> Arc<View> {
        read_lock(&self.shared.view).clone()
    }

    fn whatif(&self, flow: SporadicFlow) -> Result<Value, WireError> {
        let view = self.view();
        let Some(state) = view.state.as_ref() else {
            return Err(WireError::new(
                ErrorKind::Unavailable,
                "no standing converged state (init a flow set first)",
            ));
        };
        let decision = match view.screen.as_ref() {
            Some(screen) => {
                let (decision, screened) = evaluate_whatif_screened(screen, state, flow);
                let counter = if screened {
                    &self.shared.whatif_screen_hits
                } else {
                    &self.shared.whatif_screen_fallbacks
                };
                counter.fetch_add(1, Ordering::Relaxed);
                decision
            }
            None => evaluate_whatif(state, flow),
        };
        Ok(decision_to_value(&decision))
    }

    fn report(&self) -> Result<Value, WireError> {
        let view = self.view();
        let Some(state) = view.state.as_ref() else {
            return Err(WireError::new(
                ErrorKind::Unavailable,
                "no standing converged state (init a flow set first)",
            ));
        };
        let report = state.report();
        // Tightest-per-flow selection across engines: the closed-form
        // netcalc bound occasionally beats the trajectory bound (and
        // covers flows the trajectory pass left unbounded); `source`
        // records which engine the published `bound` came from.
        let netcalc = NetcalcAnalyzer.analyze(state.set(), &self.analysis);
        let selections = tightest_bounds(report, &netcalc);
        let flows: Vec<Value> = report
            .per_flow()
            .iter()
            .zip(selections.iter())
            .map(|(r, sel)| {
                obj(vec![
                    ("id", Value::Int(r.flow.0 as i128)),
                    ("name", Value::Str(r.name.clone())),
                    (
                        "wcrt",
                        r.wcrt
                            .value()
                            .map(|w| Value::Int(w as i128))
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "jitter",
                        r.jitter
                            .map(|j| Value::Int(j as i128))
                            .unwrap_or(Value::Null),
                    ),
                    ("deadline", Value::Int(r.deadline as i128)),
                    (
                        "meets",
                        r.meets_deadline().map(Value::Bool).unwrap_or(Value::Null),
                    ),
                    (
                        "bound",
                        sel.tightest
                            .map(|b| Value::Int(b as i128))
                            .unwrap_or(Value::Null),
                    ),
                    (
                        "source",
                        match sel.source {
                            Some(BoundSource::Trajectory) => Value::Str("trajectory".into()),
                            Some(BoundSource::Netcalc) => Value::Str("netcalc".into()),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        let retry: Vec<Value> = view
            .retry
            .iter()
            .map(|(id, next, attempts)| {
                obj(vec![
                    ("flow", Value::Int(*id as i128)),
                    ("next_attempt", Value::Int(*next as i128)),
                    ("attempts", Value::Int(*attempts as i128)),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("flows", Value::Seq(flows)),
            ("all_schedulable", Value::Bool(report.all_schedulable())),
            ("charny", charny_screening(state.set())),
            ("retry", Value::Seq(retry)),
            ("clock", Value::Int(view.clock as i128)),
        ]))
    }

    fn metrics_value(&self) -> Value {
        let view = self.view();
        let endpoints: Vec<(String, Value)> = {
            let eps = lock(&self.shared.eps);
            ENDPOINTS
                .iter()
                .zip(eps.iter())
                .map(|(name, s)| {
                    (
                        (*name).to_string(),
                        obj(vec![
                            ("requests", Value::Int(s.requests as i128)),
                            ("errors", Value::Int(s.errors as i128)),
                            ("p50_us", Value::Int(s.latency_us.percentile(0.50) as i128)),
                            ("p99_us", Value::Int(s.latency_us.percentile(0.99) as i128)),
                            ("max_us", Value::Int(s.latency_us.max() as i128)),
                        ]),
                    )
                })
                .collect()
        };
        obj(vec![
            ("endpoints", Value::Map(endpoints)),
            (
                "protocol_errors",
                Value::Int(self.shared.protocol_errors.load(Ordering::Relaxed) as i128),
            ),
            (
                "overloaded",
                Value::Int(self.shared.overloaded.load(Ordering::Relaxed) as i128),
            ),
            (
                "write_ops",
                Value::Int(self.shared.write_ops.load(Ordering::Relaxed) as i128),
            ),
            (
                "write_batches",
                Value::Int(self.shared.write_batches.load(Ordering::Relaxed) as i128),
            ),
            (
                "whatif_screen_hits",
                Value::Int(self.shared.whatif_screen_hits.load(Ordering::Relaxed) as i128),
            ),
            (
                "whatif_screen_fallbacks",
                Value::Int(self.shared.whatif_screen_fallbacks.load(Ordering::Relaxed) as i128),
            ),
            ("admission", serde_value(&view.metrics)),
            ("flows", Value::Int(view.flows as i128)),
            ("retry_depth", Value::Int(view.retry.len() as i128)),
            ("clock", Value::Int(view.clock as i128)),
        ])
    }
}

fn serde_value<T: Serialize>(t: &T) -> Value {
    t.to_value()
}

/// The Charny–Le Boudec screening bound of the standing EF aggregate:
/// `null` when the aggregate is vacuous (no EF flows — the typed empty
/// case, not a fabricated bound), otherwise the parameters with the
/// bound (`null` bound above the `ν < 1/(H−1)` validity threshold).
fn charny_screening(set: &FlowSet) -> Value {
    let ef: Vec<SporadicFlow> = set
        .flows()
        .iter()
        .filter(|f| f.class.is_ef())
        .cloned()
        .collect();
    match CharnyParams::from_flows(set.network(), &ef) {
        None => Value::Null,
        Some(p) => obj(vec![
            ("hops", Value::Int(p.hops as i128)),
            (
                "bound",
                charny_le_boudec_bound(&p)
                    .map(|b| Value::Int(b as i128))
                    .unwrap_or(Value::Null),
            ),
        ]),
    }
}

fn publish(shared: &Shared, ac: &mut Option<AdmissionController>, remake_state: bool) {
    let next = match ac.as_mut() {
        None => View::empty(),
        Some(ac) => {
            // `converged_state` settles any screen-admitted suffix in
            // one warm solve before the state is published — the
            // per-burst settlement that amortises an admit storm.
            let (state, screen) = if remake_state {
                let state = ac.converged_state().cloned().map(Arc::new);
                (state, ac.screen_cache().cloned().map(Arc::new))
            } else {
                let prev = read_lock(&shared.view);
                (prev.state.clone(), prev.screen.clone())
            };
            View {
                state,
                screen,
                flows: ac.flows().len(),
                metrics: *ac.metrics(),
                retry: ac
                    .retry_queue()
                    .iter()
                    .map(|e| (e.flow.id.0, e.next_attempt, e.attempts))
                    .collect(),
                clock: ac.clock(),
            }
        }
    };
    *write_lock(&shared.view) = Arc::new(next);
}

fn save_now(ac: &mut Option<AdmissionController>, cfg: &EngineConfig) -> Result<Value, WireError> {
    let Some(path) = cfg.snapshot_path.as_ref() else {
        return Err(WireError::new(
            ErrorKind::Engine,
            "no snapshot path configured (start with --snapshot)",
        ));
    };
    let Some(ac) = ac.as_mut() else {
        return Err(WireError::new(
            ErrorKind::Unavailable,
            "nothing to save (no flow set installed)",
        ));
    };
    let snap = DaemonSnapshot::capture(ac);
    save_atomic(path, &snap).map_err(|e| WireError::new(ErrorKind::Engine, e.to_string()))?;
    Ok(obj(vec![
        ("saved", Value::Bool(true)),
        ("flows", Value::Int(snap.controller.flows.len() as i128)),
        ("path", Value::Str(path.display().to_string())),
    ]))
}

/// Applies one mutation to the controller. Sets `mutated` when the
/// standing state changed (the caller republishes the view) and `stop`
/// on shutdown.
fn apply_op(
    op: WriteOp,
    ac: &mut Option<AdmissionController>,
    cfg: &EngineConfig,
    mutated: &mut bool,
    stop: &mut bool,
) -> Result<Value, WireError> {
    match op {
        WriteOp::Init(network, flows) => match FlowSet::new(network, flows) {
            Ok(set) => {
                let n = set.len();
                *ac = Some(
                    AdmissionController::new(set, cfg.analysis.clone()).with_tiered(cfg.tiered),
                );
                *mutated = true;
                Ok(obj(vec![("flows", Value::Int(n as i128))]))
            }
            Err(e) => Err(WireError::new(ErrorKind::Engine, e.to_string())),
        },
        WriteOp::Admit(flow) => match ac.as_mut() {
            None => Err(unavailable()),
            Some(ac) => {
                let d = ac.try_admit(flow);
                *mutated = matches!(d, traj_diffserv::AdmissionDecision::Admitted { .. });
                Ok(decision_to_value(&d))
            }
        },
        WriteOp::Release(id) => match ac.as_mut() {
            None => Err(unavailable()),
            Some(ac) => {
                let outcome = ac.release(id);
                *mutated = outcome.released();
                let tag = match outcome {
                    traj_diffserv::ReleaseOutcome::Released => "released",
                    traj_diffserv::ReleaseOutcome::NotFound => "not_found",
                    traj_diffserv::ReleaseOutcome::LastFlowRetained => "last_flow_retained",
                };
                Ok(obj(vec![("outcome", Value::Str(tag.into()))]))
            }
        },
        WriteOp::Tick(now) => match ac.as_mut() {
            None => Err(unavailable()),
            Some(ac) => {
                let decisions = ac.tick(now);
                *mutated = true; // the clock advanced even if nothing fired
                let ds: Vec<Value> = decisions
                    .iter()
                    .map(|(id, d)| {
                        obj(vec![
                            ("flow", Value::Int(id.0 as i128)),
                            ("decision", decision_to_value(d)),
                        ])
                    })
                    .collect();
                Ok(obj(vec![
                    ("decisions", Value::Seq(ds)),
                    ("clock", Value::Int(ac.clock() as i128)),
                ]))
            }
        },
        WriteOp::Fault(scenario, now) => match ac.as_mut() {
            None => Err(unavailable()),
            Some(ac) => match ac.on_fault(&scenario, now) {
                Ok(resp) => {
                    *mutated = true;
                    let ids = |v: &[FlowId]| {
                        Value::Seq(v.iter().map(|f| Value::Int(f.0 as i128)).collect())
                    };
                    let dropped: Vec<Value> = resp
                        .dropped
                        .iter()
                        .map(|(id, reason)| {
                            obj(vec![
                                ("flow", Value::Int(id.0 as i128)),
                                ("reason", Value::Str(reason.clone())),
                            ])
                        })
                        .collect();
                    Ok(obj(vec![
                        ("dropped", Value::Seq(dropped)),
                        ("rerouted", ids(&resp.rerouted)),
                        ("evicted", ids(&resp.evicted)),
                        ("last_flow_retained", Value::Bool(resp.last_flow_retained)),
                    ]))
                }
                Err(e) => Err(WireError::new(ErrorKind::Engine, e.to_string())),
            },
        },
        WriteOp::Save => save_now(ac, cfg),
        WriteOp::Shutdown => {
            *stop = true;
            let saved = if cfg.snapshot_path.is_some() && ac.is_some() {
                save_now(ac, cfg).is_ok()
            } else {
                false
            };
            Ok(obj(vec![
                ("stopping", Value::Bool(true)),
                ("saved", Value::Bool(saved)),
            ]))
        }
    }
}

fn writer_loop(
    mut ac: Option<AdmissionController>,
    rx: Receiver<Cmd>,
    shared: Arc<Shared>,
    cfg: EngineConfig,
) {
    let mut commits: u64 = 0;
    let max_burst = cfg.queue_depth.max(1);
    while let Ok(first) = rx.recv() {
        // Drain whatever is already queued into one burst so a pile-up
        // of mutations costs one view publication, not one each. The
        // cap keeps reply latency bounded when producers refill the
        // queue as fast as it drains; draining stops at a shutdown so
        // nothing is applied past it.
        let mut burst = vec![first];
        while burst.len() < max_burst && !matches!(burst[burst.len() - 1].op, WriteOp::Shutdown) {
            match rx.try_recv() {
                Ok(cmd) => burst.push(cmd),
                Err(_) => break,
            }
        }
        let mut stop = false;
        let mut burst_mutated = false;
        let commits_before = commits;
        let mut replies = Vec::with_capacity(burst.len());
        for cmd in burst {
            let mut mutated = false;
            let result = apply_op(cmd.op, &mut ac, &cfg, &mut mutated, &mut stop);
            if mutated {
                commits += 1;
                burst_mutated = true;
            }
            replies.push((cmd.reply, result));
            if stop {
                break;
            }
        }
        // One publication for the whole burst. When nothing mutated the
        // metrics / retry digest may still have moved (rejections count
        // too): refresh the cheap fields, keep the state Arc.
        publish(&shared, &mut ac, burst_mutated);
        if cfg.autosave_every > 0
            && commits / cfg.autosave_every > commits_before / cfg.autosave_every
            && cfg.snapshot_path.is_some()
            && save_now(&mut ac, &cfg).is_err()
        {
            // Autosave failures must not take the daemon down; they
            // are counted and the next save retries.
            if traj_obs::enabled() {
                traj_obs::counter_add("serve.autosave_failures", 1);
            }
        }
        shared
            .write_ops
            .fetch_add(replies.len() as u64, Ordering::Relaxed);
        shared.write_batches.fetch_add(1, Ordering::Relaxed);
        if traj_obs::enabled() {
            traj_obs::counter_add("serve.write_batches", 1);
        }
        // Replies go out only after the view covering the burst is
        // live: a client that has its ack in hand reads its own write.
        for (reply, result) in replies {
            let _ = reply.send(result);
        }
        if stop {
            break;
        }
    }
}

fn unavailable() -> WireError {
    WireError::new(
        ErrorKind::Unavailable,
        "no flow set installed (send `init` first)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::Path;

    fn engine_with_example() -> Engine {
        let ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        Engine::start(Some(ac), EngineConfig::default())
    }

    fn flow_json(id: u32, period: i64, deadline: i64) -> String {
        let f = SporadicFlow::uniform(
            id,
            Path::from_ids([2, 3, 4]).unwrap(),
            period,
            4,
            0,
            deadline,
        )
        .unwrap();
        serde_json::to_string(&f).unwrap()
    }

    #[test]
    fn lifecycle_over_the_line_protocol() {
        let engine = engine_with_example();
        let pong = engine.dispatch_line("{\"id\":1,\"op\":\"ping\"}");
        assert!(pong.contains("\"pong\":true"), "{pong}");

        // What-if, then admit the same flow: identical decisions.
        let flow = flow_json(10, 360, 200);
        let wi = engine.dispatch_line(&format!("{{\"id\":2,\"op\":\"whatif\",\"flow\":{flow}}}"));
        let ad = engine.dispatch_line(&format!("{{\"id\":3,\"op\":\"admit\",\"flow\":{flow}}}"));
        assert!(wi.contains("\"decision\":\"admitted\""), "{wi}");
        assert!(ad.contains("\"decision\":\"admitted\""), "{ad}");

        // The published view moved: a duplicate-id what-if now fails.
        let wi2 = engine.dispatch_line(&format!("{{\"id\":4,\"op\":\"whatif\",\"flow\":{flow}}}"));
        assert!(wi2.contains("\"decision\":\"invalid\""), "{wi2}");

        let rep = engine.dispatch_line("{\"id\":5,\"op\":\"report\"}");
        assert!(rep.contains("\"all_schedulable\":true"), "{rep}");

        let rel = engine.dispatch_line("{\"id\":6,\"op\":\"release\",\"flow_id\":10}");
        assert!(rel.contains("\"outcome\":\"released\""), "{rel}");

        let met = engine.dispatch_line("{\"id\":7,\"op\":\"metrics\"}");
        assert!(met.contains("\"protocol_errors\":0"), "{met}");

        let bye = engine.dispatch_line("{\"id\":8,\"op\":\"shutdown\"}");
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        assert!(engine.is_stopping());
        engine.join();
    }

    #[test]
    fn uninitialised_engine_is_unavailable_until_init() {
        let engine = Engine::start(None, EngineConfig::default());
        let flow = flow_json(10, 360, 200);
        let wi = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{flow}}}"));
        assert!(wi.contains("\"kind\":\"unavailable\""), "{wi}");
        let ad = engine.dispatch_line(&format!("{{\"op\":\"admit\",\"flow\":{flow}}}"));
        assert!(ad.contains("\"kind\":\"unavailable\""), "{ad}");

        // Install the paper set over the wire.
        let set = paper_example();
        let network = serde_json::to_string(set.network()).unwrap();
        let flows = serde_json::to_string(&set.flows().to_vec()).unwrap();
        let init = engine.dispatch_line(&format!(
            "{{\"op\":\"init\",\"network\":{network},\"flows\":{flows}}}"
        ));
        assert!(init.contains("\"flows\":5"), "{init}");
        let wi = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{flow}}}"));
        assert!(wi.contains("\"decision\":\"admitted\""), "{wi}");
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn protocol_errors_answer_in_band_and_count() {
        let engine = engine_with_example();
        let r = engine.dispatch_line("this is not json");
        assert!(r.contains("\"kind\":\"protocol\""), "{r}");
        let r = engine.dispatch_line("{\"id\":2,\"op\":\"nope\"}");
        assert!(r.contains("\"id\":2"), "{r}");
        let met = engine.dispatch_line("{\"op\":\"metrics\"}");
        assert!(met.contains("\"protocol_errors\":2"), "{met}");
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn concurrent_whatifs_match_sequential_library_answers() {
        let engine = Arc::new(engine_with_example());
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        // Sequential library answers on the same standing set.
        let state = ConvergedState::build_ef(&set, &cfg).unwrap();
        let candidates: Vec<SporadicFlow> = (0..16)
            .map(|i| {
                SporadicFlow::uniform(
                    100 + i,
                    Path::from_ids([2, 3, 4]).unwrap(),
                    360 + (i as i64) * 36,
                    4,
                    0,
                    150 + (i as i64) * 10,
                )
                .unwrap()
            })
            .collect();
        let expected: Vec<Value> = candidates
            .iter()
            .map(|c| decision_to_value(&evaluate_whatif(&state, c.clone())))
            .collect();
        // Concurrent daemon answers.
        let mut handles = Vec::new();
        for c in candidates.clone() {
            let eng = engine.clone();
            handles.push(std::thread::spawn(move || {
                let flow = serde_json::to_string(&c).unwrap();
                eng.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{flow}}}"))
            }));
        }
        let got: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        for (g, e) in got.iter().zip(&expected) {
            let expected_line = Response::ok(None, e.clone()).to_line();
            assert_eq!(g, &expected_line);
        }
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn bursts_amortise_view_publication_and_keep_read_your_writes() {
        let engine = Arc::new(engine_with_example());
        // Flood the writer from many threads so bursts actually form;
        // every tick must succeed (or be shed as typed overload — the
        // default depth of 64 admits all 48 here).
        let mut handles = Vec::new();
        for i in 0..48u32 {
            let eng = engine.clone();
            handles.push(std::thread::spawn(move || {
                eng.dispatch_line(&format!("{{\"op\":\"tick\",\"now\":{i}}}"))
            }));
        }
        for h in handles {
            let r = h.join().unwrap_or_default();
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        // An acked admit is immediately visible to a read on the same
        // thread: the duplicate-id what-if must see the committed flow.
        let flow = flow_json(11, 360, 200);
        let ad = engine.dispatch_line(&format!("{{\"op\":\"admit\",\"flow\":{flow}}}"));
        assert!(ad.contains("\"decision\":\"admitted\""), "{ad}");
        let wi = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{flow}}}"));
        assert!(wi.contains("\"decision\":\"invalid\""), "{wi}");

        let met = engine.dispatch_line("{\"op\":\"metrics\"}");
        let v: Value = serde_json::from_str(&met).unwrap();
        let result = serde::value::field(v.as_map().unwrap(), "result")
            .and_then(Value::as_map)
            .unwrap();
        let counter = |name| {
            serde::value::field(result, name)
                .and_then(Value::as_int)
                .unwrap()
        };
        let (ops, batches) = (counter("write_ops"), counter("write_batches"));
        assert_eq!(ops, 49, "{met}");
        assert!(
            (1..=ops).contains(&batches),
            "batches {batches} out of range for {ops} ops"
        );
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn tiered_engine_screens_whatifs_admits_and_reports_bound_sources() {
        // A lightly-loaded line: the screen's Charny bound covers every
        // generous deadline, so both read-side what-ifs and writer-side
        // admits are served without the trajectory fixed point.
        let set = traj_model::examples::line_topology(2, 3, 4000, 4, 0, 1).unwrap();
        let ac = AdmissionController::new(set, AnalysisConfig::default())
            .with_tiered(TieredPolicy::Screened);
        let engine = Engine::start(
            Some(ac),
            EngineConfig {
                tiered: TieredPolicy::Screened,
                ..EngineConfig::default()
            },
        );
        let mk = |id: u32| {
            let f =
                SporadicFlow::uniform(id, Path::from_ids([1, 2, 3]).unwrap(), 4000, 4, 0, 50_000)
                    .unwrap()
                    .with_class(traj_model::flow::TrafficClass::Ef);
            serde_json::to_string(&f).unwrap()
        };

        // Read-side what-if: answered by the published screen.
        let wi = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{}}}", mk(100)));
        assert!(wi.contains("\"decision\":\"admitted\""), "{wi}");

        // Writer-side admits: screened, settled once per burst.
        for id in 100..108 {
            let ad = engine.dispatch_line(&format!("{{\"op\":\"admit\",\"flow\":{}}}", mk(id)));
            assert!(ad.contains("\"decision\":\"admitted\""), "{ad}");
        }
        // A duplicate-id what-if after the publishes: identical invalid
        // decision whether screened or exact.
        let dup = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{}}}", mk(100)));
        assert!(dup.contains("\"decision\":\"invalid\""), "{dup}");

        let met = engine.dispatch_line("{\"op\":\"metrics\"}");
        assert!(met.contains("\"whatif_screen_hits\":2"), "{met}");
        assert!(met.contains("\"whatif_screen_fallbacks\":0"), "{met}");
        // Controller counters ride along in the admission sub-object.
        assert!(met.contains("\"screen_hits\":8"), "{met}");

        // The report renders the tightest bound with engine provenance.
        let rep = engine.dispatch_line("{\"op\":\"report\"}");
        assert!(rep.contains("\"all_schedulable\":true"), "{rep}");
        assert!(
            rep.contains("\"source\":\"trajectory\"") || rep.contains("\"source\":\"netcalc\""),
            "{rep}"
        );
        assert!(rep.contains("\"bound\":"), "{rep}");
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn untiered_engine_reports_no_screen_activity() {
        let engine = engine_with_example();
        let flow = flow_json(10, 360, 200);
        let wi = engine.dispatch_line(&format!("{{\"op\":\"whatif\",\"flow\":{flow}}}"));
        assert!(wi.contains("\"decision\":\"admitted\""), "{wi}");
        let met = engine.dispatch_line("{\"op\":\"metrics\"}");
        assert!(met.contains("\"whatif_screen_hits\":0"), "{met}");
        assert!(met.contains("\"whatif_screen_fallbacks\":0"), "{met}");
        // The bound/source provenance columns render regardless of tier.
        let rep = engine.dispatch_line("{\"op\":\"report\"}");
        assert!(rep.contains("\"source\":"), "{rep}");
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn overload_is_a_typed_rejection() {
        // Depth-1 queue + a slow fault op in front: the next write is
        // rejected as overloaded, not queued or blocked.
        let ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let engine = Arc::new(Engine::start(
            Some(ac),
            EngineConfig {
                queue_depth: 1,
                ..EngineConfig::default()
            },
        ));
        // Saturate the queue from many threads; at least one rejection
        // must be typed `overloaded` and the rest must all succeed.
        let mut handles = Vec::new();
        for i in 0..12u32 {
            let eng = engine.clone();
            handles.push(std::thread::spawn(move || {
                eng.dispatch_line(&format!("{{\"op\":\"tick\",\"now\":{i}}}"))
            }));
        }
        let results: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        let ok = results.iter().filter(|r| r.contains("\"ok\":true")).count();
        let shed = results
            .iter()
            .filter(|r| r.contains("\"kind\":\"overloaded\""))
            .count();
        assert_eq!(ok + shed, 12, "{results:?}");
        assert!(ok >= 1, "at least the queued ticks must run: {results:?}");
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }
}
