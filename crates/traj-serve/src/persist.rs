//! Snapshot persistence: atomic save, load, and verified restore.
//!
//! The snapshot file is one JSON document holding the controller image
//! ([`ControllerSnapshot`]: admitted set, retry queue with every
//! backoff and due time, metrics, the monotone clock) plus the verdict
//! record of the standing converged analysis ([`ConvergedSnapshot`]).
//! On restore the converged state is rebuilt cold and checked against
//! the record — a daemon must not come back up handing out guarantees
//! a different code version computed (see `traj_analysis::snapshot`).
//!
//! Saves are atomic: write to `<path>.tmp`, then rename over `<path>`.
//! A crash mid-save leaves the previous snapshot intact; a crash
//! between commits loses at most the decisions since the last save,
//! never the file.

use std::path::Path;

use serde::{Deserialize, Serialize};
use traj_analysis::{ConvergedSnapshot, SnapshotError};
use traj_diffserv::{AdmissionController, ControllerSnapshot, RestoreError};

/// Snapshot format version; bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The durable image of a running daemon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonSnapshot {
    /// Format version (readers reject unknown versions).
    pub version: u32,
    /// Controller image: flows, retry queue, metrics, clock.
    pub controller: ControllerSnapshot,
    /// Verdict record of the standing converged analysis, when one
    /// existed at capture time (it may legitimately be absent right
    /// after a fault, before the next what-if rebuilds it).
    pub converged: Option<ConvergedSnapshot>,
}

/// Why a snapshot could not be saved, loaded or restored.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid snapshot document.
    Corrupt(String),
    /// The document parsed but the controller image is inconsistent.
    Controller(RestoreError),
    /// The converged record failed its rebuild-and-verify check.
    Converged(SnapshotError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O: {e}"),
            PersistError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            PersistError::Controller(e) => write!(f, "controller image rejected: {e}"),
            PersistError::Converged(e) => write!(f, "converged record rejected: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl DaemonSnapshot {
    /// Captures a controller (and its standing converged analysis, if
    /// one is built or buildable) into a durable image.
    pub fn capture(ac: &mut AdmissionController) -> DaemonSnapshot {
        let converged = ac.converged_state().map(ConvergedSnapshot::capture);
        DaemonSnapshot {
            version: SNAPSHOT_VERSION,
            controller: ac.snapshot(),
            converged,
        }
    }

    /// Rebuilds the controller, verifying both layers: the controller
    /// image must pass its bookkeeping invariants, and the converged
    /// record (when present) must match a cold rebuild verdict for
    /// verdict — so a snapshot from a diverged analysis version is a
    /// typed error, not a silently different set of guarantees.
    pub fn restore(self) -> Result<AdmissionController, PersistError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "snapshot version {} (this daemon reads {})",
                self.version, SNAPSHOT_VERSION
            )));
        }
        let ac = AdmissionController::restore(self.controller).map_err(PersistError::Controller)?;
        if let Some(record) = self.converged {
            let restored = record.restore().map_err(PersistError::Converged)?;
            let recorded: Vec<u32> = restored.set().flows().iter().map(|f| f.id.0).collect();
            let standing: Vec<u32> = ac.flows().flows().iter().map(|f| f.id.0).collect();
            if recorded != standing {
                return Err(PersistError::Corrupt(format!(
                    "converged record covers flows {recorded:?} but the controller admits {standing:?}"
                )));
            }
        }
        Ok(ac)
    }
}

/// Saves a snapshot atomically (`<path>.tmp` + rename).
pub fn save_atomic(path: &Path, snap: &DaemonSnapshot) -> Result<(), PersistError> {
    let text = serde_json::to_string(snap).map_err(|e| PersistError::Corrupt(e.to_string()))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes())?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a snapshot document (no restore — call
/// [`DaemonSnapshot::restore`] on the result).
pub fn load(path: &Path) -> Result<DaemonSnapshot, PersistError> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| PersistError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::AnalysisConfig;
    use traj_model::examples::paper_example;
    use traj_model::{FaultScenario, NodeId};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("traj_serve_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_restore_round_trip() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        ac.on_fault(&FaultScenario::node_down(NodeId(9)), 10)
            .unwrap();
        assert!(ac.tick(12).is_empty());
        let snap = DaemonSnapshot::capture(&mut ac);
        let path = tmp_path("roundtrip");
        save_atomic(&path, &snap).unwrap();
        let restored = load(&path).unwrap().restore().unwrap();
        assert_eq!(restored.clock(), ac.clock());
        assert_eq!(restored.retry_queue(), ac.retry_queue());
        assert_eq!(restored.metrics(), ac.metrics());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_and_corruption_are_typed_errors() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut snap = DaemonSnapshot::capture(&mut ac);
        snap.version = 99;
        assert!(matches!(snap.restore(), Err(PersistError::Corrupt(_))));

        let path = tmp_path("corrupt");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(matches!(load(&path), Err(PersistError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }
}
