//! The newline-delimited JSON line protocol.
//!
//! One request per line, one response per line, strictly in order per
//! connection. Requests are JSON objects with an optional numeric `id`
//! (echoed back verbatim so clients can pipeline) and an `op` selector:
//!
//! ```text
//! → {"id":1,"op":"ping"}
//! ← {"id":1,"ok":true,"result":{"pong":true,"version":1}}
//! → {"id":2,"op":"admit","flow":{...}}
//! ← {"id":2,"ok":true,"result":{"decision":"admitted","wcrt":57}}
//! → {"id":3,"op":"whatif","flow":{...}}
//! ← {"id":3,"ok":false,"error":{"kind":"overloaded","message":"..."}}
//! ```
//!
//! Flow, network and fault-scenario payloads use the model crate's
//! serde representation verbatim — the daemon and its clients share the
//! same vendored data model, so the wire format is the serialization of
//! the source of truth rather than a hand-maintained mirror. Decisions
//! and outcomes are mapped to a flat, stable wire shape (see
//! [`decision_to_value`]) so clients do not depend on Rust enum
//! encoding details.
//!
//! Error kinds are closed: `protocol` (unparseable request — the
//! connection stays open), `overloaded` (the bounded write queue is
//! full, retry later; the typed backpressure signal), `unavailable`
//! (no flow set installed yet, or the standing analysis is unbounded)
//! and `engine` (the operation ran and failed: invalid snapshot,
//! rejected fault, I/O).

use serde::value::field;
use serde::Value;
use traj_diffserv::AdmissionDecision;
use traj_model::{FaultScenario, FlowId, Network, SporadicFlow};

/// Wire protocol version, reported by `ping`.
pub const PROTOCOL_VERSION: i64 = 1;

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness + version probe.
    Ping,
    /// Installs a fresh flow set (replacing any current one). The
    /// operator bootstrap: a daemon started without a snapshot has no
    /// state, and a [`traj_model::FlowSet`] cannot be empty, so the
    /// first admitted set arrives whole.
    Init {
        /// The topology.
        network: Network,
        /// The initial (already guaranteed) flows.
        flows: Vec<SporadicFlow>,
    },
    /// Admit a flow (commits on success).
    Admit {
        /// The candidate.
        flow: SporadicFlow,
    },
    /// Evaluate a flow without committing — served read-only from the
    /// published converged snapshot, concurrently with other reads.
    WhatIf {
        /// The candidate.
        flow: SporadicFlow,
    },
    /// Release an admitted flow.
    Release {
        /// The flow to release.
        flow_id: FlowId,
    },
    /// Per-flow verdicts of the standing set plus the Charny–Le Boudec
    /// EF screening bound.
    Report,
    /// Serve + admission metrics.
    Metrics,
    /// Drive the retry clock (see `AdmissionController::clock`).
    Tick {
        /// Caller clock (monotone envelope applies).
        now: u64,
    },
    /// Apply a fault scenario to the admitted set.
    Fault {
        /// The scenario.
        scenario: FaultScenario,
        /// Caller clock for the displaced flows' retry schedule.
        now: u64,
    },
    /// Persist a snapshot to the configured path.
    Save,
    /// Save (when configured) and stop the daemon.
    Shutdown,
}

impl Request {
    /// The endpoint name used in metrics and latency histograms.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Init { .. } => "init",
            Request::Admit { .. } => "admit",
            Request::WhatIf { .. } => "whatif",
            Request::Release { .. } => "release",
            Request::Report => "report",
            Request::Metrics => "metrics",
            Request::Tick { .. } => "tick",
            Request::Fault { .. } => "fault",
            Request::Save => "save",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request with its client-chosen correlation id.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Echoed back in the response, when the client sent one.
    pub id: Option<i128>,
    /// The operation.
    pub req: Request,
}

/// Closed set of error kinds a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse; the connection stays open.
    Protocol,
    /// The bounded write queue is full — the typed backpressure
    /// rejection. The request was NOT executed; retry later.
    Overloaded,
    /// No flow set is installed (or the standing analysis is
    /// unbounded): reads cannot be served yet.
    Unavailable,
    /// The operation ran and failed (invalid snapshot, rejected fault,
    /// I/O error, daemon stopping).
    Engine,
}

impl ErrorKind {
    /// The wire tag.
    pub fn wire(&self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Engine => "engine",
        }
    }
}

/// A typed failure, rendered into the response's `error` object.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }
}

/// A response line: `{"id":N,"ok":true,"result":...}` or
/// `{"id":N,"ok":false,"error":{"kind":...,"message":...}}`.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id, echoed.
    pub id: Option<i128>,
    /// Result payload or typed error.
    pub body: Result<Value, WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: Option<i128>, result: Value) -> Self {
        Response {
            id,
            body: Ok(result),
        }
    }

    /// A failure response.
    pub fn err(id: Option<i128>, kind: ErrorKind, message: impl Into<String>) -> Self {
        Response {
            id,
            body: Err(WireError::new(kind, message)),
        }
    }

    /// Renders the single-line JSON wire form (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(3);
        if let Some(id) = self.id {
            entries.push(("id".into(), Value::Int(id)));
        }
        match &self.body {
            Ok(result) => {
                entries.push(("ok".into(), Value::Bool(true)));
                entries.push(("result".into(), result.clone()));
            }
            Err(e) => {
                entries.push(("ok".into(), Value::Bool(false)));
                entries.push((
                    "error".into(),
                    obj(vec![
                        ("kind", Value::Str(e.kind.wire().into())),
                        ("message", Value::Str(e.message.clone())),
                    ]),
                ));
            }
        }
        // A `Value` always renders (the writer is infallible); fall
        // back to a hand-built error line if the shim ever changes.
        serde_json::to_string(&Value::Map(entries))
            .unwrap_or_else(|_| "{\"ok\":false,\"error\":{\"kind\":\"engine\",\"message\":\"response serialization failed\"}}".into())
    }
}

/// Builds a JSON object from `(&str, Value)` pairs.
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn want<T: serde::Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, String> {
    let v = field(entries, name).ok_or_else(|| format!("missing field `{name}`"))?;
    T::from_value(v).map_err(|e| format!("field `{name}`: {}", e.message()))
}

/// Parses one request line. `Err` carries the protocol-error message
/// (and the id when one could be extracted, so the error response still
/// correlates).
pub fn parse_request(line: &str) -> Result<Envelope, (Option<i128>, String)> {
    let v: Value = serde_json::from_str(line).map_err(|e| (None, e.to_string()))?;
    let entries = v
        .as_map()
        .ok_or((None, "request must be a JSON object".to_string()))?;
    let id = field(entries, "id").and_then(Value::as_int);
    let op = field(entries, "op")
        .and_then(Value::as_str)
        .ok_or((id, "missing string field `op`".to_string()))?;
    let req = match op {
        "ping" => Request::Ping,
        "init" => Request::Init {
            network: want(entries, "network").map_err(|e| (id, e))?,
            flows: want(entries, "flows").map_err(|e| (id, e))?,
        },
        "admit" => Request::Admit {
            flow: want(entries, "flow").map_err(|e| (id, e))?,
        },
        "whatif" => Request::WhatIf {
            flow: want(entries, "flow").map_err(|e| (id, e))?,
        },
        "release" => Request::Release {
            flow_id: FlowId(want::<u32>(entries, "flow_id").map_err(|e| (id, e))?),
        },
        "report" => Request::Report,
        "metrics" => Request::Metrics,
        "tick" => Request::Tick {
            now: want(entries, "now").map_err(|e| (id, e))?,
        },
        "fault" => Request::Fault {
            scenario: want(entries, "scenario").map_err(|e| (id, e))?,
            now: want(entries, "now").map_err(|e| (id, e))?,
        },
        "save" => Request::Save,
        "shutdown" => Request::Shutdown,
        other => return Err((id, format!("unknown op `{other}`"))),
    };
    Ok(Envelope { id, req })
}

/// Maps a decision to its flat wire shape:
/// `{"decision":"admitted","wcrt":N}`,
/// `{"decision":"rejected","victim":id,"wcrt":N|null}` or
/// `{"decision":"invalid","message":"..."}`.
pub fn decision_to_value(d: &AdmissionDecision) -> Value {
    match d {
        AdmissionDecision::Admitted { wcrt } => obj(vec![
            ("decision", Value::Str("admitted".into())),
            ("wcrt", Value::Int(*wcrt as i128)),
        ]),
        AdmissionDecision::Rejected { victim, wcrt } => obj(vec![
            ("decision", Value::Str("rejected".into())),
            ("victim", Value::Int(victim.0 as i128)),
            (
                "wcrt",
                wcrt.map(|w| Value::Int(w as i128)).unwrap_or(Value::Null),
            ),
        ]),
        AdmissionDecision::Invalid(msg) => obj(vec![
            ("decision", Value::Str("invalid".into())),
            ("message", Value::Str(msg.clone())),
        ]),
    }
}

/// Parses the wire shape back into a decision (the sustained-load
/// client uses this to compare daemon answers against the in-process
/// library, integer for integer).
pub fn decision_from_value(v: &Value) -> Result<AdmissionDecision, String> {
    let entries = v.as_map().ok_or("decision must be an object")?;
    let tag = field(entries, "decision")
        .and_then(Value::as_str)
        .ok_or("missing `decision` tag")?;
    match tag {
        "admitted" => {
            let wcrt = field(entries, "wcrt")
                .and_then(Value::as_int)
                .ok_or("admitted decision without wcrt")?;
            Ok(AdmissionDecision::Admitted { wcrt: wcrt as i64 })
        }
        "rejected" => {
            let victim = field(entries, "victim")
                .and_then(Value::as_int)
                .ok_or("rejected decision without victim")?;
            let wcrt = match field(entries, "wcrt") {
                Some(Value::Null) | None => None,
                Some(other) => other.as_int().map(|w| w as i64),
            };
            Ok(AdmissionDecision::Rejected {
                victim: FlowId(victim as u32),
                wcrt,
            })
        }
        "invalid" => {
            let msg = field(entries, "message")
                .and_then(Value::as_str)
                .unwrap_or_default();
            Ok(AdmissionDecision::Invalid(msg.to_string()))
        }
        other => Err(format!("unknown decision tag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn request_lines_parse_and_correlate() {
        let env = parse_request("{\"id\":7,\"op\":\"ping\"}").unwrap();
        assert_eq!(env.id, Some(7));
        assert!(matches!(env.req, Request::Ping));

        let env = parse_request("{\"op\":\"tick\",\"now\":42}").unwrap();
        assert_eq!(env.id, None);
        assert!(matches!(env.req, Request::Tick { now: 42 }));

        // Model payloads round-trip through their serde representation.
        let set = paper_example();
        let flow = serde_json::to_string(&set.flows()[0]).unwrap();
        let env = parse_request(&format!("{{\"id\":1,\"op\":\"admit\",\"flow\":{flow}}}")).unwrap();
        match env.req {
            Request::Admit { flow } => assert_eq!(flow.id, set.flows()[0].id),
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn protocol_errors_keep_the_id_when_extractable() {
        let (id, msg) = parse_request("{\"id\":3,\"op\":\"frobnicate\"}").unwrap_err();
        assert_eq!(id, Some(3));
        assert!(msg.contains("frobnicate"));
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, None);
        let (id, msg) = parse_request("{\"id\":9,\"op\":\"admit\"}").unwrap_err();
        assert_eq!(id, Some(9));
        assert!(msg.contains("flow"));
    }

    #[test]
    fn responses_render_single_lines() {
        let ok = Response::ok(Some(5), obj(vec![("pong", Value::Bool(true))]));
        let line = ok.to_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"id\":5"));
        assert!(line.contains("\"ok\":true"));
        let err = Response::err(None, ErrorKind::Overloaded, "queue full");
        let line = err.to_line();
        assert!(line.contains("\"kind\":\"overloaded\""));
        assert!(line.contains("\"ok\":false"));
    }

    #[test]
    fn decisions_round_trip_the_wire_shape() {
        for d in [
            AdmissionDecision::Admitted { wcrt: 57 },
            AdmissionDecision::Rejected {
                victim: FlowId(3),
                wcrt: Some(201),
            },
            AdmissionDecision::Rejected {
                victim: FlowId(4),
                wcrt: None,
            },
            AdmissionDecision::Invalid("duplicate id".into()),
        ] {
            let v = decision_to_value(&d);
            assert_eq!(decision_from_value(&v).unwrap(), d);
        }
    }
}
