//! Connection handling: one request line in, one response line out.
//!
//! [`serve_connection`] is generic over `BufRead`/`Write` so the same
//! loop serves a TCP socket, the stdio mode (`traj-serve --stdio`), and
//! in-memory test transports. [`TcpServer`] wraps it in a
//! thread-per-connection accept loop with `TCP_NODELAY` (the protocol
//! is one small line per decision; Nagle would serialise the daemon's
//! p99 behind 40 ms ACK delays).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use crate::engine::Engine;

/// Serves one connection until EOF, a fatal write error, or daemon
/// shutdown. Returns the number of requests served.
pub fn serve_connection<R: BufRead, W: Write>(
    engine: &Engine,
    reader: R,
    mut writer: W,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = engine.dispatch_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
        if engine.is_stopping() {
            break;
        }
    }
    Ok(served)
}

/// A listening daemon: accept loop + thread per connection.
pub struct TcpServer {
    engine: Arc<Engine>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — [`Self::addr`]
    /// reports the bound one) and starts accepting.
    pub fn bind(engine: Arc<Engine>, addr: &str) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let eng = engine.clone();
        let accept = std::thread::spawn(move || accept_loop(listener, eng));
        Ok(TcpServer {
            engine,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon has shut down (a client sent `shutdown`)
    /// and the accept loop has exited.
    pub fn wait(mut self) {
        self.engine.join();
        // The acceptor blocks in `accept`; poke it so it observes the
        // stop flag and exits.
        if let Ok(poke) = TcpStream::connect(self.addr) {
            drop(poke);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, engine: Arc<Engine>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if engine.is_stopping() {
            break;
        }
        let _ = stream.set_nodelay(true);
        let eng = engine.clone();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(_) => return,
            };
            let _ = serve_connection(&eng, reader, stream);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use std::io::BufRead;
    use traj_analysis::AnalysisConfig;
    use traj_diffserv::AdmissionController;
    use traj_model::examples::paper_example;

    fn start_tcp() -> (Arc<Engine>, TcpServer) {
        let ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let engine = Arc::new(Engine::start(Some(ac), EngineConfig::default()));
        let server = TcpServer::bind(engine.clone(), "127.0.0.1:0").unwrap();
        (engine, server)
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out.trim_end().to_string()
    }

    #[test]
    fn stdio_style_transport_serves_lines() {
        let ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let engine = Engine::start(Some(ac), EngineConfig::default());
        let input = "{\"id\":1,\"op\":\"ping\"}\n\n{\"id\":2,\"op\":\"report\"}\n";
        let mut out: Vec<u8> = Vec::new();
        let served = serve_connection(&engine, input.as_bytes(), &mut out).unwrap();
        assert_eq!(served, 2, "blank lines are skipped");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"pong\":true"));
        assert!(lines[1].contains("\"all_schedulable\":true"));
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let (_engine, server) = start_tcp();
        let addr = server.addr();
        let mut a = TcpStream::connect(addr).unwrap();
        let mut b = TcpStream::connect(addr).unwrap();
        assert!(roundtrip(&mut a, "{\"id\":1,\"op\":\"ping\"}").contains("\"pong\":true"));
        assert!(roundtrip(&mut b, "{\"id\":1,\"op\":\"metrics\"}").contains("\"ok\":true"));
        let bye = roundtrip(&mut a, "{\"id\":2,\"op\":\"shutdown\"}");
        assert!(bye.contains("\"stopping\":true"), "{bye}");
        server.wait();
    }
}
