//! The admission daemon binary.
//!
//! ```text
//! traj-serve --listen 127.0.0.1:7171 --snapshot state.json --autosave 64
//! traj-serve --stdio                 # serve the line protocol on stdin/stdout
//! ```
//!
//! With `--snapshot`, an existing snapshot file is restored on start
//! (verified: controller invariants plus converged-verdict cross-check)
//! and written back on `save`, autosave and `shutdown`. Without a
//! restored snapshot the daemon starts empty and waits for an `init`
//! request.

use std::process::ExitCode;
use std::sync::Arc;

use traj_analysis::AnalysisConfig;
use traj_diffserv::TieredPolicy;
use traj_serve::engine::{Engine, EngineConfig};
use traj_serve::persist;
use traj_serve::server::{serve_connection, TcpServer};

struct Args {
    listen: Option<String>,
    stdio: bool,
    snapshot: Option<std::path::PathBuf>,
    autosave: u64,
    queue_depth: usize,
    tiered: bool,
}

const USAGE: &str = "usage: traj-serve [--listen ADDR | --stdio] [--snapshot PATH] \
[--autosave N] [--queue-depth N] [--tiered]\n\
  --listen ADDR    serve the line protocol on a TCP address (e.g. 127.0.0.1:7171)\n\
  --stdio          serve the line protocol on stdin/stdout\n\
  --snapshot PATH  restore from PATH if it exists; save there on save/shutdown\n\
  --autosave N     additionally save after every N commits (default 0 = off)\n\
  --queue-depth N  bounded write queue depth before `overloaded` (default 64)\n\
  --tiered         screen admissions with the network-calculus bound before\n\
                   the trajectory fixed point (same decisions, less work)";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        stdio: false,
        snapshot: None,
        autosave: 0,
        queue_depth: 64,
        tiered: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--stdio" => args.stdio = true,
            "--snapshot" => args.snapshot = Some(value("--snapshot")?.into()),
            "--autosave" => {
                args.autosave = value("--autosave")?
                    .parse()
                    .map_err(|e| format!("--autosave: {e}"))?
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--tiered" => args.tiered = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.stdio == args.listen.is_some() {
        return Err(format!(
            "exactly one of --listen or --stdio is required\n{USAGE}"
        ));
    }
    if args.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let tiered = if args.tiered {
        TieredPolicy::Screened
    } else {
        TieredPolicy::TrajectoryOnly
    };

    let initial = match args.snapshot.as_ref() {
        Some(path) if path.exists() => match persist::load(path).and_then(|s| s.restore()) {
            Ok(ac) => {
                eprintln!(
                    "traj-serve: restored {} flows (clock {}) from {}",
                    ac.flows().len(),
                    ac.clock(),
                    path.display()
                );
                Some(ac)
            }
            Err(e) => {
                // A snapshot that fails verification must never be
                // silently ignored: the operator decides.
                eprintln!("traj-serve: refusing to start: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => None,
    };
    // The flag overrides a restored snapshot's policy only when given;
    // otherwise the snapshot's own tier survives the restart.
    let initial = match initial {
        Some(ac) if args.tiered => Some(ac.with_tiered(tiered)),
        other => other,
    };

    let engine = Arc::new(Engine::start(
        initial,
        EngineConfig {
            queue_depth: args.queue_depth,
            snapshot_path: args.snapshot.clone(),
            autosave_every: args.autosave,
            analysis: AnalysisConfig::default(),
            tiered,
        },
    ));

    if args.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let result = serve_connection(&engine, stdin.lock(), stdout.lock());
        // EOF on stdin ends the session; persist if configured.
        engine.dispatch_line("{\"op\":\"shutdown\"}");
        engine.join();
        return match result {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("traj-serve: stdio transport failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let listen = args.listen.as_deref().unwrap_or("127.0.0.1:0");
    match TcpServer::bind(engine, listen) {
        Ok(server) => {
            println!("traj-serve: listening on {}", server.addr());
            server.wait();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("traj-serve: cannot bind {listen}: {e}");
            ExitCode::FAILURE
        }
    }
}
