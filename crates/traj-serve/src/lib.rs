//! `traj-serve`: the admission daemon.
//!
//! Serves warm Property-3 admission decisions over a newline-delimited
//! JSON line protocol (TCP or stdio), wrapping
//! [`traj_diffserv::AdmissionController`] in a long-running process:
//!
//! * [`protocol`] — the wire format: requests, responses, typed errors;
//! * [`engine`] — single-writer/many-reader core: mutations serialise
//!   through a bounded queue into one writer thread, what-ifs and
//!   reports read an immutable published snapshot concurrently;
//! * [`server`] — the transports: a generic `BufRead`/`Write` loop and
//!   a thread-per-connection TCP acceptor;
//! * [`persist`] — atomic snapshot save/load with verified restore
//!   (controller invariants + converged-verdict cross-check), so a
//!   restarted daemon provably hands out the same guarantees.

pub mod engine;
pub mod persist;
pub mod protocol;
pub mod server;

pub use engine::{Engine, EngineConfig, ENDPOINTS};
pub use persist::{load, save_atomic, DaemonSnapshot, PersistError, SNAPSHOT_VERSION};
pub use protocol::{
    decision_from_value, decision_to_value, parse_request, Envelope, ErrorKind, Request, Response,
    WireError, PROTOCOL_VERSION,
};
pub use server::{serve_connection, TcpServer};
