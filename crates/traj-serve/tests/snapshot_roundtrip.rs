//! Persistence suite: a daemon that saves, dies and restores is
//! observably the same daemon.
//!
//! Property: capture → serialize to disk → load → verified restore is
//! bit-identical on everything a client can observe — per-flow WCRT and
//! jitter verdicts, the admitted-set order, the retry queue with every
//! due time and backoff, the metrics counters, and the monotone clock.
//! The state is captured *mid-fault* (displaced flows still queued,
//! before any repair tick) because that is exactly when a long-running
//! daemon is most likely to be restarted — and when a sloppy restore
//! would silently drop the flows waiting to come back.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use traj_analysis::AnalysisConfig;
use traj_diffserv::AdmissionController;
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::{FaultScenario, NodeId};
use traj_serve::persist::{load, save_atomic, DaemonSnapshot};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_path() -> std::path::PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "traj_serve_roundtrip_{}_{n}.json",
        std::process::id()
    ));
    p
}

/// (flow id, next attempt, backoff, attempts) for each queued retry.
type RetryDigest = Vec<(u32, u64, u64, u32)>;
/// (flow id, wcrt, jitter) for each flow of the converged report.
type VerdictDigest = Vec<(u32, Option<i64>, Option<i64>)>;

/// Everything a client can observe, flattened for comparison.
fn observable(ac: &mut AdmissionController) -> (Vec<u32>, RetryDigest, String, u64) {
    let ids: Vec<u32> = ac.flows().flows().iter().map(|f| f.id.0).collect();
    let retry: Vec<(u32, u64, u64, u32)> = ac
        .retry_queue()
        .iter()
        .map(|e| (e.flow.id.0, e.next_attempt, e.backoff, e.attempts))
        .collect();
    let metrics = format!("{:?}", ac.metrics());
    (ids, retry, metrics, ac.clock())
}

/// Per-flow verdicts of the standing converged analysis.
fn verdicts(ac: &mut AdmissionController) -> Option<VerdictDigest> {
    ac.converged_state().map(|s| {
        s.report()
            .per_flow()
            .iter()
            .map(|r| (r.flow.0, r.wcrt.value(), r.jitter))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn persisted_daemon_state_round_trips_bit_identically(
        seed in 0u64..1_000_000,
        dead_node in 1u32..8,
        fault_at in 0u64..500,
        probe in proptest::collection::vec(0u64..1_000, 0..6),
    ) {
        let p = MeshParams {
            nodes: 8,
            flows: 6,
            max_utilisation: 0.65,
            ..Default::default()
        };
        let set = random_mesh(seed, &p).unwrap();
        let mut ac = AdmissionController::new(set, AnalysisConfig::default());

        // Drive the daemon into a mid-fault state: flows displaced, a
        // retry schedule standing, possibly some out-of-order ticks
        // already absorbed by the monotone clock.
        let _ = ac.on_fault(&FaultScenario::node_down(NodeId(dead_node)), fault_at);
        if let Some(&t) = probe.first() {
            let _ = ac.tick(t);
        }

        // Capture, save, load, restore — through the real file format.
        let before_verdicts = verdicts(&mut ac);
        let snap = DaemonSnapshot::capture(&mut ac);
        let path = tmp_path();
        save_atomic(&path, &snap).unwrap();
        let restored = load(&path).unwrap().restore();
        let _ = std::fs::remove_file(&path);
        let mut restored = match restored {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("restore rejected: {e}"))),
        };

        // Observable state is bit-identical...
        prop_assert_eq!(observable(&mut ac), observable(&mut restored));
        // ...including the converged verdict for every flow (the
        // guarantees the daemon hands out).
        prop_assert_eq!(before_verdicts, verdicts(&mut restored));
        prop_assert!(restored.check_invariants().is_empty());

        // And the two daemons stay in lockstep through further life:
        // identical retry decisions tick for tick.
        for &now in probe.iter().skip(1) {
            prop_assert_eq!(ac.tick(now), restored.tick(now), "diverged at tick {}", now);
            prop_assert_eq!(ac.clock(), restored.clock());
        }
        prop_assert_eq!(observable(&mut ac), observable(&mut restored));
    }
}
