//! Convergence telemetry of the `Smax` fixed point.
//!
//! The [`crate::Analyzer`] records, for every run, which iteration
//! strategy was requested and which one actually ran (the two differ
//! under [`crate::FixpointStrategy::Auto`]), plus one
//! [`RoundTelemetry`] entry per round: how many cells were recomputed
//! versus skipped by the dirty-read analysis, how many changed, and the
//! largest per-cell delta. The aggregate travels on the
//! [`crate::SetReport`] so batch pipelines can diagnose convergence
//! behaviour offline; when a [`traj_obs`] sink is installed the same
//! numbers are also emitted live as `fixpoint.round` /
//! `fixpoint.converged` events.
//!
//! Collection is unconditional: the per-round numbers fall out of work
//! the fixed point does anyway (the counters are increments on existing
//! branches), so the no-sink overhead is a few adds per round — measured
//! by the `metrics_export` benchmark (E14).

use serde::{Deserialize, Serialize};

use crate::config::FixpointStrategy;

/// One round of the fixed point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTelemetry {
    /// 1-based round number.
    pub round: usize,
    /// Cells whose update was actually evaluated this round.
    pub recomputed: usize,
    /// Cells skipped because their skeleton read no entry the previous
    /// round changed (Jacobi only; Gauss–Seidel recomputes everything).
    pub skipped: usize,
    /// Cells whose value changed this round.
    pub changed: usize,
    /// Largest single-cell increase this round, in ticks (0 on the
    /// convergence-check round). The fixed point is monotone from a
    /// below-fixed-point seed, so deltas are non-negative.
    pub max_delta: i64,
}

/// Whole-run convergence record, surfaced on [`crate::SetReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixpointTelemetry {
    /// Strategy named in the [`crate::AnalysisConfig`].
    pub requested: FixpointStrategy,
    /// Strategy that actually ran (never
    /// [`FixpointStrategy::Auto`]).
    pub chosen: FixpointStrategy,
    /// Whether `chosen` came out of the `Auto` size heuristic.
    pub auto_selected: bool,
    /// Flows in the analysed set.
    pub flows: usize,
    /// `Smax` cells subject to iteration: in-universe flows' non-ingress
    /// path positions.
    pub cells: usize,
    /// Rounds executed (0 under
    /// [`crate::SmaxMode::TransitOnly`], which skips the fixed
    /// point).
    pub rounds: usize,
    /// Whether the run converged (a non-converged run surfaces as a
    /// [`crate::Verdict::Diverged`] and this record rides along on the
    /// error path's report only when assembled by the caller).
    pub converged: bool,
    /// Per-round detail, oldest first.
    #[serde(default)]
    pub per_round: Vec<RoundTelemetry>,
    /// Connected components of the crossing graph over the analysis
    /// universe (0 when the decomposition was not computed — under
    /// [`crate::ShardMode::Monolithic`], `TransitOnly`, or the reference
    /// engine).
    #[serde(default)]
    pub components: usize,
    /// Flow count of the largest component (0 when not decomposed).
    #[serde(default)]
    pub largest_component: usize,
    /// Per-shard solve record, one entry per component the sharded
    /// solver actually ran (empty under [`crate::ShardMode::Monolithic`]
    /// or when a warm start skipped every component — single-component
    /// graphs run the arena solver and record one shard). Ordered by
    /// first member flow index regardless of the cost-based schedule the
    /// solver executed them in.
    #[serde(default)]
    pub shards: Vec<ShardTelemetry>,
}

/// One component's solve inside the sharded fixed point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTelemetry {
    /// Flows in the component.
    pub flows: usize,
    /// `Smax` cells the component iterates (non-ingress positions).
    pub cells: usize,
    /// Rounds this component took to converge (components terminate
    /// independently; the run's `rounds` is the maximum over shards).
    pub rounds: usize,
    /// Cells this shard actually evaluated across all rounds — the
    /// dirty-cell worklist's total work.
    #[serde(default)]
    pub recomputed: usize,
    /// Cells the worklist skipped across all rounds (none of their
    /// read values changed in the previous round).
    #[serde(default)]
    pub skipped: usize,
    /// Jacobi rounds whose evaluation fanned out across the rayon pool
    /// (see [`crate::IntraParallel`]).
    #[serde(default)]
    pub parallel_rounds: usize,
    /// Wall-clock of this component's solve, in microseconds (integral
    /// so the record stays `Eq`-comparable).
    pub solve_micros: u64,
}

impl FixpointTelemetry {
    /// Total cells recomputed across all rounds.
    pub fn total_recomputed(&self) -> usize {
        self.per_round.iter().map(|r| r.recomputed).sum()
    }

    /// Total cells skipped across all rounds.
    pub fn total_skipped(&self) -> usize {
        self.per_round.iter().map(|r| r.skipped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip_preserves_rounds() {
        let t = FixpointTelemetry {
            requested: FixpointStrategy::Auto,
            chosen: FixpointStrategy::GaussSeidel,
            auto_selected: true,
            flows: 5,
            cells: 17,
            rounds: 2,
            converged: true,
            per_round: vec![
                RoundTelemetry {
                    round: 1,
                    recomputed: 17,
                    skipped: 0,
                    changed: 12,
                    max_delta: 9,
                },
                RoundTelemetry {
                    round: 2,
                    recomputed: 17,
                    skipped: 0,
                    changed: 0,
                    max_delta: 0,
                },
            ],
            components: 2,
            largest_component: 3,
            shards: vec![ShardTelemetry {
                flows: 3,
                cells: 11,
                rounds: 2,
                recomputed: 18,
                skipped: 4,
                parallel_rounds: 1,
                solve_micros: 40,
            }],
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: FixpointTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.total_recomputed(), 34);
        assert_eq!(back.total_skipped(), 0);
    }
}
