//! Interference-structure cache: the `Smax`-independent skeleton of
//! Property 1's bound function, computed once per (flow, prefix length).
//!
//! Between two rounds of the `Smax` fixed point, everything in
//! `bound_function` except the two `Smax` reads per window is unchanged:
//! the crossing segments and their anchor pairs, the per-window `Smin`
//! and `M` terms, the window periods and costs, the same-direction
//! per-node maxima, the link-delay sums, and the non-preemption `δ`.
//! Recomputing them every round made each round
//! `O(flows² · hops³)`-ish; this module hoists all of it into a
//! [`PrefixSkeleton`] built once, so a round only
//!
//! 1. reads two [`SmaxTable`] entries per window (by precomputed path
//!    position, no node-id lookups), and
//! 2. re-runs the jump-point maximisation — with the busy period `B`
//!    *also* precomputed, since `B` depends only on the windows'
//!    `(period, cost)` pairs and not on their alignments.
//!
//! The build itself amortises across prefixes: the crossing structure
//! against the *full* path is resolved once per flow pair into
//! positional arrays, and each prefix's segments fall out by clipping
//! (see [`SegMeta`]) — no per-(pair, prefix) allocation or `index_of`
//! scan. The per-hop front minima and per-node same-direction maxima
//! are likewise prefix-independent away from the prefix's last node
//! (proof at [`Hoisted`]), so they too are computed once per flow.
//!
//! Soundness of the hoisting: with the flow set, configuration, and
//! universe fixed, every hoisted quantity is a pure function of path
//! values and static flow parameters. Only the alignment
//! `A = Smaxᵢ(f_{j,i}) + Smaxⱼ(f_{i,j}) + base` varies across rounds,
//! and it is reassembled from live table reads on every evaluation, so
//! cached and direct assembly produce identical [`BoundFunction`]s —
//! asserted term-by-term by `skeletons_match_direct_assembly` below and
//! end-to-end by the differential suite in `tests/equivalence.rs`.

use std::sync::Arc;

use rayon::prelude::*;
use traj_model::{CrossDirection, Duration, FlowSet, MinConvention, NodeId, SporadicFlow, Tick};

use crate::config::{AnalysisConfig, ReverseCounting};
use crate::smax::SmaxTable;
use crate::terms::{BoundFunction, MaxPoint, Overflowed, Window};
use crate::wcrt::DeltaProvider;

/// Below this many freshly-built rows a delta construction runs
/// serially — reused rows are refcount bumps, and the rayon dispatch
/// costs more than building a warm start's handful of stale rows
/// inline.
const SERIAL_REBUILD_MAX_ROWS: usize = 32;

/// One interference window of Property 1 with its `Smax` reads left
/// symbolic: the alignment is `smax[owner][pos_i] + smax[j_idx][pos_j] +
/// base`, everything else is frozen.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowSkeleton {
    /// Flow contributing the packets (for reporting in [`Window`]).
    pub(crate) flow: traj_model::FlowId,
    /// Period `Tⱼ`.
    pub(crate) period: Duration,
    /// Cost per counted packet, `C_j` maximised over the segment.
    pub(crate) cost: Duration,
    /// Index of the anchor `f_{j,i}` in the *owner's* path (the owner's
    /// `Smax` read).
    pub(crate) pos_i: usize,
    /// Index of the interfering flow in the set.
    pub(crate) j_idx: usize,
    /// Index of the anchor `f_{i,j}` in the *crosser's* path (the
    /// crosser's `Smax` read).
    pub(crate) pos_j: usize,
    /// `− Sminⱼ(f_{j,i}) − M(prefix, f_{i,j}) + Jⱼ`: the `Smax`-free part
    /// of the alignment.
    pub(crate) base: Duration,
}

/// The frozen bound-function structure for one flow over one prefix.
#[derive(Debug, Clone)]
pub(crate) struct PrefixSkeleton {
    /// Interference windows with symbolic alignments.
    pub(crate) windows: Vec<WindowSkeleton>,
    /// The self term `(1 + ⌊(t + Jᵢ)/Tᵢ⌋) · Cᵢ^{slow}` — fully constant.
    pub(crate) self_window: Window,
    /// `δᵢ + Σ_{h≠slow} max C + Σ Lmax`.
    pub(crate) constant: Duration,
    /// `−Jᵢ`.
    pub(crate) t_lo: Tick,
    /// Lemma 3's busy period `Bᵢ^{slow}`: alignment-independent, so
    /// computed once at build time. `Ok(None)` means it exceeded the
    /// configured guard — every evaluation reports overload; `Err` means
    /// the recurrence overflowed i64 — every evaluation reports overflow.
    pub(crate) busy: Result<Option<Duration>, Overflowed>,
}

impl PrefixSkeleton {
    /// Materialises the bound function under the given `Smax` table.
    ///
    /// Window order matches the direct assembly in
    /// `Analyzer::bound_function` (interference windows in flow/segment
    /// order, then the self term) so the two are comparable term by term.
    pub(crate) fn bound_function(&self, flow_idx: usize, smax: &SmaxTable) -> BoundFunction {
        let mut windows: Vec<Window> = Vec::with_capacity(self.windows.len() + 1);
        for w in &self.windows {
            windows.push(Window {
                flow: w.flow,
                a: smax.at(flow_idx, w.pos_i) + smax.at(w.j_idx, w.pos_j) + w.base,
                period: w.period,
                cost: w.cost,
            });
        }
        windows.push(self.self_window);
        BoundFunction {
            windows,
            constant: self.constant,
            t_lo: self.t_lo,
        }
    }

    /// Maximises the materialised bound under the given `Smax` table,
    /// reusing the precomputed busy period; `Ok(None)` on overload,
    /// `Err` when the busy period or the maximisation overflowed.
    pub(crate) fn maximise(
        &self,
        flow_idx: usize,
        smax: &SmaxTable,
    ) -> Result<Option<MaxPoint>, Overflowed> {
        match self.busy? {
            Some(busy) => self
                .bound_function(flow_idx, smax)
                .maximise_given_busy(busy)
                .map(Some),
            None => Ok(None),
        }
    }

    /// Whether any `Smax` entry this skeleton reads is flagged in
    /// `changed` (the owner's entries at each `pos_i`, the crossers' at
    /// each `pos_j`). When none is, re-evaluating the bound against the
    /// current table reproduces the previous result — the basis of the
    /// incremental Jacobi round.
    pub(crate) fn depends_on_changed(&self, flow_idx: usize, changed: &[Vec<bool>]) -> bool {
        self.windows
            .iter()
            .any(|w| changed[flow_idx][w.pos_i] || changed[w.j_idx][w.pos_j])
    }

    /// Whether any window of this skeleton reads the `Smax` row of a
    /// flagged flow. Unlike [`Self::depends_on_changed`] the owner's own
    /// reads are not consulted — the caller asks "can a change in the
    /// flagged set reach this row", and the owner's row is by premise
    /// not in the set.
    pub(crate) fn reads_flagged_row(&self, flagged: &[bool]) -> bool {
        self.windows.iter().any(|w| flagged[w.j_idx])
    }

    /// A copy with every window's crosser index shifted across the
    /// removal of set index `removed` (see
    /// [`InterferenceCache::shrink_for`]). Only valid for skeletons that
    /// hold no window on the removed flow itself — guaranteed for clean
    /// rows, whose owner the removed flow did not cross.
    fn remapped_over_removal(&self, removed: usize) -> PrefixSkeleton {
        let mut out = self.clone();
        for w in &mut out.windows {
            if w.j_idx > removed {
                w.j_idx -= 1;
            }
        }
        out
    }
}

/// One full-path crossing segment by its span of *owner-path indices*.
///
/// Within a segment the path indices are consecutive and monotone
/// (extension requires a step of exactly ±1 with a consistent sign), so
/// `[lo, hi]` determines the node set, and the segments of the prefix of
/// the first `k` nodes fall out by clipping: the piece is
/// `[lo, min(hi, k−1)]` when `lo < k` (else the segment misses the
/// prefix). Dropping nodes with index `≥ k` removes a run's head or tail
/// in the crosser's order, which also breaks index-consecutiveness
/// against any dropped node — pieces can shrink but never merge or
/// split. A piece keeps its direction unless reduced to a single node,
/// which the decomposition classifies as a degenerate same-direction
/// crossing.
#[derive(Debug, Clone, Copy)]
struct SegMeta {
    lo: usize,
    hi: usize,
    direction: CrossDirection,
}

/// Per-owner-path-node view of one crosser (see [`FullCrosser`]): the
/// former six parallel `by_idx` vectors fused into one record so a
/// crosser resolution is a single allocation — the per-pair allocation
/// count dominated dense-set cache builds.
#[derive(Clone, Copy)]
struct NodeView {
    /// Crosser's cost at this owner-path node (0 where it does not
    /// visit — the value `cost_at` reports there, which
    /// `ZeroConvention` needs).
    cost: Duration,
    /// Crosser's own successor of this shared node
    /// (`EdgeTraversing`'s criterion).
    suc: Option<NodeId>,
    /// Position of this shared node in the *crosser's* path (its `Smin`
    /// and `Smax` reads).
    jpos: Option<usize>,
    /// Direction of the full-path segment covering this node, if any.
    dir: Option<CrossDirection>,
    /// `lo` of the covering segment (valid where `dir` is `Some`).
    lo: usize,
    /// Max crosser cost over `[lo..=idx]` of the covering segment — the
    /// clipped piece's `C^{slow}` by one lookup.
    cum_cost: Duration,
}

impl NodeView {
    const EMPTY: NodeView = NodeView {
        cost: 0,
        suc: None,
        jpos: None,
        dir: None,
        lo: 0,
        cum_cost: 0,
    };
}

/// One universe flow crossing a flow's *full* path, resolved once per
/// flow pair into per-path-index arrays so the per-prefix clipping in
/// [`InterferenceCache::build_prefix`] never allocates or rescans a
/// path.
struct FullCrosser<'s> {
    j_idx: usize,
    flow: &'s SporadicFlow,
    /// Segment spans in the crosser's visiting order (the decomposition
    /// order, which the window order must follow).
    segs: Vec<SegMeta>,
    /// Owner-path indices of all shared nodes in the *crosser's*
    /// visiting order (`ZeroConvention`'s whole-path direction test).
    pis_crosser_order: Vec<usize>,
    /// One [`NodeView`] per owner-path index.
    by_idx: Vec<NodeView>,
}

/// Per-owner-flow quantities that are the same for every prefix length.
///
/// The key fact: for a hop or node index `idx ≤ k − 2`, the direction of
/// the prefix-`k` segment piece covering `idx` equals the full-path
/// segment's direction. Proof: the piece covering `idx` is
/// `[lo, min(hi, k−1)]`; it degenerates to a single node only when
/// `lo = min(hi, k−1)`, which with `lo ≤ idx ≤ k−2` forces `lo = hi` —
/// a segment that was already a degenerate same-direction crossing.
/// Hence the front minima `M` (which only look at hops strictly before
/// the prefix's last node) and the per-node same-direction maxima at all
/// but the last node can be computed once against the full path. The
/// last node and `ZeroConvention`'s whole-path direction test remain
/// prefix-specific and are handled per `k`.
struct Hoisted {
    /// `m_cum_full[idx]` = `M(prefix, nodes[idx])` for any prefix
    /// containing the hop, per `min_front_cost` of the configured
    /// convention (unused — empty sums — under `ZeroConvention`).
    m_cum_full: Vec<Duration>,
    /// Per-node same-direction cost maxima against the full path (valid
    /// at `idx` for every prefix with `k ≥ idx + 2`).
    node_max_full: Vec<Duration>,
    /// `sum_node_max[m]` = `Σ_{idx<m} node_max_full[idx]`.
    sum_node_max: Vec<Duration>,
    /// `lmax_cum[h]` = Σ `Lmax` over the first `h` hops.
    lmax_cum: Vec<Duration>,
    /// `Lmin` per hop.
    hop_lmin: Vec<Duration>,
    /// `slow_idx[k−1]` = index of the first cost maximum among the first
    /// `k` costs (the prefix's slow node).
    slow_idx: Vec<usize>,
    /// `max_cost[k−1]` = `Cᵢ^{slow}` of the length-`k` prefix.
    max_cost: Vec<Duration>,
}

/// All prefix skeletons of a flow set under one configuration and
/// universe: `skeletons[flow][k-1]` covers the prefix of the first `k`
/// nodes of that flow's path, `k ∈ 1..=path.len()`.
///
/// Rows are `Arc`-shared so the delta constructors (`rebuild_for`,
/// `extend_for`) reuse a clean flow's row by bumping a refcount instead
/// of deep-cloning its skeleton vectors — the warm-start admission path
/// touches O(closure) rows, not O(flows). Rows are never mutated after
/// construction, so sharing is safe.
#[derive(Debug, Clone)]
pub(crate) struct InterferenceCache {
    prefixes: Vec<Arc<Vec<PrefixSkeleton>>>,
    /// `Smin` per (flow, path position) — a pure function of the flow's
    /// own path and the network, kept so the delta constructors can
    /// reuse a clean flow's row instead of recomputing the whole table.
    smin: Vec<Arc<Vec<Duration>>>,
}

impl InterferenceCache {
    /// Builds every skeleton, in parallel across flows.
    pub(crate) fn build<D: DeltaProvider>(
        set: &FlowSet,
        cfg: &AnalysisConfig,
        universe: &[bool],
        delta: &D,
    ) -> Self {
        let smin = Self::smin_table(set, cfg);
        let node_index = set.node_flow_index();
        let prefixes: Vec<Arc<Vec<PrefixSkeleton>>> = (0..set.len())
            .into_par_iter()
            .map(|flow_idx| {
                Arc::new(Self::build_row(
                    set,
                    cfg,
                    universe,
                    delta,
                    &smin,
                    &node_index,
                    flow_idx,
                ))
            })
            .collect();
        InterferenceCache { prefixes, smin }
    }

    /// Every prefix skeleton of one flow, built fresh.
    #[allow(clippy::too_many_arguments)]
    fn build_row<D: DeltaProvider>(
        set: &FlowSet,
        cfg: &AnalysisConfig,
        universe: &[bool],
        delta: &D,
        smin: &[Arc<Vec<Duration>>],
        node_index: &std::collections::HashMap<NodeId, Vec<usize>>,
        flow_idx: usize,
    ) -> Vec<PrefixSkeleton> {
        let fi = &set.flows()[flow_idx];
        let full = Self::resolve_crossers(set, fi, universe, node_index);
        let hoist = Self::hoist(set, cfg, fi, &full);
        // Each prefix's converged busy period seeds the next one's
        // Lemma-3 iteration (see `busy_period_of_pairs_seeded` for the
        // monotonicity argument); overloaded or overflowed prefixes
        // reset the chain.
        let mut prev_busy: Option<Duration> = None;
        (1..=fi.path.len())
            .map(|k| {
                let sk = Self::build_prefix(
                    set, cfg, delta, flow_idx, k, &full, smin, &hoist, prev_busy,
                );
                prev_busy = match sk.busy {
                    Ok(Some(b)) => Some(b),
                    _ => None,
                };
                sk
            })
            .collect()
    }

    /// The skeleton of `flow_idx`'s prefix of length `k`.
    pub(crate) fn prefix(&self, flow_idx: usize, k: usize) -> &PrefixSkeleton {
        &self.prefixes[flow_idx][k - 1]
    }

    /// Estimated per-round evaluation cost of the row: total skeleton
    /// windows across its iterated prefixes (positions `1..len`), plus
    /// one per cell for the self term and sweep overhead. The sharded
    /// solver schedules components largest-estimate-first so a dominant
    /// component no longer serialises the tail behind it.
    pub(crate) fn row_cost_estimate(&self, flow_idx: usize) -> usize {
        let row = &self.prefixes[flow_idx];
        row[..row.len() - 1]
            .iter()
            .map(|sk| sk.windows.len() + 1)
            .sum()
    }

    /// Rebuilds only the rows flagged in `stale`, cloning the rest from
    /// `healthy`. Sound when, for every non-stale flow, neither its path
    /// nor the paths and universe membership of any flow crossing it
    /// changed between the two sets — exactly the closure invariant the
    /// survivability engine's dirty propagation establishes: a clean
    /// flow's skeleton is a pure function of quantities that fault
    /// application left untouched, so the healthy row is bit-identical
    /// to what a fresh build would produce (asserted by the fault
    /// differential suite).
    pub(crate) fn rebuild_for<D: DeltaProvider>(
        healthy: &InterferenceCache,
        set: &FlowSet,
        cfg: &AnalysisConfig,
        universe: &[bool],
        delta: &D,
        stale: &[bool],
    ) -> Self {
        let smin = Self::smin_rows(set, cfg, stale, |i| Some(&healthy.smin[i]));
        let node_index = set.node_flow_index();
        let build = |flow_idx: usize| {
            if !stale[flow_idx] {
                return Arc::clone(&healthy.prefixes[flow_idx]);
            }
            Arc::new(Self::build_row(
                set,
                cfg,
                universe,
                delta,
                &smin,
                &node_index,
                flow_idx,
            ))
        };
        let prefixes = Self::rows_for(set.len(), stale, build);
        InterferenceCache { prefixes, smin }
    }

    /// Delta extension for admission: `set` is `standing`'s set plus
    /// appended flows (the candidate last), `stale` flags — over the
    /// *extended* index space — the rows to build fresh; every other row
    /// is cloned from `standing` at the same index.
    ///
    /// Appending keeps every standing flow's set index, so the cloned
    /// skeletons' `j_idx` references stay valid verbatim. Soundness of
    /// the cloning is the usual closure invariant: a clean flow's
    /// skeleton depends only on its own path, the paths/parameters of
    /// flows crossing it, and their universe membership — none of which
    /// an appended non-crossing candidate changes. Indices at or beyond
    /// the standing cache's length are built fresh regardless of their
    /// flag (there is nothing to clone).
    pub(crate) fn extend_for<D: DeltaProvider>(
        standing: &InterferenceCache,
        set: &FlowSet,
        cfg: &AnalysisConfig,
        universe: &[bool],
        delta: &D,
        stale: &[bool],
    ) -> Self {
        let n_standing = standing.prefixes.len();
        let smin = Self::smin_rows(set, cfg, stale, |i| standing.smin.get(i));
        let node_index = set.node_flow_index();
        let build = |flow_idx: usize| {
            if flow_idx < n_standing && !stale[flow_idx] {
                return Arc::clone(&standing.prefixes[flow_idx]);
            }
            Arc::new(Self::build_row(
                set,
                cfg,
                universe,
                delta,
                &smin,
                &node_index,
                flow_idx,
            ))
        };
        let prefixes = Self::rows_for(set.len(), stale, build);
        InterferenceCache { prefixes, smin }
    }

    /// Delta shrink for teardown: `set` is `standing`'s set with the
    /// flow at standing index `removed` taken out (indices above it
    /// shifted down by one), `stale` flags — over the *shrunk* index
    /// space — the rows to build fresh.
    ///
    /// Clean rows are cloned with their window `j_idx` references
    /// remapped across the removal gap. A clean flow cannot hold a
    /// window on the removed flow itself (a window means the removed
    /// flow crossed it, which makes it stale by construction of the
    /// removal closure), so the remap is a pure index shift.
    pub(crate) fn shrink_for<D: DeltaProvider>(
        standing: &InterferenceCache,
        set: &FlowSet,
        cfg: &AnalysisConfig,
        universe: &[bool],
        delta: &D,
        stale: &[bool],
        removed: usize,
    ) -> Self {
        let old_idx = |i: usize| if i < removed { i } else { i + 1 };
        let smin = Self::smin_rows(set, cfg, stale, |i| Some(&standing.smin[old_idx(i)]));
        let node_index = set.node_flow_index();
        let build = |flow_idx: usize| {
            if !stale[flow_idx] {
                return Arc::new(
                    standing.prefixes[old_idx(flow_idx)]
                        .iter()
                        .map(|sk| sk.remapped_over_removal(removed))
                        .collect::<Vec<_>>(),
                );
            }
            Arc::new(Self::build_row(
                set,
                cfg,
                universe,
                delta,
                &smin,
                &node_index,
                flow_idx,
            ))
        };
        let prefixes = Self::rows_for(set.len(), stale, build);
        InterferenceCache { prefixes, smin }
    }

    /// `Smin` per (flow, path position), shared by every window's
    /// alignment base instead of an O(hops) recomputation per window.
    fn smin_table(set: &FlowSet, cfg: &AnalysisConfig) -> Vec<Arc<Vec<Duration>>> {
        set.flows()
            .iter()
            .map(|fj| Arc::new(Self::smin_row(set, cfg, fj)))
            .collect()
    }

    fn smin_row(set: &FlowSet, cfg: &AnalysisConfig, fj: &SporadicFlow) -> Vec<Duration> {
        fj.path
            .nodes()
            .iter()
            .map(|&h| set.smin(fj, h, cfg.smin_mode).unwrap_or(0))
            .collect()
    }

    /// The `Smin` table for a delta construction: clean flows reuse the
    /// prior row handed back by `prior` (their paths and the network are
    /// unchanged — the closure invariant again), stale or new flows
    /// recompute. `prior` returning `None` (an appended flow has no
    /// prior row) also recomputes.
    fn smin_rows<'p>(
        set: &FlowSet,
        cfg: &AnalysisConfig,
        stale: &[bool],
        prior: impl Fn(usize) -> Option<&'p Arc<Vec<Duration>>>,
    ) -> Vec<Arc<Vec<Duration>>> {
        set.flows()
            .iter()
            .enumerate()
            .map(|(i, fj)| match prior(i) {
                Some(row) if !stale.get(i).copied().unwrap_or(true) => Arc::clone(row),
                _ => Arc::new(Self::smin_row(set, cfg, fj)),
            })
            .collect()
    }

    /// Maps `build` over all row indices — in parallel when enough rows
    /// are flagged stale to pay for the dispatch, serially otherwise
    /// (the warm-start path rebuilds a handful of rows; the rest are
    /// refcount bumps that need no thread pool).
    fn rows_for(
        n: usize,
        stale: &[bool],
        build: impl Fn(usize) -> Arc<Vec<PrefixSkeleton>> + Sync,
    ) -> Vec<Arc<Vec<PrefixSkeleton>>> {
        let fresh = stale.iter().filter(|&&s| s).count() + n.saturating_sub(stale.len());
        if fresh <= SERIAL_REBUILD_MAX_ROWS {
            (0..n).map(build).collect()
        } else {
            (0..n).into_par_iter().map(build).collect()
        }
    }

    /// Whether any skeleton of `flow_idx` (any prefix) reads the `Smax`
    /// row of a flagged flow — the dependency test behind the fixed
    /// point's active-row worklist.
    pub(crate) fn row_reads_flagged(&self, flow_idx: usize, flagged: &[bool]) -> bool {
        self.prefixes[flow_idx]
            .iter()
            .any(|sk| sk.reads_flagged_row(flagged))
    }

    /// Resolves every universe flow crossing `fi`'s full path into a
    /// [`FullCrosser`] — one memo lookup and one positional pass per
    /// flow pair. The owner is included: it participates in the `M`
    /// minima and the same-direction maxima.
    ///
    /// Candidates come from the inverted node index instead of a scan of
    /// the whole set: only flows sharing a node with `fi`'s path can
    /// cross it, and the index yields exactly those. The candidate list
    /// is sorted ascending, so the crosser order (and hence the window
    /// order of every skeleton) is identical to the full scan's.
    fn resolve_crossers<'s>(
        set: &'s FlowSet,
        fi: &SporadicFlow,
        universe: &[bool],
        node_index: &std::collections::HashMap<NodeId, Vec<usize>>,
    ) -> Vec<FullCrosser<'s>> {
        let path_len = fi.path.len();
        let mut candidates: Vec<usize> = fi
            .path
            .nodes()
            .iter()
            .filter_map(|n| node_index.get(n))
            .flatten()
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates
            .into_iter()
            .map(|j_idx| (j_idx, &set.flows()[j_idx]))
            .filter(|(j_idx, _)| universe[*j_idx])
            .filter_map(|(j_idx, fj)| {
                let segments = set.crossing_segments_shared(fj, &fi.path);
                if segments.is_empty() {
                    return None;
                }
                let mut segs = Vec::with_capacity(segments.len());
                let mut pis_crosser_order = Vec::new();
                let mut by_idx = vec![NodeView::EMPTY; path_len];
                for s in segments.iter() {
                    let (mut lo, mut hi) = (usize::MAX, 0);
                    for &n in &s.nodes {
                        let (Some(pi), Some(jpos)) = (fi.path.index_of(n), fj.path.index_of(n))
                        else {
                            continue; // segment nodes lie on both paths
                        };
                        by_idx[pi].cost = fj.costs()[jpos];
                        by_idx[pi].suc = fj.path.nodes().get(jpos + 1).copied();
                        by_idx[pi].jpos = Some(jpos);
                        by_idx[pi].dir = Some(s.direction);
                        pis_crosser_order.push(pi);
                        lo = lo.min(pi);
                        hi = hi.max(pi);
                    }
                    let mut cum = 0;
                    for view in &mut by_idx[lo..=hi] {
                        cum = cum.max(view.cost);
                        view.cum_cost = cum;
                        view.lo = lo;
                    }
                    segs.push(SegMeta {
                        lo,
                        hi,
                        direction: s.direction,
                    });
                }
                Some(FullCrosser {
                    j_idx,
                    flow: fj,
                    segs,
                    pis_crosser_order,
                    by_idx,
                })
            })
            .collect()
    }

    /// Computes the prefix-independent per-flow arrays (see [`Hoisted`]).
    fn hoist(
        set: &FlowSet,
        cfg: &AnalysisConfig,
        fi: &SporadicFlow,
        full: &[FullCrosser<'_>],
    ) -> Hoisted {
        let len = fi.path.len();
        let nodes = fi.path.nodes();
        let net = set.network();

        let mut hop_lmin = Vec::with_capacity(len.saturating_sub(1));
        let mut lmax_cum = vec![0; len];
        for idx in 0..len - 1 {
            let d = net.link_delay(nodes[idx], nodes[idx + 1]);
            hop_lmin.push(d.lmin);
            lmax_cum[idx + 1] = lmax_cum[idx] + d.lmax;
        }

        // Front minima per hop, exactly as `min_front_cost`; the
        // direction at a hop index is prefix-independent (see
        // [`Hoisted`]), so one pass serves every prefix.
        let mut m_cum_full = vec![0; len];
        if cfg.min_convention != MinConvention::ZeroConvention {
            let edge = cfg.min_convention == MinConvention::EdgeTraversing;
            let mut acc = 0;
            for idx in 0..len - 1 {
                let next = nodes[idx + 1];
                let min_cost = full
                    .iter()
                    .filter(|fc| {
                        fc.by_idx[idx].dir == Some(CrossDirection::Same)
                            && (!edge || fc.by_idx[idx].suc == Some(next))
                    })
                    .map(|fc| fc.by_idx[idx].cost)
                    .min()
                    .unwrap_or(0);
                acc += min_cost + hop_lmin[idx];
                m_cum_full[idx + 1] = acc;
            }
        }

        let mut node_max_full = vec![0; len];
        for (idx, nm) in node_max_full.iter_mut().enumerate() {
            *nm = full
                .iter()
                .filter(|fc| fc.by_idx[idx].dir == Some(CrossDirection::Same))
                .map(|fc| fc.by_idx[idx].cost)
                .max()
                .unwrap_or(0);
        }
        let mut sum_node_max = vec![0; len];
        for m in 1..len {
            sum_node_max[m] = sum_node_max[m - 1] + node_max_full[m - 1];
        }

        let costs = fi.costs();
        let mut slow_idx = vec![0; len];
        let mut max_cost = vec![0; len];
        let mut best = 0;
        for (k1, &c) in costs.iter().enumerate() {
            if c > costs[best] {
                best = k1;
            }
            slow_idx[k1] = best;
            max_cost[k1] = costs[best];
        }

        Hoisted {
            m_cum_full,
            node_max_full,
            sum_node_max,
            lmax_cum,
            hop_lmin,
            slow_idx,
            max_cost,
        }
    }

    /// Mirrors `Analyzer::bound_function` with the `Smax` reads replaced
    /// by `(position, base)` records; any structural change there must be
    /// replicated here (guarded by `skeletons_match_direct_assembly`).
    ///
    /// Unlike the direct assembly — which calls `m_term_filtered` once
    /// per window anchor and `max_samedir_cost_filtered` once per node,
    /// each call rescanning every flow's segments — this build clips the
    /// precomputed [`FullCrosser`] spans against the prefix and reads
    /// the [`Hoisted`] arrays. Same arithmetic, O(segments) work and no
    /// allocation beyond the window vector itself.
    #[allow(clippy::too_many_arguments)]
    fn build_prefix<D: DeltaProvider>(
        set: &FlowSet,
        cfg: &AnalysisConfig,
        delta: &D,
        flow_idx: usize,
        k: usize,
        full: &[FullCrosser<'_>],
        smin: &[Arc<Vec<Duration>>],
        hoist: &Hoisted,
        busy_seed: Option<Duration>,
    ) -> PrefixSkeleton {
        let fi = &set.flows()[flow_idx];
        // `k` ranges over 1..=len by construction; the fallback is inert.
        let prefix = fi.path.prefix_len(k).unwrap_or_else(|| fi.path.clone());

        // `M` as a cumulative array over the prefix hops. Under
        // `ZeroConvention` the front minimum ranges over flows crossing
        // the *prefix* in the same whole-path direction — a per-`k`
        // criterion (the crosser-order-first and path-order-first kept
        // shared nodes must coincide) — so it is rebuilt here; the other
        // conventions read the hoisted array.
        let m_cum_local: Vec<Duration>;
        let m_cum: &[Duration] = if cfg.min_convention == MinConvention::ZeroConvention {
            let ws: Vec<&FullCrosser<'_>> = full
                .iter()
                .filter(|fc| {
                    let (mut first, mut entry) = (None, usize::MAX);
                    for &pi in &fc.pis_crosser_order {
                        if pi < k {
                            if first.is_none() {
                                first = Some(pi);
                            }
                            entry = entry.min(pi);
                        }
                    }
                    matches!(first, Some(f) if f == entry)
                })
                .collect();
            let mut v = vec![0; k];
            let mut acc = 0;
            for idx in 0..k - 1 {
                let min_cost = ws.iter().map(|fc| fc.by_idx[idx].cost).min().unwrap_or(0);
                acc += min_cost + hoist.hop_lmin[idx];
                v[idx + 1] = acc;
            }
            m_cum_local = v;
            &m_cum_local
        } else {
            &hoist.m_cum_full[..k]
        };

        // Interference windows, by clipping each full-path segment span
        // to the prefix. Anchor pairs per `segment_points`: one
        // (crosser-order-first, path-order-first) pair per piece, or one
        // pair per node — in crosser order, i.e. descending path index —
        // for reverse pieces under `PerCrossingNode`.
        let mut windows = Vec::new();
        for fc in full {
            if fc.j_idx == flow_idx {
                continue;
            }
            let fj = fc.flow;
            for sm in &fc.segs {
                if sm.lo >= k {
                    continue;
                }
                let piece_hi = sm.hi.min(k - 1);
                let pdir = if piece_hi == sm.lo {
                    CrossDirection::Same
                } else {
                    sm.direction
                };
                let cost = fc.by_idx[piece_hi].cum_cost;
                let mut push = |fji_idx: usize, fij_idx: usize| {
                    windows.push(WindowSkeleton {
                        flow: fj.id,
                        period: fj.period,
                        cost,
                        pos_i: fji_idx,
                        j_idx: fc.j_idx,
                        pos_j: fc.by_idx[fij_idx].jpos.unwrap_or(0),
                        base: fj.jitter
                            - smin[fc.j_idx][fc.by_idx[fji_idx].jpos.unwrap_or(0)]
                            - m_cum[fij_idx],
                    });
                };
                if pdir == CrossDirection::Reverse
                    && cfg.reverse_counting == ReverseCounting::PerCrossingNode
                {
                    for idx in (sm.lo..=piece_hi).rev() {
                        push(idx, idx);
                    }
                } else {
                    let fji_idx = if pdir == CrossDirection::Same {
                        sm.lo
                    } else {
                        piece_hi
                    };
                    push(fji_idx, sm.lo);
                }
            }
        }

        // Self term: (1 + ⌊(t + Jᵢ)/Tᵢ⌋) · Cᵢ^{slow}.
        let self_window = Window {
            flow: fi.id,
            a: fi.jitter,
            period: fi.period,
            cost: hoist.max_cost[k - 1],
        };

        // Constant part: δᵢ + Σ_{idx<k, idx≠slow} same-direction max +
        // Σ Lmax. All nodes but the last read the hoisted maxima; the
        // last node's piece may have degraded to a single-node
        // (same-direction) crossing, so its maximum is prefix-specific.
        let last = k - 1;
        let slow_idx = hoist.slow_idx[last];
        let mut constant =
            delta.delta(set, flow_idx, &prefix) + hoist.sum_node_max[last] + hoist.lmax_cum[last];
        if slow_idx < last {
            constant -= hoist.node_max_full[slow_idx];
        }
        if slow_idx != last {
            let mut last_max = 0;
            for fc in full {
                if let Some(d) = fc.by_idx[last].dir {
                    let single = fc.by_idx[last].lo == last;
                    if single || d == CrossDirection::Same {
                        last_max = last_max.max(fc.by_idx[last].cost);
                    }
                }
            }
            constant += last_max;
        }

        // The busy period ignores alignments, so it only sees the
        // windows' (period, cost) pairs; merge equal periods first.
        let mut pairs: Vec<(Duration, Duration)> = Vec::new();
        for (t, c) in windows
            .iter()
            .map(|w| (w.period, w.cost))
            .chain(std::iter::once((self_window.period, self_window.cost)))
        {
            match pairs.iter_mut().find(|(pt, _)| *pt == t) {
                Some((_, pc)) => *pc += c,
                None => pairs.push((t, c)),
            }
        }
        let busy =
            crate::terms::busy_period_of_pairs_seeded(&pairs, cfg.max_busy_period, busy_seed);

        PrefixSkeleton {
            windows,
            self_window,
            constant,
            t_lo: -fi.jitter,
            busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::wcrt::Analyzer;
    use traj_model::examples::paper_example;

    /// The cached skeletons must materialise to exactly the bound
    /// function the direct assembly produces, for every flow and every
    /// prefix length, in every configuration corner.
    #[test]
    fn skeletons_match_direct_assembly() {
        let set = paper_example();
        for cfg in crate::config_grid() {
            let an = Analyzer::new(&set, &cfg).unwrap();
            for (i, f) in set.flows().iter().enumerate() {
                for k in 1..=f.path.len() {
                    let prefix = f.path.prefix_len(k).unwrap();
                    let direct = an.bound_function(i, &prefix);
                    let cached = an.cached_bound_function(i, k);
                    assert_eq!(direct.windows, cached.windows, "flow {i} k {k}");
                    assert_eq!(direct.constant, cached.constant, "flow {i} k {k}");
                    assert_eq!(direct.t_lo, cached.t_lo, "flow {i} k {k}");
                    assert_eq!(
                        direct.busy_period(cfg.max_busy_period),
                        an.cache().prefix(i, k).busy,
                        "flow {i} k {k}"
                    );
                }
            }
        }
    }
}
