//! Degraded-topology re-analysis: recompute Property 2 bounds after a
//! [`FaultScenario`] without redoing the work the fault did not touch.
//!
//! # Incremental strategy
//!
//! A fault changes three things about the flow set: dropped flows leave
//! the FIFO universe, rerouted flows change paths, and everything else
//! stays put. [`dirty_closure`] computes the transitive closure of
//! "directly perturbed" (fate ≠ untouched) over the *union* of the
//! healthy and degraded crossing graphs. Outside that closure a flow and
//! all its crossers are untouched, so
//!
//! * its interference skeleton (crossing segments, `M` terms,
//!   same-direction maxima, busy period) is bit-identical to the healthy
//!   one — [`reanalyze`] clones those cache rows instead of rebuilding
//!   them — and
//! * its healthy `Smax` fixed-point row already satisfies the degraded
//!   equations exactly (clean flows only read clean cells), so it is
//!   reused as-is.
//!
//! Flows inside the closure are re-seeded at their transit floor — below
//! the least fixed point — and re-solved; the dirty/clean split makes
//! the equation system block-diagonal, so Kleene iteration converges to
//! the same least fixed point a cold start reaches and the resulting
//! bounds are **bit-identical** to [`analyze_degraded`] (asserted by the
//! fault differential suite in `tests/equivalence.rs`).

use rayon::prelude::*;
use traj_model::{DegradedSet, FlowFate, FlowSet};

use crate::config::AnalysisConfig;
use crate::report::{FlowReport, SetReport, Verdict};
use crate::smax::SmaxTable;
use crate::wcrt::{Analyzer, NoDelta};

/// Outcome of an incremental fault re-analysis.
#[derive(Debug, Clone)]
pub struct FaultReanalysis {
    /// Per-flow verdicts on the degraded set (index-aligned with the
    /// healthy set; dropped flows report why they were dropped).
    pub report: SetReport,
    /// The dirty closure: flows whose skeleton and `Smax` row were
    /// recomputed. Everything else was reused from the healthy solution.
    pub stale: Vec<bool>,
    /// Rounds the warm-started fixed point took.
    pub rounds: usize,
}

impl FaultReanalysis {
    /// Number of flows whose healthy solution was reused untouched.
    pub fn reused(&self) -> usize {
        self.stale.iter().filter(|s| !**s).count()
    }

    /// Audit this warm re-analysis against a cold
    /// [`analyze_degraded`] of the same degraded set.
    ///
    /// [`reanalyze`] guarantees bit-identity to the cold path, so any
    /// per-flow `wcrt`/jitter mismatch is a bug. The soak harness runs
    /// this after every fault storm it injects.
    pub fn verify_bit_identity(
        &self,
        degraded: &DegradedSet,
        cfg: &AnalysisConfig,
    ) -> crate::incremental::BitIdentityAudit {
        let cold = analyze_degraded(degraded, cfg);
        let mismatches = self
            .report
            .per_flow()
            .iter()
            .zip(cold.per_flow())
            .filter(|(warm, cold)| warm.wcrt != cold.wcrt || warm.jitter != cold.jitter)
            .map(|(warm, _)| warm.flow)
            .collect();
        crate::incremental::BitIdentityAudit {
            flows: self.report.per_flow().len(),
            mismatches,
        }
    }
}

/// Transitive closure of fault perturbation over the crossing graph.
///
/// Seeds with every flow whose fate is not [`FlowFate::Untouched`] and
/// spreads along "shares a node" edges of **both** the healthy paths
/// (a dropped or rerouted flow used to interfere there) and the degraded
/// paths (a rerouted flow interferes there now). `stale[i]` means flow
/// `i`'s interference structure or fixed-point row may differ from the
/// healthy solution.
pub fn dirty_closure(healthy: &FlowSet, degraded: &DegradedSet) -> Vec<bool> {
    let n = healthy.len();
    let mut stale: Vec<bool> = degraded
        .fates
        .iter()
        .map(|f| !matches!(f, FlowFate::Untouched))
        .collect();
    // BFS over the union of the healthy and degraded node indices:
    // "crosses in either set" is symmetric ("shares a node in either
    // set"), so expanding a frontier flow to its nodes' visitors — under
    // both indices — reaches exactly the flows the pairwise scan would.
    let healthy_index = healthy.node_flow_index();
    let degraded_index = degraded.set.node_flow_index();
    let mut frontier: Vec<usize> = (0..n).filter(|&i| stale[i]).collect();
    while let Some(j) = frontier.pop() {
        let visit =
            |members: Option<&Vec<usize>>, stale: &mut Vec<bool>, frontier: &mut Vec<usize>| {
                for &i in members.into_iter().flatten() {
                    if !stale[i] {
                        stale[i] = true;
                        frontier.push(i);
                    }
                }
            };
        for nd in healthy.flows()[j].path.nodes() {
            visit(healthy_index.get(nd), &mut stale, &mut frontier);
        }
        for nd in degraded.set.flows()[j].path.nodes() {
            visit(degraded_index.get(nd), &mut stale, &mut frontier);
        }
    }
    stale
}

/// Canonical from-scratch analysis of a degraded set: all surviving
/// flows form the FIFO universe, dropped flows are masked out and
/// reported as dropped. This is the reference the incremental path must
/// reproduce bit-for-bit.
pub fn analyze_degraded(degraded: &DegradedSet, cfg: &AnalysisConfig) -> SetReport {
    let universe = degraded.universe();
    let res = Analyzer::with_universe_and_delta(&degraded.set, cfg, universe, NoDelta);
    assemble(degraded, res)
}

/// Incremental re-analysis of a degraded set, warm-started from the
/// healthy solution.
///
/// `healthy` must be the converged analyzer of the pre-fault set the
/// scenario was applied to (same flows, same order, same `cfg`);
/// the result is then bit-identical to [`analyze_degraded`] on the same
/// inputs, at a fraction of the cost when the fault is localised.
pub fn reanalyze(
    healthy: &Analyzer<'_, NoDelta>,
    degraded: &DegradedSet,
    cfg: &AnalysisConfig,
) -> FaultReanalysis {
    let stale = dirty_closure(healthy.set(), degraded);
    let universe = degraded.universe();

    // Warm seed: transit floor for stale rows (sound restart point),
    // healthy fixed-point rows elsewhere (already exact). Computed
    // before the skeleton rebuild: the transit sums are overflow-checked
    // and a seed the degraded set cannot even represent aborts with the
    // typed verdict instead of analysing from a bogus floor.
    let mut seed = match SmaxTable::transit(&degraded.set) {
        Ok(seed) => seed,
        Err(v) => {
            return FaultReanalysis {
                report: assemble(degraded, Err(v)),
                stale,
                rounds: 0,
            }
        }
    };
    for (i, is_stale) in stale.iter().enumerate() {
        if !is_stale {
            seed.set_row(i, healthy.smax().row(i));
        }
    }

    // Skeletons: rebuild stale rows against the degraded set, clone the
    // rest from the healthy cache (their structure is untouched).
    let cache = crate::cache::InterferenceCache::rebuild_for(
        healthy.cache(),
        &degraded.set,
        cfg,
        &universe,
        &NoDelta,
        &stale,
    );

    let res = Analyzer::with_parts(
        &degraded.set,
        cfg,
        universe,
        NoDelta,
        cache,
        seed,
        &stale,
        None,
    );
    let rounds = res.as_ref().map(|an| an.smax_rounds()).unwrap_or(0);
    FaultReanalysis {
        report: assemble(degraded, res),
        stale,
        rounds,
    }
}

/// Builds the per-flow report, overriding dropped flows' verdicts with
/// their drop reason (a bound over a path the flow no longer has would
/// be meaningless). Shared by the from-scratch and incremental paths so
/// their outputs stay comparable verbatim.
fn assemble(degraded: &DegradedSet, res: Result<Analyzer<'_, NoDelta>, Verdict>) -> SetReport {
    let set = &degraded.set;
    let drop_verdict = |i: usize| -> Option<Verdict> {
        match &degraded.fates[i] {
            FlowFate::Dropped { reason } => Some(Verdict::Unbounded {
                reason: format!("dropped by fault scenario: {reason}"),
            }),
            _ => None,
        }
    };
    match res {
        Ok(an) => {
            let reports: Vec<FlowReport> = (0..set.len())
                .into_par_iter()
                .map(|i| {
                    let base = an.report(i);
                    match drop_verdict(i) {
                        Some(v) => FlowReport {
                            wcrt: v,
                            jitter: None,
                            ..base
                        },
                        None => base,
                    }
                })
                .collect();
            SetReport::new(reports).with_telemetry(an.telemetry().clone())
        }
        Err(v) => SetReport::new(
            set.flows()
                .iter()
                .enumerate()
                .map(|(i, f)| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: drop_verdict(i).unwrap_or_else(|| v.clone()),
                    jitter: None,
                    deadline: f.deadline,
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::{FaultScenario, NodeId};

    fn healthy_and_degraded(scenario: FaultScenario) -> (FlowSet, DegradedSet) {
        let set = paper_example();
        let degraded = scenario.apply(&set).unwrap();
        (set, degraded)
    }

    #[test]
    fn no_fault_reuses_everything_and_matches_healthy() {
        let (set, degraded) = healthy_and_degraded(FaultScenario::new(Vec::new()));
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        let healthy_bounds: Vec<_> = (0..set.len()).map(|i| an.wcrt(i)).collect();
        let re = reanalyze(&an, &degraded, &cfg);
        assert_eq!(re.reused(), set.len());
        assert!(
            re.rounds <= 1,
            "nothing stale: at most one convergence-check round, got {}",
            re.rounds
        );
        let got: Vec<_> = re
            .report
            .per_flow()
            .iter()
            .map(|r| r.wcrt.clone())
            .collect();
        assert_eq!(got, healthy_bounds);
    }

    #[test]
    fn incremental_matches_from_scratch_on_node_failure() {
        // Node 9 kills flow 2 ([9,10,7,6]) entirely; the rest reroute or
        // stay. Incremental and from-scratch must agree bit-for-bit.
        let (set, degraded) = healthy_and_degraded(FaultScenario::node_down(NodeId(9)));
        for cfg in crate::config_grid() {
            let an = Analyzer::new(&set, &cfg).unwrap();
            let re = reanalyze(&an, &degraded, &cfg);
            let scratch = analyze_degraded(&degraded, &cfg);
            for (a, b) in re.report.per_flow().iter().zip(scratch.per_flow()) {
                assert_eq!(a.wcrt, b.wcrt, "cfg {cfg:?}");
                assert_eq!(a.jitter, b.jitter, "cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn dropped_flows_report_their_drop_reason() {
        let (set, degraded) = healthy_and_degraded(FaultScenario::node_down(NodeId(9)));
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        let re = reanalyze(&an, &degraded, &cfg);
        let r = re.report.for_flow(traj_model::FlowId(2)).unwrap();
        assert!(!r.wcrt.is_bounded());
        match &r.wcrt {
            Verdict::Unbounded { reason } => {
                assert!(reason.contains("dropped by fault scenario"), "{reason}")
            }
            other => unreachable!("expected a drop verdict, got {other:?}"),
        }
    }

    #[test]
    fn bit_identity_audit_passes_after_node_failure() {
        let (set, degraded) = healthy_and_degraded(FaultScenario::node_down(NodeId(9)));
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        let re = reanalyze(&an, &degraded, &cfg);
        let audit = re.verify_bit_identity(&degraded, &cfg);
        assert_eq!(audit.flows, set.len());
        assert!(audit.passed(), "mismatches: {:?}", audit.mismatches);
    }

    #[test]
    fn closure_contains_all_perturbed_flows() {
        let (set, degraded) = healthy_and_degraded(FaultScenario::node_down(NodeId(9)));
        let stale = dirty_closure(&set, &degraded);
        for (i, fate) in degraded.fates.iter().enumerate() {
            if !matches!(fate, FlowFate::Untouched) {
                assert!(stale[i], "perturbed flow {i} must be stale");
            }
        }
    }
}
