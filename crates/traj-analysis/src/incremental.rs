//! Incremental warm-start admission analysis: what-if evaluation of a
//! candidate flow against a standing converged EF solution, redoing
//! only the work the candidate actually perturbs.
//!
//! # Delta strategy
//!
//! Admitting a flow *appends* it to the standing set, so every standing
//! flow keeps its index and three reuse layers apply to any flow
//! outside the candidate's dirty closure (the transitive closure of
//! "shares a node" over the crossing graph, seeded at the candidate —
//! [`addition_dirty_closure`]):
//!
//! * **skeletons** — its interference structure (crossing segments,
//!   alignment bases, `M` terms, busy periods, Lemma 4 `δ`) is a pure
//!   function of its own path and of the flows crossing it, none of
//!   which changed: the cache row is cloned verbatim
//!   ([`InterferenceCache::extend_for`]);
//! * **fixed-point rows** — its standing `Smax` row reads only clean
//!   cells, so it already satisfies the extended equation system
//!   exactly and seeds the warm start as-is; dirty rows restart at
//!   their transit floor, below the least fixed point, so Kleene
//!   iteration converges to the *same* least fixed point a cold start
//!   reaches and the resulting bounds are **bit-identical** to
//!   [`crate::analyze_ef`] on the extended set (asserted by the
//!   admission differential suite in `tests/admission_incremental.rs`);
//! * **full-path verdicts** — its converged end-to-end bound is a pure
//!   function of the two layers above, so the standing verdict is
//!   reused instead of re-maximised.
//!
//! Lemma 4's `δᵢ` is covered by the same closure: `δᵢ` depends only on
//! flows crossing `τᵢ`'s path, and a crossing candidate puts `τᵢ` in
//! the closure (the skeleton, `δ` included, is then rebuilt).
//!
//! Teardown ([`ConvergedState::remove`]) is the mirror image with one
//! twist: removal shifts indices, so cloned skeletons are remapped over
//! the gap and clean `Smax` rows are copied across the index shift.
//!
//! Structural invalidation (an extension the model rejects, a transit
//! seed overflow, a diverging fixed point) degrades to the typed error
//! report or to `None` state — callers fall back to the cold analysis;
//! nothing panics.

use traj_model::{FlowId, FlowSet, ModelError, SporadicFlow};

use crate::cache::InterferenceCache;
use crate::config::AnalysisConfig;
use crate::ef::{ef_error_report, ef_report, EfDelta};
use crate::report::{SetReport, Verdict};
use crate::smax::SmaxTable;
use crate::telemetry::FixpointTelemetry;
use crate::wcrt::Analyzer;

/// A converged EF analysis that owns everything needed to warm-start
/// the next one: the set, the interference skeletons, the `Smax` fixed
/// point, and the per-flow full-path verdicts.
///
/// This is the self-owned counterpart of a borrowed
/// [`Analyzer`]: the admission controller holds one across
/// `try_admit`/`release` calls and extends or shrinks it instead of
/// re-analysing from scratch.
#[derive(Debug, Clone)]
pub struct ConvergedState {
    set: FlowSet,
    cfg: AnalysisConfig,
    universe: Vec<bool>,
    cache: InterferenceCache,
    smax: SmaxTable,
    rounds: usize,
    telemetry: FixpointTelemetry,
    full: Vec<Verdict>,
    report: SetReport,
}

/// Outcome of a warm what-if extension: the EF report on the extended
/// set, the dirty-closure bookkeeping, and — when the analysis bounded
/// — the extended converged state ready to commit.
#[derive(Debug, Clone)]
pub struct EfWhatIf {
    /// Property 3 report over the extended set, bit-identical to
    /// [`crate::analyze_ef`] on the same set and configuration.
    pub report: SetReport,
    /// The dirty closure over the extended index space: flows whose
    /// skeleton and `Smax` row were recomputed (the candidate is always
    /// stale). Everything else was reused from the standing solution.
    pub stale: Vec<bool>,
    /// Rounds the warm-started fixed point took.
    pub rounds: usize,
    /// The extended converged state, `Some` whenever the fixed point
    /// bounded (even if some flow misses its deadline — admission
    /// policy is the caller's call). `None` on structural invalidation:
    /// commit is impossible, fall back to cold analysis if needed.
    state: Option<ConvergedState>,
}

impl EfWhatIf {
    /// Number of flows recomputed (the dirty closure size, candidate
    /// included).
    pub fn recomputed(&self) -> usize {
        self.stale.iter().filter(|s| **s).count()
    }

    /// Number of standing flows whose solution was reused untouched.
    pub fn reused(&self) -> usize {
        self.stale.iter().filter(|s| !**s).count()
    }

    /// The extended converged state, when the analysis bounded.
    pub fn state(&self) -> Option<&ConvergedState> {
        self.state.as_ref()
    }

    /// Consumes the what-if into its committable state.
    pub fn into_state(self) -> Option<ConvergedState> {
        self.state
    }
}

/// Outcome of a warm-vs-cold bit-identity audit
/// ([`ConvergedState::verify_bit_identity`]).
///
/// The incremental engine's contract is that a warm-maintained state is
/// *bit-identical* to a cold [`crate::analyze_ef`] of the same set —
/// not approximately equal, the same integers. This audit recomputes
/// the cold reference and diffs every per-flow verdict; the soak engine
/// runs it as a periodic spot check over hours of churn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitIdentityAudit {
    /// Flows compared.
    pub flows: usize,
    /// Flows whose warm `wcrt` or jitter differs from the cold
    /// reference (empty = the audit passed).
    pub mismatches: Vec<FlowId>,
}

impl BitIdentityAudit {
    /// Whether every flow's warm verdict matched the cold reference.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl ConvergedState {
    /// Cold build: runs the full EF analysis ([`crate::analyze_ef`]
    /// semantics) and captures the converged solution. `Err` carries
    /// the typed verdict when the set cannot be bounded.
    pub fn build_ef(set: &FlowSet, cfg: &AnalysisConfig) -> Result<Self, Verdict> {
        let universe: Vec<bool> = set.flows().iter().map(|f| f.class.is_ef()).collect();
        let an = Analyzer::with_universe_and_delta(set, cfg, universe, EfDelta)?;
        let report = ef_report(set, &an);
        Ok(Self::from_parts(
            set.clone(),
            cfg.clone(),
            report,
            an.into_state_parts(),
        ))
    }

    fn from_parts(
        set: FlowSet,
        cfg: AnalysisConfig,
        report: SetReport,
        parts: crate::wcrt::AnalyzerParts,
    ) -> Self {
        ConvergedState {
            set,
            cfg,
            universe: parts.universe,
            cache: parts.cache,
            smax: parts.smax,
            rounds: parts.rounds,
            telemetry: parts.telemetry,
            full: parts.full,
            report,
        }
    }

    /// The standing flow set.
    pub fn set(&self) -> &FlowSet {
        &self.set
    }

    /// The configuration the state converged under.
    pub fn cfg(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The standing EF report (what [`crate::analyze_ef`] returned for
    /// the standing set).
    pub fn report(&self) -> &SetReport {
        &self.report
    }

    /// Rounds the standing fixed point took.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Telemetry of the standing fixed point.
    pub fn telemetry(&self) -> &FixpointTelemetry {
        &self.telemetry
    }

    /// Audit the warm state against a fresh cold analysis.
    ///
    /// Recomputes [`crate::analyze_ef`] for the standing set from
    /// scratch and compares every flow's `wcrt` verdict and jitter
    /// bound with the standing warm report. The incremental engine
    /// guarantees bit-identity, so any mismatch is a bug; the soak
    /// harness runs this as a periodic spot check and treats a
    /// non-empty mismatch list as a hard failure.
    pub fn verify_bit_identity(&self) -> BitIdentityAudit {
        let cold = crate::analyze_ef(&self.set, &self.cfg);
        let mismatches = self
            .report
            .per_flow()
            .iter()
            .zip(cold.per_flow())
            .filter(|(warm, cold)| warm.wcrt != cold.wcrt || warm.jitter != cold.jitter)
            .map(|(warm, _)| warm.flow)
            .collect();
        BitIdentityAudit {
            flows: self.set.len(),
            mismatches,
        }
    }

    /// Warm what-if: analyse the standing set extended with `candidate`
    /// without committing anything. `Err` means the extension is
    /// structurally invalid (duplicate id, unknown node, …) — the
    /// candidate can never be admitted as modelled.
    ///
    /// Only the candidate's transitive dirty closure is re-solved; see
    /// the module docs for why the result is bit-identical to a cold
    /// [`crate::analyze_ef`] of the extended set.
    pub fn extend(&self, candidate: SporadicFlow) -> Result<EfWhatIf, ModelError> {
        self.extend_many(std::slice::from_ref(&candidate))
    }

    /// Warm what-if over a *batch* of candidates: the standing set
    /// extended with all of `candidates` at once, solved with **one**
    /// warm fixed point instead of one per candidate.
    ///
    /// This is the settlement primitive behind the tiered admission
    /// fast path: a burst of screen-admitted flows is folded into the
    /// converged state in a single solve. The dirty-closure machinery
    /// ([`direct_extension_crossers`], [`addition_dirty_closure`])
    /// already ranges over `appended_from..`, and appending preserves
    /// every standing index, so the construction is the `extend` code
    /// verbatim with the append loop generalised — and the result is
    /// bit-identical both to a cold [`crate::analyze_ef`] of the
    /// extended set and to chaining single `extend` commits (asserted
    /// by the admission differential suites).
    ///
    /// An empty batch returns the standing state unchanged. `Err` when
    /// any candidate makes the extension structurally invalid; the
    /// whole batch is rejected (callers settle one by one to attribute
    /// the failure).
    pub fn extend_many(&self, candidates: &[SporadicFlow]) -> Result<EfWhatIf, ModelError> {
        if candidates.is_empty() {
            return Ok(EfWhatIf {
                report: self.report.clone(),
                stale: vec![false; self.set.len()],
                rounds: 0,
                state: Some(self.clone()),
            });
        }
        let n = self.set.len();
        let mut extended = self.set.extended_with(candidates[0].clone())?;
        for c in &candidates[1..] {
            extended = extended.extended_with(c.clone())?;
        }
        let mut universe = self.universe.clone();
        for f in &extended.flows()[n..] {
            universe.push(f.class.is_ef());
        }
        // Two invalidation grades. `rebuilt` — the candidate plus the
        // standing flows it *directly* crosses — is where interference
        // structure changes: new windows, `M` terms, `δ`. `stale` — the
        // transitive closure — is where `Smax` values (hence verdicts)
        // may move: a flow crossing a rebuilt flow reads its rows even
        // though its own skeleton is untouched. Skeletons rebuild for
        // `rebuilt` only; verdict reuse needs the full closure.
        let rebuilt = direct_extension_crossers(&extended, n);
        let stale = {
            let mut s = rebuilt.clone();
            crossing_closure(&extended, &mut s);
            s
        };

        // Warm seed: every standing row starts at its standing
        // fixed-point value, the candidate at its transit floor. Sound
        // for an *extension* because adding interference is monotone —
        // the standing table is pointwise ≤ the extended least fixed
        // point, and the mixed seed is a pre-fixpoint (each update can
        // only raise it), so Kleene iteration from it converges to the
        // same least fixed point as the cold transit start, in far
        // fewer rounds (a removal cannot do this: the shrunk fixed
        // point lies *below* the standing values, see `remove`).
        // Overflow in the extended transit sums aborts with the typed
        // verdict before any unchecked cache arithmetic.
        let mut seed = match SmaxTable::transit(&extended) {
            Ok(seed) => seed,
            Err(v) => {
                return Ok(EfWhatIf {
                    report: ef_error_report(&extended, &v),
                    stale,
                    rounds: 0,
                    state: None,
                })
            }
        };
        for i in 0..n {
            seed.set_row(i, self.smax.row(i));
        }

        let cache = InterferenceCache::extend_for(
            &self.cache,
            &extended,
            &self.cfg,
            &universe,
            &EfDelta,
            &rebuilt,
        );
        let full_prev: Vec<Option<Verdict>> = (0..extended.len())
            .map(|i| {
                if i < n && !stale[i] {
                    Some(self.full[i].clone())
                } else {
                    None
                }
            })
            .collect();
        // `rebuilt` rows are forced through round 0 (their skeletons
        // changed); everything they transitively feed re-enters the
        // iteration through the dirty-propagation machinery.
        let res = Analyzer::with_parts(
            &extended,
            &self.cfg,
            universe,
            EfDelta,
            cache,
            seed,
            &rebuilt,
            Some(full_prev),
        );
        Ok(match res {
            Ok(an) => {
                let report = ef_report(&extended, &an);
                let rounds = an.smax_rounds();
                let parts = an.into_state_parts();
                let state = Self::from_parts(extended, self.cfg.clone(), report.clone(), parts);
                EfWhatIf {
                    report,
                    stale,
                    rounds,
                    state: Some(state),
                }
            }
            Err(v) => EfWhatIf {
                report: ef_error_report(&extended, &v),
                stale,
                rounds: 0,
                state: None,
            },
        })
    }

    /// Warm teardown: the standing state with flow `id` removed,
    /// re-solving only the flows that crossed it (transitively).
    ///
    /// `None` when the removal cannot be done incrementally — `id` is
    /// not in the set, removing it would empty the set, or the shrunk
    /// fixed point failed — in which case the caller should rebuild
    /// cold (or drop the state).
    pub fn remove(&self, id: FlowId) -> Option<ConvergedState> {
        let removed = self.set.index_of(id)?;
        let shrunk = self.set.without_flow(id).ok()?;

        // Two invalidation grades over the shrunk set, as in `extend`:
        // skeletons change only where the removed flow's windows
        // disappear (its direct crossers), while `Smax` values may move
        // across the transitive closure — and for a removal they move
        // *down*, so the whole closure re-seeds at the transit floor.
        let removed_flow = &self.set.flows()[removed];
        let rebuilt: Vec<bool> = shrunk
            .flows()
            .iter()
            .map(|f| shrunk.crosses(removed_flow, &f.path))
            .collect();
        let stale = {
            let mut s = rebuilt.clone();
            crossing_closure(&shrunk, &mut s);
            s
        };

        let mut universe = self.universe.clone();
        universe.remove(removed);

        let old_idx = |i: usize| if i < removed { i } else { i + 1 };
        let mut seed = SmaxTable::transit(&shrunk).ok()?;
        for (i, is_stale) in stale.iter().enumerate() {
            if !is_stale {
                seed.set_row(i, self.smax.row(old_idx(i)));
            }
        }

        let cache = InterferenceCache::shrink_for(
            &self.cache,
            &shrunk,
            &self.cfg,
            &universe,
            &EfDelta,
            &rebuilt,
            removed,
        );
        let full_prev: Vec<Option<Verdict>> = (0..shrunk.len())
            .map(|i| {
                if !stale[i] {
                    Some(self.full[old_idx(i)].clone())
                } else {
                    None
                }
            })
            .collect();
        let an = Analyzer::with_parts(
            &shrunk,
            &self.cfg,
            universe,
            EfDelta,
            cache,
            seed,
            &stale,
            Some(full_prev),
        )
        .ok()?;
        let report = ef_report(&shrunk, &an);
        let parts = an.into_state_parts();
        Some(Self::from_parts(shrunk, self.cfg.clone(), report, parts))
    }
}

/// The *structural* invalidation of appending flows at indices
/// `appended_from..`: the appended rows themselves plus every standing
/// flow one of them directly crosses. A standing flow outside this set
/// keeps its interference skeleton verbatim even when the transitive
/// closure reaches it — only its `Smax` row can move, never its
/// structure.
fn direct_extension_crossers(extended: &FlowSet, appended_from: usize) -> Vec<bool> {
    let flows = extended.flows();
    // "Crosses" is "shares a node", so the inverted node index yields the
    // directly-crossed standing flows without a pairwise path scan.
    let node_index = extended.node_flow_index();
    let mut flagged: Vec<bool> = (0..flows.len()).map(|i| i >= appended_from).collect();
    for f in flows.iter().skip(appended_from) {
        for n in f.path.nodes() {
            if let Some(members) = node_index.get(n) {
                for &i in members {
                    flagged[i] = true;
                }
            }
        }
    }
    flagged
}

/// The dirty closure of appending flows at indices
/// `appended_from..set.len()`: those flows plus the transitive closure
/// of "crosses" over the whole set's crossing graph. `stale[i]` means
/// flow `i`'s interference structure or fixed-point row may differ
/// from the standing solution.
pub fn addition_dirty_closure(extended: &FlowSet, appended_from: usize) -> Vec<bool> {
    let mut stale: Vec<bool> = (0..extended.len()).map(|i| i >= appended_from).collect();
    crossing_closure(extended, &mut stale);
    stale
}

/// Spreads `stale` transitively along the crossing graph ("shares a
/// node" edges, symmetric): the generalisation of the survivability
/// engine's fault closure to arbitrary seeds.
fn crossing_closure(set: &FlowSet, stale: &mut [bool]) {
    let flows = set.flows();
    // BFS over the inverted node index: "crosses" is symmetric ("shares
    // a node"), so expanding each frontier flow to its nodes' visitors
    // reaches exactly the flows a pairwise path scan would.
    let node_index = set.node_flow_index();
    let mut frontier: Vec<usize> = (0..flows.len()).filter(|&i| stale[i]).collect();
    while let Some(j) = frontier.pop() {
        for n in flows[j].path.nodes() {
            if let Some(members) = node_index.get(n) {
                for &i in members {
                    if !stale[i] {
                        stale[i] = true;
                        frontier.push(i);
                    }
                }
            }
        }
    }
}

/// Warm-start admission analysis: the EF report of `standing`'s set
/// extended with `candidate`, bit-identical to running
/// [`crate::analyze_ef`] on the extended set cold, at a fraction of
/// the cost when the candidate's interference is localised.
///
/// `Err` when the extension is structurally invalid. The returned
/// what-if carries the committable [`ConvergedState`] when the
/// analysis bounded.
pub fn analyze_ef_incremental(
    standing: &ConvergedState,
    candidate: SporadicFlow,
) -> Result<EfWhatIf, ModelError> {
    standing.extend(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_ef;
    use traj_model::examples::{paper_example, paper_example_with_best_effort};
    use traj_model::flow::TrafficClass;
    use traj_model::FlowId;

    fn candidate(id: u32, path: Vec<u32>) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            traj_model::Path::from_ids(path).unwrap(),
            50,
            2,
            0,
            i64::MAX / 4,
        )
        .unwrap()
        .with_class(TrafficClass::Ef)
    }

    #[test]
    fn extension_matches_cold_analysis_bit_for_bit() {
        let set = paper_example_with_best_effort(5).unwrap();
        for cfg in crate::config_grid() {
            let standing = ConvergedState::build_ef(&set, &cfg).unwrap();
            let cand = candidate(900, vec![1, 3, 4]);
            let whatif = standing.extend(cand.clone()).unwrap();
            let extended = set.extended_with(cand).unwrap();
            let cold = analyze_ef(&extended, &cfg);
            assert_eq!(whatif.report.bounds(), cold.bounds(), "cfg {cfg:?}");
            for (a, b) in whatif.report.per_flow().iter().zip(cold.per_flow()) {
                assert_eq!(a.wcrt, b.wcrt, "cfg {cfg:?}");
                assert_eq!(a.jitter, b.jitter, "cfg {cfg:?}");
            }
            assert!(whatif.state().is_some());
        }
    }

    #[test]
    fn committed_state_equals_cold_built_state_reports() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let standing = ConvergedState::build_ef(&set, &cfg).unwrap();
        let cand = candidate(100, vec![5, 4, 3]);
        let committed = standing.extend(cand.clone()).unwrap().into_state().unwrap();
        let extended = set.extended_with(cand).unwrap();
        let cold = ConvergedState::build_ef(&extended, &cfg).unwrap();
        assert_eq!(committed.report().bounds(), cold.report().bounds());
        // A further extension from the committed state still matches cold.
        let cand2 = candidate(101, vec![9, 10, 7]);
        let w2 = committed.extend(cand2.clone()).unwrap();
        let ext2 = extended.extended_with(cand2).unwrap();
        assert_eq!(w2.report.bounds(), analyze_ef(&ext2, &cfg).bounds());
    }

    #[test]
    fn removal_matches_cold_analysis_bit_for_bit() {
        let set = paper_example_with_best_effort(5).unwrap();
        let cand = candidate(900, vec![1, 3, 4]);
        let extended = set.extended_with(cand).unwrap();
        for cfg in crate::config_grid() {
            let standing = ConvergedState::build_ef(&extended, &cfg).unwrap();
            let shrunk_state = standing.remove(FlowId(900)).unwrap();
            let cold = analyze_ef(&set, &cfg);
            for (a, b) in shrunk_state.report().per_flow().iter().zip(cold.per_flow()) {
                assert_eq!(a.wcrt, b.wcrt, "cfg {cfg:?}");
                assert_eq!(a.jitter, b.jitter, "cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn disjoint_candidate_reuses_every_standing_flow() {
        // Paper example lives on nodes 1..=10; node 64 network not
        // available here, so use a candidate on a node subset disjoint
        // from most flows: nodes [2, 3] cross P1/P3/P4/P5 at node 3 —
        // instead exercise `reused()` accounting on a crossing one.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let standing = ConvergedState::build_ef(&set, &cfg).unwrap();
        let whatif = standing.extend(candidate(100, vec![1, 3])).unwrap();
        assert_eq!(whatif.recomputed() + whatif.reused(), set.len() + 1);
        assert!(whatif.stale[set.len()], "candidate itself is always stale");
    }

    #[test]
    fn duplicate_id_is_a_model_error() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let standing = ConvergedState::build_ef(&set, &cfg).unwrap();
        assert!(standing.extend(candidate(1, vec![1, 3])).is_err());
    }

    #[test]
    fn bit_identity_audit_passes_after_churn() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let mut state = ConvergedState::build_ef(&set, &cfg).unwrap();
        assert!(state.verify_bit_identity().passed());
        // Extend, then remove a different flow: the audit must still
        // match a cold analysis of the churned set.
        state = state
            .extend(candidate(100, vec![5, 4, 3]))
            .unwrap()
            .into_state()
            .unwrap();
        state = state.remove(FlowId(2)).unwrap();
        let audit = state.verify_bit_identity();
        assert_eq!(audit.flows, state.set().len());
        assert!(audit.passed(), "mismatches: {:?}", audit.mismatches);
    }

    #[test]
    fn unknown_or_last_flow_removal_yields_none() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let standing = ConvergedState::build_ef(&set, &cfg).unwrap();
        assert!(standing.remove(FlowId(999)).is_none());
        let mut state = standing;
        for id in [1u32, 2, 3, 4] {
            state = state.remove(FlowId(id)).unwrap();
        }
        assert_eq!(state.set().len(), 1);
        assert!(state.remove(state.set().flows()[0].id).is_none());
    }
}
