//! Figure-2-style explanation of a bound: which packets, which nodes and
//! which links make up the worst case.
//!
//! The paper's Figure 2 illustrates the backward construction of the
//! worst-case trajectory: busy periods chained from the last node back to
//! the ingress. [`explain_flow`] reconstructs the analytical counterpart —
//! for the maximising activation instant `t*`, every interference window
//! with its packet count, the per-node extra-packet terms and the link
//! budget — so users can audit a bound term by term.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId, FlowSet, NodeId, Tick};

use crate::config::AnalysisConfig;
use crate::report::Verdict;
use crate::wcrt::Analyzer;

/// One interfering flow's contribution at the worst-case instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceLine {
    /// The interfering flow.
    pub flow: FlowId,
    /// Window alignment `A_{i,j}`.
    pub a: Tick,
    /// Packets counted at `t*`.
    pub packets: i64,
    /// Cost per packet (`C_j^{slow_{j,i}}`).
    pub cost_per_packet: Duration,
    /// Total workload.
    pub workload: Duration,
}

/// Full decomposition of a flow's bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundBreakdown {
    /// The analysed flow.
    pub flow: FlowId,
    /// The worst-case activation instant `t*`.
    pub t_star: Tick,
    /// Busy-period bound `Bᵢ^{slow}` (Lemma 3), the width of the search
    /// domain.
    pub busy_period: Duration,
    /// Packets of the flow itself ahead of the studied packet.
    pub self_packets: i64,
    /// Workload of those packets.
    pub self_workload: Duration,
    /// Per-interfering-flow lines, ordered as encountered.
    pub interference: Vec<InterferenceLine>,
    /// Per-node extra packet (`max_{same-dir j} C_jʰ` for `h ≠ slowᵢ`).
    pub per_node_extra: Vec<(NodeId, Duration)>,
    /// Total link budget `Σ Lmax`.
    pub links: Duration,
    /// Non-preemption delay `δᵢ` (0 for plain FIFO).
    pub delta: Duration,
    /// The resulting bound: must equal the sum of all parts minus `t*`.
    pub bound: Duration,
}

impl BoundBreakdown {
    /// Re-sums the parts; equals [`Self::bound`] by construction (checked
    /// in tests, useful as an audit).
    pub fn total(&self) -> Duration {
        self.self_workload
            + self
                .interference
                .iter()
                .map(|l| l.workload)
                .sum::<Duration>()
            + self
                .per_node_extra
                .iter()
                .map(|(_, c)| *c)
                .sum::<Duration>()
            + self.links
            + self.delta
            - self.t_star
    }
}

/// Explains the Property 2 bound of one flow. Returns `Err` with the
/// divergence verdict on overloaded sets.
pub fn explain_flow(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    id: FlowId,
) -> Result<BoundBreakdown, Verdict> {
    let idx = set
        .index_of(id)
        .ok_or_else(|| Verdict::unbounded(format!("unknown flow {id}")))?;
    let an = Analyzer::new(set, cfg)?;
    let f = &set.flows()[idx];
    let bf = an.bound_function(idx, &f.path);
    let max = bf
        .maximise(cfg.max_busy_period)
        .map_err(Verdict::from)?
        .ok_or_else(|| Verdict::unbounded("busy period diverged"))?;
    let busy_period = bf
        .busy_period(cfg.max_busy_period)
        .map_err(Verdict::from)?
        .unwrap_or(0);

    let mut interference = Vec::new();
    let mut self_packets = 0;
    let mut self_workload = 0;
    for w in &bf.windows {
        let packets = w.packets(max.t_star).map_err(Verdict::from)?;
        if w.flow == f.id {
            self_packets += packets;
            self_workload += packets * w.cost;
        } else {
            interference.push(InterferenceLine {
                flow: w.flow,
                a: w.a,
                packets,
                cost_per_packet: w.cost,
                workload: packets * w.cost,
            });
        }
    }

    // Recompute the constant's visible parts for the per-node table.
    let slow = f.slow_node();
    let keep = |_: &traj_model::SporadicFlow| true;
    let per_node_extra: Vec<(NodeId, Duration)> = f
        .path
        .nodes()
        .iter()
        .filter(|&&h| h != slow)
        .map(|&h| (h, set.max_samedir_cost_filtered(&f.path, h, keep)))
        .collect();
    let links: Duration = f
        .path
        .links()
        .map(|(a, b)| set.network().link_delay(a, b).lmax)
        .sum();

    Ok(BoundBreakdown {
        flow: f.id,
        t_star: max.t_star,
        busy_period,
        self_packets,
        self_workload,
        interference,
        per_node_extra,
        links,
        delta: 0,
        bound: max.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn breakdown_sums_to_bound() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        for f in set.flows() {
            let b = explain_flow(&set, &cfg, f.id).unwrap();
            assert_eq!(b.total(), b.bound, "flow {}", f.id);
        }
    }

    #[test]
    fn flow1_breakdown_matches_hand_computation() {
        let set = paper_example();
        let b = explain_flow(&set, &AnalysisConfig::default(), FlowId(1)).unwrap();
        assert_eq!(b.bound, 31);
        assert_eq!(b.t_star, 0);
        assert_eq!(b.busy_period, 16);
        assert_eq!(b.self_packets, 1);
        // flows 3, 4, 5 each contribute one 4-tick packet
        assert_eq!(b.interference.len(), 3);
        for line in &b.interference {
            assert_eq!(line.packets, 1);
            assert_eq!(line.workload, 4);
        }
        // three non-slow nodes with a 4-tick extra packet each
        assert_eq!(b.per_node_extra.iter().map(|(_, c)| c).sum::<i64>(), 12);
        assert_eq!(b.links, 3);
        assert_eq!(b.delta, 0);
    }

    #[test]
    fn unknown_flow_is_an_error() {
        let set = paper_example();
        assert!(explain_flow(&set, &AnalysisConfig::default(), FlowId(77)).is_err());
    }
}
