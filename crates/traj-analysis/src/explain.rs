//! Figure-2-style explanation of a bound: which packets, which nodes and
//! which links make up the worst case.
//!
//! The paper's Figure 2 illustrates the backward construction of the
//! worst-case trajectory: busy periods chained from the last node back to
//! the ingress. [`explain_flow`] reconstructs the analytical counterpart —
//! for the maximising activation instant `t*`, every interference window
//! with its packet count, the per-node extra-packet terms and the link
//! budget — so users can audit a bound term by term.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId, FlowSet, NodeId, Tick};

use crate::config::AnalysisConfig;
use crate::report::Verdict;
use crate::wcrt::Analyzer;

/// One interfering flow's contribution at the worst-case instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceLine {
    /// The interfering flow.
    pub flow: FlowId,
    /// Window alignment `A_{i,j}`.
    pub a: Tick,
    /// Packets counted at `t*`.
    pub packets: i64,
    /// Cost per packet (`C_j^{slow_{j,i}}`).
    pub cost_per_packet: Duration,
    /// Total workload.
    pub workload: Duration,
}

/// Full decomposition of a flow's bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundBreakdown {
    /// The analysed flow.
    pub flow: FlowId,
    /// The worst-case activation instant `t*`.
    pub t_star: Tick,
    /// Busy-period bound `Bᵢ^{slow}` (Lemma 3), the width of the search
    /// domain.
    pub busy_period: Duration,
    /// Packets of the flow itself ahead of the studied packet.
    pub self_packets: i64,
    /// Workload of those packets.
    pub self_workload: Duration,
    /// Per-interfering-flow lines, ordered as encountered.
    pub interference: Vec<InterferenceLine>,
    /// Per-node extra packet (`max_{same-dir j} C_jʰ` for `h ≠ slowᵢ`).
    pub per_node_extra: Vec<(NodeId, Duration)>,
    /// Total link budget `Σ Lmax`.
    pub links: Duration,
    /// Non-preemption delay `δᵢ` (0 for plain FIFO).
    pub delta: Duration,
    /// The resulting bound: must equal the sum of all parts minus `t*`.
    pub bound: Duration,
}

impl BoundBreakdown {
    /// Re-sums the parts; equals [`Self::bound`] by construction (checked
    /// in tests, useful as an audit).
    pub fn total(&self) -> Duration {
        self.self_workload
            + self
                .interference
                .iter()
                .map(|l| l.workload)
                .sum::<Duration>()
            + self
                .per_node_extra
                .iter()
                .map(|(_, c)| *c)
                .sum::<Duration>()
            + self.links
            + self.delta
            - self.t_star
    }
}

/// Explains the Property 2 bound of one flow. Returns `Err` with the
/// divergence verdict on overloaded sets.
pub fn explain_flow(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    id: FlowId,
) -> Result<BoundBreakdown, Verdict> {
    let idx = set
        .index_of(id)
        .ok_or_else(|| Verdict::unbounded(format!("unknown flow {id}")))?;
    let an = Analyzer::new(set, cfg)?;
    breakdown_from(&an, set, cfg, idx)
}

/// Builds the breakdown against an already-converged analyzer (shared by
/// [`explain_flow`] and [`provenance_flow`], which needs the analyzer
/// afterwards for the `Smax` rows).
fn breakdown_from(
    an: &Analyzer<'_>,
    set: &FlowSet,
    cfg: &AnalysisConfig,
    idx: usize,
) -> Result<BoundBreakdown, Verdict> {
    let f = &set.flows()[idx];
    let bf = an.bound_function(idx, &f.path);
    let max = bf
        .maximise(cfg.max_busy_period)
        .map_err(Verdict::from)?
        .ok_or_else(|| Verdict::unbounded("busy period diverged"))?;
    let busy_period = bf
        .busy_period(cfg.max_busy_period)
        .map_err(Verdict::from)?
        .unwrap_or(0);

    let mut interference = Vec::new();
    let mut self_packets = 0;
    let mut self_workload = 0;
    for w in &bf.windows {
        let packets = w.packets(max.t_star).map_err(Verdict::from)?;
        if w.flow == f.id {
            self_packets += packets;
            self_workload += packets * w.cost;
        } else {
            interference.push(InterferenceLine {
                flow: w.flow,
                a: w.a,
                packets,
                cost_per_packet: w.cost,
                workload: packets * w.cost,
            });
        }
    }

    // Recompute the constant's visible parts for the per-node table.
    let slow = f.slow_node();
    let keep = |_: &traj_model::SporadicFlow| true;
    let per_node_extra: Vec<(NodeId, Duration)> = f
        .path
        .nodes()
        .iter()
        .filter(|&&h| h != slow)
        .map(|&h| (h, set.max_samedir_cost_filtered(&f.path, h, keep)))
        .collect();
    let links: Duration = f
        .path
        .links()
        .map(|(a, b)| set.network().link_delay(a, b).lmax)
        .sum();

    Ok(BoundBreakdown {
        flow: f.id,
        t_star: max.t_star,
        busy_period,
        self_packets,
        self_workload,
        interference,
        per_node_extra,
        links,
        delta: 0,
        bound: max.value,
    })
}

/// Classification of one additive part of a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TermKind {
    /// The flow's own packets ahead of the studied one.
    SelfWorkload,
    /// One interfering flow's window workload at `t*`.
    Interference,
    /// One node's same-direction extra packet (`h ≠ slowᵢ`).
    NodeExtra,
    /// The path's total link budget `Σ Lmax`.
    Links,
    /// The non-preemption delay `δᵢ`.
    Delta,
    /// The `-t*` activation offset of Lemma 3 (the only term that can be
    /// negative, when `t* > 0`).
    ActivationOffset,
}

/// One atomic, signed contribution to a flow's bound. The terms of a
/// [`BoundProvenance`] sum *exactly* to the reported bound — asserted by
/// the differential suite in `tests/explain_differential.rs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceTerm {
    /// What kind of part this is.
    pub kind: TermKind,
    /// The flow behind it ([`TermKind::SelfWorkload`] and
    /// [`TermKind::Interference`] terms).
    pub flow: Option<FlowId>,
    /// The node behind it ([`TermKind::NodeExtra`] terms).
    pub node: Option<NodeId>,
    /// Signed contribution in ticks.
    pub amount: Duration,
}

/// The `Smax` row of one flow: its converged maximum source-to-node
/// traversal time at every node of its path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmaxRow {
    /// Whose row.
    pub flow: FlowId,
    /// `(node, Smax)` pairs in path order.
    pub per_node: Vec<(NodeId, Duration)>,
}

/// Machine-readable provenance of one flow's Property 2 bound: a flat
/// term list summing exactly to the bound, the dominant term, and — when
/// interference dominates — the dominant interferer's `Smax` row (the
/// fixed-point state that sized its window alignment).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundProvenance {
    /// The analysed flow.
    pub flow: FlowId,
    /// The bound being decomposed.
    pub bound: Duration,
    /// The maximising activation instant.
    pub t_star: Tick,
    /// Every additive part; `Σ amount == bound`.
    pub terms: Vec<ProvenanceTerm>,
    /// Index into [`Self::terms`] of the largest positive contribution
    /// (first wins ties; `None` only if no term is positive).
    pub dominant: Option<usize>,
    /// The dominant interferer's converged `Smax` row, when the dominant
    /// term is [`TermKind::Interference`].
    pub dominant_smax: Option<SmaxRow>,
}

impl BoundProvenance {
    /// Re-sums the terms; equals [`Self::bound`] by construction.
    pub fn total(&self) -> Duration {
        self.terms.iter().map(|t| t.amount).sum()
    }

    /// The dominant term itself.
    pub fn dominant_term(&self) -> Option<&ProvenanceTerm> {
        self.dominant.and_then(|i| self.terms.get(i))
    }

    /// The dominant term's fraction of the bound (`None` for unbounded
    /// shares: no dominant term or a non-positive bound).
    pub fn dominant_share(&self) -> Option<f64> {
        let t = self.dominant_term()?;
        (self.bound > 0).then(|| t.amount as f64 / self.bound as f64)
    }
}

/// Builds the machine-readable provenance of one flow's Property 2
/// bound. Returns `Err` with the divergence verdict on overloaded sets.
pub fn provenance_flow(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    id: FlowId,
) -> Result<BoundProvenance, Verdict> {
    let idx = set
        .index_of(id)
        .ok_or_else(|| Verdict::unbounded(format!("unknown flow {id}")))?;
    let an = Analyzer::new(set, cfg)?;
    provenance_from(&an, set, cfg, idx)
}

/// Provenance against an already-converged analyzer (one fixed point for
/// the whole set in [`provenance_all`]).
fn provenance_from(
    an: &Analyzer<'_>,
    set: &FlowSet,
    cfg: &AnalysisConfig,
    idx: usize,
) -> Result<BoundProvenance, Verdict> {
    let b = breakdown_from(an, set, cfg, idx)?;

    let mut terms = Vec::with_capacity(3 + b.interference.len() + b.per_node_extra.len());
    terms.push(ProvenanceTerm {
        kind: TermKind::SelfWorkload,
        flow: Some(b.flow),
        node: None,
        amount: b.self_workload,
    });
    for l in &b.interference {
        terms.push(ProvenanceTerm {
            kind: TermKind::Interference,
            flow: Some(l.flow),
            node: None,
            amount: l.workload,
        });
    }
    for &(h, c) in &b.per_node_extra {
        terms.push(ProvenanceTerm {
            kind: TermKind::NodeExtra,
            flow: None,
            node: Some(h),
            amount: c,
        });
    }
    terms.push(ProvenanceTerm {
        kind: TermKind::Links,
        flow: None,
        node: None,
        amount: b.links,
    });
    terms.push(ProvenanceTerm {
        kind: TermKind::Delta,
        flow: None,
        node: None,
        amount: b.delta,
    });
    terms.push(ProvenanceTerm {
        kind: TermKind::ActivationOffset,
        flow: None,
        node: None,
        amount: -b.t_star,
    });

    let mut dominant: Option<usize> = None;
    for (i, t) in terms.iter().enumerate() {
        if t.amount > 0 && dominant.map(|d| t.amount > terms[d].amount).unwrap_or(true) {
            dominant = Some(i);
        }
    }
    let dominant_smax = dominant.and_then(|d| {
        let t = &terms[d];
        if t.kind != TermKind::Interference {
            return None;
        }
        let j = set.index_of(t.flow?)?;
        let fj = &set.flows()[j];
        Some(SmaxRow {
            flow: fj.id,
            per_node: fj
                .path
                .nodes()
                .iter()
                .copied()
                .zip(an.smax().row(j).iter().copied())
                .collect(),
        })
    });

    Ok(BoundProvenance {
        flow: b.flow,
        bound: b.bound,
        t_star: b.t_star,
        terms,
        dominant,
        dominant_smax,
    })
}

/// Provenance for every flow of the set, in flow-set order; the `Smax`
/// fixed point runs once and is shared by all decompositions. On a
/// set-wide failure (divergence, overflow) every entry carries the same
/// verdict.
pub fn provenance_all(
    set: &FlowSet,
    cfg: &AnalysisConfig,
) -> Vec<Result<BoundProvenance, Verdict>> {
    match Analyzer::new(set, cfg) {
        Ok(an) => (0..set.len())
            .map(|i| provenance_from(&an, set, cfg, i))
            .collect(),
        Err(v) => set.flows().iter().map(|_| Err(v.clone())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn breakdown_sums_to_bound() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        for f in set.flows() {
            let b = explain_flow(&set, &cfg, f.id).unwrap();
            assert_eq!(b.total(), b.bound, "flow {}", f.id);
        }
    }

    #[test]
    fn flow1_breakdown_matches_hand_computation() {
        let set = paper_example();
        let b = explain_flow(&set, &AnalysisConfig::default(), FlowId(1)).unwrap();
        assert_eq!(b.bound, 31);
        assert_eq!(b.t_star, 0);
        assert_eq!(b.busy_period, 16);
        assert_eq!(b.self_packets, 1);
        // flows 3, 4, 5 each contribute one 4-tick packet
        assert_eq!(b.interference.len(), 3);
        for line in &b.interference {
            assert_eq!(line.packets, 1);
            assert_eq!(line.workload, 4);
        }
        // three non-slow nodes with a 4-tick extra packet each
        assert_eq!(b.per_node_extra.iter().map(|(_, c)| c).sum::<i64>(), 12);
        assert_eq!(b.links, 3);
        assert_eq!(b.delta, 0);
    }

    #[test]
    fn unknown_flow_is_an_error() {
        let set = paper_example();
        assert!(explain_flow(&set, &AnalysisConfig::default(), FlowId(77)).is_err());
        assert!(provenance_flow(&set, &AnalysisConfig::default(), FlowId(77)).is_err());
    }

    #[test]
    fn provenance_terms_sum_to_the_analyzer_bound() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let report = crate::analyze_all(&set, &cfg);
        for (f, bound) in set.flows().iter().zip(report.bounds()) {
            let p = provenance_flow(&set, &cfg, f.id).unwrap();
            assert_eq!(p.total(), p.bound, "flow {}", f.id);
            assert_eq!(Some(p.bound), bound, "flow {}", f.id);
        }
    }

    #[test]
    fn provenance_dominant_and_smax_row_are_consistent() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        for p in provenance_all(&set, &cfg) {
            let p = p.unwrap();
            let d = p
                .dominant_term()
                .expect("positive bound has a dominant term");
            assert!(d.amount > 0);
            // No term is strictly larger than the dominant one.
            assert!(p.terms.iter().all(|t| t.amount <= d.amount));
            match d.kind {
                TermKind::Interference => {
                    let row = p.dominant_smax.as_ref().expect("interference dominant");
                    assert_eq!(Some(row.flow), d.flow);
                    let j = set.index_of(row.flow).unwrap();
                    assert_eq!(row.per_node.len(), set.flows()[j].path.len());
                }
                _ => assert!(p.dominant_smax.is_none()),
            }
            let share = p.dominant_share().unwrap();
            assert!(share > 0.0 && share <= 1.0, "share {share}");
        }
    }

    #[test]
    fn provenance_roundtrips_through_serde() {
        let set = paper_example();
        let p = provenance_flow(&set, &AnalysisConfig::default(), FlowId(1)).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: BoundProvenance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn provenance_all_shares_one_fixed_point_and_covers_every_flow() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let all = provenance_all(&set, &cfg);
        assert_eq!(all.len(), set.len());
        for (f, p) in set.flows().iter().zip(&all) {
            assert_eq!(p.as_ref().unwrap().flow, f.id);
        }
    }
}
