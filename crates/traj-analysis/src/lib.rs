//! Trajectory-approach schedulability analysis of FIFO-scheduled flows.
//!
//! Implements the analysis of Martin & Minet (IPDPS 2006):
//!
//! * **Property 1** — bound on the latest starting time `W_{i,t}^{lastᵢ}`
//!   of the packet of `τᵢ` generated at time `t` on its last node;
//! * **Lemma 3 / Property 2** — the worst-case end-to-end response time
//!   `Rᵢ = max_{-Jᵢ ≤ t < -Jᵢ + Bᵢ^{slow}} ( W_{i,t}^{lastᵢ} + Cᵢ^{lastᵢ} - t )`;
//! * **Definition 2** — the end-to-end jitter bound;
//! * **Lemma 4 / Property 3** — the Expedited Forwarding variant with the
//!   non-preemption term `δᵢ`.
//!
//! The paper leaves `Smaxᵢʰ` (maximum source-to-`h` traversal time)
//! unspecified; [`smax::SmaxTable`] computes it as a global fixed point
//! over path prefixes, which is the sound, self-consistent reading (see
//! DESIGN.md §2 for the full discussion and the ablation modes).
//!
//! Entry points: [`analyze_all`], [`analyze_flow`], [`ef::analyze_ef`],
//! and [`explain::explain_flow`] for a Figure-2-style breakdown.

pub mod backend;
mod cache;
mod components;
pub mod config;
pub mod ef;
pub mod explain;
pub mod incremental;
pub mod jitter;
pub mod reference;
pub mod report;
pub mod sensitivity;
pub mod smax;
pub mod snapshot;
pub mod survivability;
pub mod telemetry;
pub mod terms;
pub mod wcrt;

pub use backend::TrajectoryAnalyzer;
pub use config::{
    config_grid, AnalysisConfig, FixpointStrategy, IntraParallel, ReverseCounting, ShardMode,
    SmaxMode, INTRA_PARALLEL_MIN_CELLS,
};
pub use ef::{analyze_ef, nonpreemption_delta};
pub use explain::{explain_flow, provenance_all, provenance_flow, BoundBreakdown, BoundProvenance};
pub use incremental::{
    addition_dirty_closure, analyze_ef_incremental, BitIdentityAudit, ConvergedState, EfWhatIf,
};
pub use jitter::jitter_bound;
pub use reference::analyze_all_reference;
pub use report::{FlowReport, SetReport, Verdict};
pub use sensitivity::{critical_flow, deadline_margin, max_admissible_cost, slacks};
pub use snapshot::{ConvergedSnapshot, SnapshotError};
pub use survivability::{analyze_degraded, dirty_closure, reanalyze, FaultReanalysis};
pub use telemetry::{FixpointTelemetry, RoundTelemetry, ShardTelemetry};
pub use wcrt::{analyze_all, analyze_flow, Analyzer};
