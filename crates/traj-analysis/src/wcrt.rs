//! Property 2: the worst-case end-to-end response-time bound.
//!
//! [`Analyzer`] assembles, for one flow over one (possibly truncated)
//! path, the [`BoundFunction`] of Property 1 — interference windows,
//! same-direction extra-packet terms, link delays, optional non-preemption
//! `δᵢ` — and maximises it over `t ∈ [-Jᵢ, -Jᵢ + Bᵢ^{slow})` per Lemma 3.
//!
//! The same engine serves the plain FIFO analysis (universe = all flows,
//! `δ = 0`) and the EF analysis of Property 3 (universe = EF flows,
//! `δ` = Lemma 4), and is reused node-prefix by node-prefix by the `Smax`
//! fixed point.

use rayon::prelude::*;
use traj_model::{CrossDirection, Duration, FlowId, FlowSet, Path, SporadicFlow};

use crate::cache::InterferenceCache;
use crate::config::{AnalysisConfig, FixpointStrategy, ReverseCounting, SmaxMode};
use crate::jitter::jitter_bound;
use crate::report::{FlowReport, SetReport, Verdict};
use crate::smax::SmaxTable;
use crate::telemetry::{FixpointTelemetry, RoundTelemetry};
use crate::terms::{BoundFunction, Window};
use traj_obs::{Event, ScopedTimer};

/// Supplies the non-preemption term `δᵢ` added to `W` (Lemma 4). The plain
/// FIFO analysis uses [`NoDelta`].
pub trait DeltaProvider: Sync {
    /// `δ` for the flow at `flow_idx` restricted to `prefix`.
    fn delta(&self, set: &FlowSet, flow_idx: usize, prefix: &Path) -> Duration;
}

/// `δ = 0`: no lower-priority traffic (paper §4).
pub struct NoDelta;

impl DeltaProvider for NoDelta {
    fn delta(&self, _set: &FlowSet, _flow_idx: usize, _prefix: &Path) -> Duration {
        0
    }
}

/// Owned remains of a converged [`Analyzer`], decoupled from the
/// borrowed set/configuration (see [`Analyzer::into_state_parts`]).
pub(crate) struct AnalyzerParts {
    pub(crate) universe: Vec<bool>,
    pub(crate) smax: SmaxTable,
    pub(crate) cache: InterferenceCache,
    pub(crate) rounds: usize,
    pub(crate) telemetry: FixpointTelemetry,
    pub(crate) full: Vec<Verdict>,
}

/// Below this many active rows a Jacobi round runs serially — the
/// per-round rayon dispatch costs more than recomputing a warm start's
/// small dirty island inline.
const SERIAL_ROUND_MAX_ROWS: usize = 32;

/// What one fixed-point round did: the last cell changed (`None` on
/// convergence) plus the counts feeding [`RoundTelemetry`].
#[derive(Default)]
struct RoundOutcome {
    changed: Option<(usize, usize)>,
    recomputed: usize,
    skipped: usize,
    n_changed: usize,
    max_delta: Duration,
}

/// Reusable analysis engine for one flow set and configuration.
///
/// Construction does all the heavy lifting once: it freezes the
/// `Smax`-independent interference structure into an
/// [`InterferenceCache`], iterates the `Smax` fixed point over it
/// (Jacobi rounds run flows in parallel), and stores the converged
/// full-path bounds; [`Self::wcrt`] and [`Self::report`] afterwards are
/// cheap lookups.
pub struct Analyzer<'a, D: DeltaProvider = NoDelta> {
    set: &'a FlowSet,
    cfg: &'a AnalysisConfig,
    /// Flow-index membership of the FIFO universe under analysis.
    universe: Vec<bool>,
    delta: D,
    smax: SmaxTable,
    /// Frozen bound-function skeletons, one per (flow, prefix length).
    cache: InterferenceCache,
    /// Rounds the `Smax` fixed point took (0 under `TransitOnly`).
    rounds: usize,
    /// Convergence record of the fixed point (strategy chosen, per-round
    /// recompute/skip/change counts); attached to [`SetReport`]s built
    /// from this analyzer.
    telemetry: FixpointTelemetry,
    /// Converged full-path bounds, one per flow.
    full: Vec<Verdict>,
}

impl<'a> Analyzer<'a, NoDelta> {
    /// Builds the engine for a plain FIFO analysis of all flows.
    ///
    /// Computes the `Smax` fixed point up front; an overloaded set yields
    /// `Err` with the divergence reason.
    pub fn new(set: &'a FlowSet, cfg: &'a AnalysisConfig) -> Result<Self, Verdict> {
        Self::with_universe_and_delta(set, cfg, vec![true; set.len()], NoDelta)
    }
}

impl<'a, D: DeltaProvider> Analyzer<'a, D> {
    /// Builds the engine over an explicit flow universe and `δ` provider
    /// (the EF analysis restricts the universe to EF flows and supplies
    /// Lemma 4's `δᵢ`).
    pub fn with_universe_and_delta(
        set: &'a FlowSet,
        cfg: &'a AnalysisConfig,
        universe: Vec<bool>,
        delta: D,
    ) -> Result<Self, Verdict> {
        if universe.len() != set.len() {
            return Err(Verdict::unbounded(
                "universe mask length does not match the flow set",
            ));
        }
        // Seed first: the transit sums are overflow-checked, so a set
        // whose time values cannot even be represented fails here with a
        // typed verdict before any heavier (unchecked) cache arithmetic
        // runs.
        let seed = SmaxTable::transit(set)?;
        let cache = {
            let _span = ScopedTimer::new("analysis.cache_build").field("flows", set.len());
            InterferenceCache::build(set, cfg, &universe, &delta)
        };
        let seed_rows = vec![true; set.len()];
        Self::with_parts(set, cfg, universe, delta, cache, seed, &seed_rows, None)
    }

    /// Core constructor behind the cold path, the survivability warm
    /// start, and the admission warm start: runs the fixed point from an
    /// arbitrary seed table, forcing recomputation only of the flows
    /// flagged in `seed_rows`.
    ///
    /// Sound warm starts must seed every flagged flow at (or below) its
    /// least-fixed-point value — e.g. at its transit floor — and every
    /// unflagged flow at a value the new equations already satisfy
    /// (its prior fixed-point row, under the dirty-closure invariant);
    /// Kleene iteration then converges to the same least fixed point a
    /// cold start reaches.
    ///
    /// `full_prev`, when given, supplies already-converged full-path
    /// verdicts to reuse instead of re-maximising: entry `i` may be
    /// `Some` only for flows whose skeleton and every `Smax` cell it
    /// reads are unchanged from the run that produced the verdict (the
    /// same clean-flow invariant as the row reuse above).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_parts(
        set: &'a FlowSet,
        cfg: &'a AnalysisConfig,
        universe: Vec<bool>,
        delta: D,
        cache: InterferenceCache,
        seed: SmaxTable,
        seed_rows: &[bool],
        full_prev: Option<Vec<Option<Verdict>>>,
    ) -> Result<Self, Verdict> {
        let requested = cfg.fixpoint;
        // `Reference` (explicit or Auto-selected) has no cache-based
        // incarnation; run its sequential equivalent and record that.
        let cold = seed_rows.iter().all(|&s| s);
        let chosen = requested
            .resolve_for_run(set.len(), cold, rayon::current_num_threads())
            .cached_equivalent();
        let cells = set
            .flows()
            .iter()
            .enumerate()
            .filter(|(i, _)| universe[*i])
            .map(|(_, f)| f.path.len().saturating_sub(1))
            .sum();
        let mut an = Analyzer {
            set,
            cfg,
            universe,
            delta,
            smax: seed,
            cache,
            rounds: 0,
            telemetry: FixpointTelemetry {
                requested,
                chosen,
                auto_selected: requested == FixpointStrategy::Auto,
                flows: set.len(),
                cells,
                rounds: 0,
                // TransitOnly skips the fixed point: trivially converged.
                converged: cfg.smax_mode != SmaxMode::RecursivePrefix,
                per_round: Vec::new(),
                components: 0,
                largest_component: 0,
                shards: Vec::new(),
            },
            full: Vec::new(),
        };
        if cfg.smax_mode == SmaxMode::RecursivePrefix {
            let _span = ScopedTimer::new("analysis.fixpoint").field("flows", set.len());
            an.fixpoint_smax(seed_rows)?;
        }
        // The table is converged (or transit-only): compute every flow's
        // full-path bound once, so report/wcrt calls are lookups. Flows
        // with a reusable prior verdict skip the maximisation.
        let _span = ScopedTimer::new("analysis.full_bounds").field("flows", set.len());
        let full: Vec<Verdict> = (0..set.len())
            .into_par_iter()
            .map(
                |i| match full_prev.as_ref().and_then(|prev| prev[i].clone()) {
                    Some(v) => v,
                    None => an.wcrt_prefix(i, set.flows()[i].path.len()),
                },
            )
            .collect();
        an.full = full;
        Ok(an)
    }

    /// Decomposes a converged analyzer into its owned parts (for
    /// [`crate::incremental::ConvergedState`], which outlives the
    /// borrowed set and configuration).
    pub(crate) fn into_state_parts(self) -> AnalyzerParts {
        AnalyzerParts {
            universe: self.universe,
            smax: self.smax,
            cache: self.cache,
            rounds: self.rounds,
            telemetry: self.telemetry,
            full: self.full,
        }
    }

    /// The flow set under analysis.
    pub fn set(&self) -> &FlowSet {
        self.set
    }

    /// The converged `Smax` table.
    pub fn smax(&self) -> &SmaxTable {
        &self.smax
    }

    /// Rounds the `Smax` fixed point took to converge (0 under
    /// [`SmaxMode::TransitOnly`]).
    pub fn smax_rounds(&self) -> usize {
        self.rounds
    }

    /// Convergence record of this run's fixed point: strategy requested
    /// vs chosen, per-round recompute/skip/change counts and deltas.
    pub fn telemetry(&self) -> &FixpointTelemetry {
        &self.telemetry
    }

    /// The frozen interference structure (reused row-wise by the
    /// survivability warm start and inspected by the cache test suite).
    pub(crate) fn cache(&self) -> &InterferenceCache {
        &self.cache
    }

    /// Cache-assembled bound function over the prefix of length `k`
    /// (for the cache test suite; must coincide with
    /// [`Self::bound_function`]).
    #[cfg(test)]
    pub(crate) fn cached_bound_function(&self, flow_idx: usize, k: usize) -> BoundFunction {
        self.cache
            .prefix(flow_idx, k)
            .bound_function(flow_idx, &self.smax)
    }

    /// Worst-case end-to-end response-time bound for the flow at
    /// `flow_idx` (Property 2, or Property 3 when `δ` is the EF
    /// provider). Precomputed at construction.
    pub fn wcrt(&self, flow_idx: usize) -> Verdict {
        self.full[flow_idx].clone()
    }

    /// Bound over the prefix made of the first `k` visited nodes,
    /// evaluated from the frozen skeleton and the current `Smax` table.
    pub fn wcrt_prefix(&self, flow_idx: usize, k: usize) -> Verdict {
        match self
            .cache
            .prefix(flow_idx, k)
            .maximise(flow_idx, &self.smax)
        {
            Ok(Some(m)) => Verdict::Bounded(m.value),
            Ok(None) => Verdict::unbounded(format!(
                "busy period of flow {} exceeds the {}-tick guard (overload)",
                self.set.flows()[flow_idx].id,
                self.cfg.max_busy_period
            )),
            Err(o) => Verdict::from(o),
        }
    }

    /// Assembles Property 1's bound function for one flow over `prefix`
    /// (public for the explanation module and tests).
    ///
    /// This is the *direct* assembly, recomputing every term; the `Smax`
    /// fixed point goes through the structurally-identical cached path
    /// instead (see [`InterferenceCache`]).
    pub fn bound_function(&self, flow_idx: usize, prefix: &Path) -> BoundFunction {
        let set = self.set;
        let fi = &set.flows()[flow_idx];
        let keep = |f: &SporadicFlow| {
            set.index_of(f.id)
                .map(|k| self.universe[k])
                .unwrap_or(false)
        };

        let mut windows = Vec::new();
        for (j_idx, fj) in set.flows().iter().enumerate() {
            if j_idx == flow_idx || !self.universe[j_idx] || !set.crosses(fj, prefix) {
                continue;
            }
            // One virtual interfering flow per contiguous crossing
            // segment: a route that leaves the path and meets it again is
            // "a new flow" at each re-entry (the paper's Assumption 1
            // reduction), so each segment carries its own window(s) and
            // its own C^{slow} restricted to the segment's nodes.
            for segment in set.crossing_segments_shared(fj, prefix).iter() {
                let cost = segment
                    .nodes
                    .iter()
                    .map(|&h| fj.cost_at(h))
                    .max()
                    .unwrap_or(0);
                for (fji, fij) in segment_points(self.cfg, segment, prefix) {
                    let a = self.smax.get(set, flow_idx, fji).unwrap_or(0)
                        - set.smin(fj, fji, self.cfg.smin_mode).unwrap_or(0)
                        - set
                            .m_term_filtered(prefix, fij, self.cfg.min_convention, keep)
                            .unwrap_or(0)
                        + self.smax.get(set, j_idx, fij).unwrap_or(0)
                        + fj.jitter;
                    windows.push(Window {
                        flow: fj.id,
                        a,
                        period: fj.period,
                        cost,
                    });
                }
            }
        }
        // Self term: (1 + ⌊(t + Jᵢ)/Tᵢ⌋) · Cᵢ^{slowᵢ}.
        let trunc = fi.truncated(prefix.len()).unwrap_or_else(|| fi.clone());
        windows.push(Window {
            flow: fi.id,
            a: fi.jitter,
            period: fi.period,
            cost: trunc.max_cost(),
        });

        // Constant part: Σ_{h ≠ slowᵢ} max same-direction cost, plus link
        // delays; the -Cᵢ^{last} of W and the +Cᵢ^{last} of the response
        // cancel. δᵢ covers non-preemption (0 for plain FIFO).
        let slow = trunc.slow_node();
        let mut constant = self.delta.delta(set, flow_idx, prefix);
        for &h in prefix.nodes() {
            if h != slow {
                constant += set.max_samedir_cost_filtered(prefix, h, keep);
            }
        }
        for (a, b) in prefix.links() {
            constant += set.network().link_delay(a, b).lmax;
        }
        BoundFunction {
            windows,
            constant,
            t_lo: -fi.jitter,
        }
    }

    /// Iterates the recursive-prefix `Smax` fixed point to convergence.
    ///
    /// Both strategies iterate the same monotone operator from the same
    /// transit-only seed and therefore converge to the same least fixed
    /// point (see DESIGN.md); Jacobi evaluates each round against a
    /// frozen table, which makes the per-flow updates independent and
    /// parallelisable.
    fn fixpoint_smax(&mut self, seed_rows: &[bool]) -> Result<(), Verdict> {
        // Resolved once for the run: `Auto` picks by flow count; the
        // resolution never yields `Auto` back, so the non-Jacobi branch
        // below is Gauss–Seidel.
        let chosen = self.telemetry.chosen;
        // Component decomposition: the crossing-graph components make
        // the equation system block-diagonal and the sharded arena
        // solver runs each block independently (bit-identical values,
        // see `components`). A single component still runs through the
        // arena — its flat reads, reusable scratch, and dirty-cell
        // worklist beat the monolithic loop even without inter-shard
        // parallelism. Only an empty universe falls through, keeping
        // the monolithic loop's zero-round telemetry shape.
        if self.cfg.shard_mode == crate::config::ShardMode::Components {
            let comps = crate::components::partition(self.set, &self.universe, &self.cache);
            self.telemetry.components = comps.len();
            self.telemetry.largest_component = comps.iter().map(Vec::len).max().unwrap_or(0);
            if traj_obs::enabled() {
                traj_obs::emit(
                    Event::new("fixpoint.components")
                        .field("components", comps.len())
                        .field("largest", self.telemetry.largest_component)
                        .field("flows", self.set.len()),
                );
            }
            if !comps.is_empty() {
                return self.fixpoint_smax_sharded(seed_rows, chosen, &comps);
            }
        }
        // Entries the previous round changed. A Jacobi update whose
        // skeleton reads none of them would recompute exactly its
        // current value, so it is skipped — the fixed point becomes
        // incremental as convergence localises. Seeded with the rows the
        // caller marked stale (all of them on a cold start).
        let mut dirty: Vec<Vec<bool>> = self
            .set
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| vec![seed_rows[i]; f.path.len()])
            .collect();
        // Rows the iteration can ever touch: the seeded rows plus, by
        // dependency closure over the skeleton windows, every row that
        // (transitively) reads one of them. On a cold start that is all
        // rows; on a warm start it degenerates to the caller's stale
        // closure, so each round dispatches over O(closure) rows instead
        // of O(flows). Sound because a row outside the set reads only
        // rows outside the set, whose values the seed left at the
        // standing fixed point — recomputing it would reproduce the
        // value it already holds.
        let active = self.active_rows(seed_rows);
        let mut last_changed: Option<(usize, usize)> = None;
        for round in 0..self.cfg.max_smax_rounds {
            self.rounds = round + 1;
            let force = if round == 0 { Some(seed_rows) } else { None };
            let outcome = if chosen == FixpointStrategy::Jacobi {
                self.round_jacobi(&mut dirty, force, &active)?
            } else {
                self.round_gauss_seidel(force)?
            };
            self.telemetry.rounds = self.rounds;
            let rt = RoundTelemetry {
                round: self.rounds,
                recomputed: outcome.recomputed,
                skipped: outcome.skipped,
                changed: outcome.n_changed,
                max_delta: outcome.max_delta,
            };
            if traj_obs::enabled() {
                traj_obs::emit(
                    Event::new("fixpoint.round")
                        .field("round", rt.round)
                        .field("recomputed", rt.recomputed)
                        .field("skipped", rt.skipped)
                        .field("changed", rt.changed)
                        .field("max_delta", rt.max_delta),
                );
            }
            self.telemetry.per_round.push(rt);
            match outcome.changed {
                None => {
                    self.telemetry.converged = true;
                    if traj_obs::enabled() {
                        traj_obs::emit(
                            Event::new("fixpoint.converged")
                                .field("rounds", self.rounds)
                                .field("strategy", chosen.name())
                                .field("auto_selected", self.telemetry.auto_selected)
                                .field("cells", self.telemetry.cells)
                                .field("recomputed_total", self.telemetry.total_recomputed())
                                .field("skipped_total", self.telemetry.total_skipped()),
                        );
                    }
                    return Ok(());
                }
                Some(cell) => last_changed = Some(cell),
            }
        }
        let (fi, pos) = last_changed.unwrap_or((0, 0));
        Err(Verdict::Diverged {
            rounds: self.rounds,
            worst_cell: (
                self.set.flows()[fi].id,
                self.set.flows()[fi].path.nodes()[pos],
            ),
        })
    }

    /// The component-sharded fixed point: every seeded component is
    /// solved independently over its arena (see [`crate::components`]),
    /// then the merged round record is surfaced in the monolithic shape
    /// so downstream telemetry consumers see one coherent run.
    fn fixpoint_smax_sharded(
        &mut self,
        seed_rows: &[bool],
        chosen: FixpointStrategy,
        comps: &[Vec<usize>],
    ) -> Result<(), Verdict> {
        let run = crate::components::solve_sharded(
            self.set,
            self.cfg,
            &self.cache,
            &mut self.smax,
            seed_rows,
            chosen,
            comps,
        )?;
        self.rounds = run.rounds;
        self.telemetry.rounds = run.rounds;
        self.telemetry.converged = true;
        if traj_obs::enabled() {
            for rt in &run.per_round {
                traj_obs::emit(
                    Event::new("fixpoint.round")
                        .field("round", rt.round)
                        .field("recomputed", rt.recomputed)
                        .field("skipped", rt.skipped)
                        .field("changed", rt.changed)
                        .field("max_delta", rt.max_delta),
                );
            }
        }
        self.telemetry.per_round = run.per_round;
        if traj_obs::enabled() {
            for s in &run.shards {
                traj_obs::emit(
                    Event::new("fixpoint.shard")
                        .field("flows", s.flows)
                        .field("cells", s.cells)
                        .field("rounds", s.rounds)
                        .field("recomputed", s.recomputed)
                        .field("skipped", s.skipped)
                        .field("parallel_rounds", s.parallel_rounds)
                        .field("solve_micros", s.solve_micros),
                );
            }
        }
        self.telemetry.shards = run.shards;
        if traj_obs::enabled() {
            traj_obs::emit(
                Event::new("fixpoint.converged")
                    .field("rounds", self.rounds)
                    .field("strategy", chosen.name())
                    .field("auto_selected", self.telemetry.auto_selected)
                    .field("cells", self.telemetry.cells)
                    .field("recomputed_total", self.telemetry.total_recomputed())
                    .field("skipped_total", self.telemetry.total_skipped()),
            );
        }
        Ok(())
    }

    /// The in-universe rows the Jacobi iteration has to visit: the
    /// seeded rows plus every row that transitively reads one of them
    /// through a skeleton window. Computed once per run by saturating
    /// over the window dependency graph (a row's reads are frozen in its
    /// skeletons, so the reachable set cannot grow mid-iteration).
    fn active_rows(&self, seed_rows: &[bool]) -> Vec<usize> {
        let n = self.set.len();
        let mut active = seed_rows.to_vec();
        let mut grew = true;
        while grew {
            grew = false;
            for i in 0..n {
                if active[i] || !self.universe[i] {
                    continue;
                }
                if self.cache.row_reads_flagged(i, &active) {
                    active[i] = true;
                    grew = true;
                }
            }
        }
        (0..n).filter(|&i| active[i] && self.universe[i]).collect()
    }

    /// The `Smax` update for one (flow, position): the prefix bound
    /// through `pre(pos)` plus the incoming link's `Lmax`, evaluated
    /// against `self.smax` as it currently stands.
    fn smax_update(&self, fi: usize, pos: usize) -> Result<Duration, Verdict> {
        let r = match self.wcrt_prefix(fi, pos) {
            Verdict::Bounded(r) => r,
            u => return Err(u),
        };
        let path = &self.set.flows()[fi].path;
        let from = path.nodes()[pos - 1];
        let to = path.nodes()[pos];
        let val = r + self.set.network().link_delay(from, to).lmax;
        if val > self.cfg.max_busy_period {
            return Err(Verdict::unbounded(format!(
                "Smax of flow {} at node {} exceeds the guard",
                self.set.flows()[fi].id,
                to
            )));
        }
        Ok(val)
    }

    /// One Jacobi round: every update reads the previous round's table,
    /// so flows are processed in parallel; the new values are applied
    /// after the whole round. Errors surface in flow-index order to stay
    /// deterministic regardless of thread scheduling.
    ///
    /// `dirty` flags the entries the previous round changed; an update
    /// whose skeleton reads no dirty entry is skipped (its recomputation
    /// would reproduce the value it already holds). On return `dirty`
    /// holds this round's changes. `force` flags flows whose every
    /// update is computed unconditionally — all flows on a cold start's
    /// first round, where even a windowless (table-independent) update
    /// must replace its transit seed once before "no reads changed"
    /// implies "value unchanged"; only the stale flows on a warm start.
    fn round_jacobi(
        &mut self,
        dirty: &mut [Vec<bool>],
        force: Option<&[bool]>,
        active: &[usize],
    ) -> Result<RoundOutcome, Verdict> {
        // Per-flow result of the map: recomputed `(pos, value)` pairs
        // plus the count of skipped cells.
        type FlowUpdates = Result<(Vec<(usize, Duration)>, usize), Verdict>;
        let this: &Self = self;
        let dirty_ro: &[Vec<bool>] = dirty;
        let per_flow = |fi: usize| -> FlowUpdates {
            let forced = force.map(|rows| rows[fi]).unwrap_or(false);
            let len = this.set.flows()[fi].path.len();
            let mut out = Vec::with_capacity(len.saturating_sub(1));
            let mut skipped = 0;
            for pos in 1..len {
                if !forced && !this.cache.prefix(fi, pos).depends_on_changed(fi, dirty_ro) {
                    skipped += 1;
                    continue;
                }
                out.push((pos, this.smax_update(fi, pos)?));
            }
            Ok((out, skipped))
        };
        // A small worklist (a warm start's dirty island) is not worth a
        // thread-pool dispatch per round.
        let updates: Vec<FlowUpdates> = if active.len() <= SERIAL_ROUND_MAX_ROWS {
            active.iter().map(|&fi| per_flow(fi)).collect()
        } else {
            active.par_iter().map(|&fi| per_flow(fi)).collect()
        };
        for row in dirty.iter_mut() {
            row.fill(false);
        }
        let mut outcome = RoundOutcome::default();
        for (&fi, res) in active.iter().zip(updates) {
            let (ups, skipped) = res?;
            outcome.skipped += skipped;
            outcome.recomputed += ups.len();
            for (pos, val) in ups {
                let old = self.smax.at(fi, pos);
                if self.smax.set(fi, pos, val) {
                    dirty[fi][pos] = true;
                    outcome.changed = Some((fi, pos));
                    outcome.n_changed += 1;
                    outcome.max_delta = outcome.max_delta.max(val.saturating_sub(old));
                }
            }
        }
        Ok(outcome)
    }

    /// One Gauss–Seidel round: updates are applied in place, each
    /// immediately visible to the next (the historical scheme). Unlike
    /// Jacobi it recomputes every in-universe cell regardless of `force`
    /// — a warm seed still converges (each update stays below the least
    /// fixed point), it just is not incremental.
    fn round_gauss_seidel(&mut self, _force: Option<&[bool]>) -> Result<RoundOutcome, Verdict> {
        let mut outcome = RoundOutcome::default();
        for fi in 0..self.set.len() {
            if !self.universe[fi] {
                continue;
            }
            for pos in 1..self.set.flows()[fi].path.len() {
                let val = self.smax_update(fi, pos)?;
                outcome.recomputed += 1;
                let old = self.smax.at(fi, pos);
                if self.smax.set(fi, pos, val) {
                    outcome.changed = Some((fi, pos));
                    outcome.n_changed += 1;
                    outcome.max_delta = outcome.max_delta.max(val.saturating_sub(old));
                }
            }
        }
        Ok(outcome)
    }

    /// Full report for the flow at `flow_idx`.
    pub fn report(&self, flow_idx: usize) -> FlowReport {
        let f = &self.set.flows()[flow_idx];
        let wcrt = self.wcrt(flow_idx);
        let jitter = wcrt.value().map(|r| jitter_bound(self.set, f, r));
        FlowReport {
            flow: f.id,
            name: f.name.clone(),
            wcrt,
            jitter,
            deadline: f.deadline,
        }
    }
}

/// The `(first_{j,i}, first_{i,j})` anchor pairs for one crossing
/// segment: a single pair per segment under
/// [`ReverseCounting::PerFlow`]; one pair per shared node for
/// reverse-direction segments under [`ReverseCounting::PerCrossingNode`].
/// Shared by the direct assembly above and the skeleton build in
/// [`crate::cache`].
pub(crate) fn segment_points(
    cfg: &AnalysisConfig,
    segment: &traj_model::CrossingSegment,
    prefix: &Path,
) -> Vec<(traj_model::NodeId, traj_model::NodeId)> {
    let reverse = segment.direction == CrossDirection::Reverse;
    if reverse && cfg.reverse_counting == ReverseCounting::PerCrossingNode {
        segment.nodes.iter().map(|&h| (h, h)).collect()
    } else {
        vec![(
            segment.first_in_crosser_order(),
            segment.entry_in_path_order(prefix),
        )]
    }
}

/// Analyses every flow of the set with Property 2 (plain FIFO).
///
/// Flows are analysed in parallel once the shared `Smax` fixed point has
/// converged. Very small sets (below
/// [`crate::config::AUTO_REFERENCE_MAX_FLOWS`] under
/// [`FixpointStrategy::Auto`], or an explicit
/// [`FixpointStrategy::Reference`]) run the retained pre-cache engine —
/// measurably faster there, bit-identical everywhere (the differential
/// suite's contract).
pub fn analyze_all(set: &FlowSet, cfg: &AnalysisConfig) -> SetReport {
    if cfg.fixpoint.resolve(set.len()) == FixpointStrategy::Reference {
        return crate::reference::analyze_all_reference_tracked(set, cfg);
    }
    match Analyzer::new(set, cfg) {
        Ok(an) => {
            let reports: Vec<FlowReport> = (0..set.len())
                .into_par_iter()
                .map(|i| an.report(i))
                .collect();
            SetReport::new(reports).with_telemetry(an.telemetry().clone())
        }
        Err(verdict) => SetReport::new(
            set.flows()
                .iter()
                .map(|f| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: verdict.clone(),
                    jitter: None,
                    deadline: f.deadline,
                })
                .collect(),
        ),
    }
}

/// Analyses a single flow; `None` when the id is unknown.
pub fn analyze_flow(set: &FlowSet, cfg: &AnalysisConfig, id: FlowId) -> Option<FlowReport> {
    let idx = set.index_of(id)?;
    match Analyzer::new(set, cfg) {
        Ok(an) => Some(an.report(idx)),
        Err(verdict) => {
            let f = set.flow(id)?;
            Some(FlowReport {
                flow: f.id,
                name: f.name.clone(),
                wcrt: verdict,
                jitter: None,
                deadline: f.deadline,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};
    use traj_model::{Network, Path};

    #[test]
    fn paper_example_default_bounds() {
        // Faithful Property 2 with the sound recursive Smax (see
        // EXPERIMENTS.md: the published Table 2 used a cruder accounting;
        // our bounds are tighter and simulation-validated).
        let set = paper_example();
        let report = analyze_all(&set, &AnalysisConfig::default());
        assert_eq!(
            report.bounds(),
            vec![Some(31), Some(37), Some(47), Some(47), Some(40)]
        );
        assert!(report.all_schedulable());
    }

    #[test]
    fn paper_calibrated_bounds_bracket_table2() {
        let set = paper_example();
        let report = analyze_all(&set, &AnalysisConfig::paper_calibrated());
        let bounds: Vec<i64> = report.bounds().into_iter().map(|b| b.unwrap()).collect();
        // Still schedulable, never tighter than the default mode.
        let def = analyze_all(&set, &AnalysisConfig::default());
        for (b, d) in bounds.iter().zip(def.bounds()) {
            assert!(*b >= d.unwrap());
        }
        assert!(report.all_schedulable());
        // tau_1 matches the paper exactly in every mode.
        assert_eq!(bounds[0], 31);
    }

    #[test]
    fn single_flow_has_transit_bound() {
        // One flow alone: R = Σ C + (q-1) Lmax + J.
        let set = line_topology(1, 4, 100, 5, 1, 2).unwrap();
        let report = analyze_all(&set, &AnalysisConfig::default());
        assert_eq!(report.bounds(), vec![Some(4 * 5 + 3 * 2)]);
    }

    #[test]
    fn single_node_flows_reduce_to_busy_period_analysis() {
        // n flows sharing one node: FIFO worst case for the packet under
        // study is all other flows' packets ahead of it plus its own.
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let report = analyze_all(&set, &AnalysisConfig::default());
        for b in report.bounds() {
            assert_eq!(b, Some(21));
        }
    }

    #[test]
    fn overload_is_reported_not_looped() {
        // Utilisation 3 * 50/100 = 1.5 on every node.
        let set = line_topology(3, 3, 100, 50, 1, 1).unwrap();
        let report = analyze_all(&set, &AnalysisConfig::default());
        assert_eq!(report.misses(), 3);
        for r in report.per_flow() {
            assert!(!r.wcrt.is_bounded());
        }
    }

    #[test]
    fn jitter_shifts_the_domain_and_the_bound() {
        let net = Network::uniform(2, 1, 1).unwrap();
        let mk = |jit| {
            let f = traj_model::SporadicFlow::uniform(
                1,
                Path::from_ids([1, 2]).unwrap(),
                100,
                5,
                jit,
                1000,
            )
            .unwrap();
            FlowSet::new(net.clone(), vec![f]).unwrap()
        };
        let r0 = analyze_all(&mk(0), &AnalysisConfig::default());
        let r9 = analyze_all(&mk(9), &AnalysisConfig::default());
        // Alone, the jittered flow still completes within transit time of
        // its *latest* release, measured from generation: +J.
        assert_eq!(r0.bounds()[0], Some(11));
        assert_eq!(r9.bounds()[0], Some(20));
    }

    #[test]
    fn monotone_in_interference_cost() {
        // Adding a crossing flow can only increase the bound of tau_1.
        let base = line_topology(2, 3, 100, 4, 1, 1).unwrap();
        let more = line_topology(3, 3, 100, 4, 1, 1).unwrap();
        let cfg = AnalysisConfig::default();
        let b0 = analyze_all(&base, &cfg).bounds()[0].unwrap();
        let b1 = analyze_all(&more, &cfg).bounds()[0].unwrap();
        assert!(b1 > b0);
    }

    #[test]
    fn transit_only_mode_is_never_tighter_checked_elsewhere() {
        // TransitOnly skips the fixed point: it must at least produce a
        // bound on the paper example without panicking.
        let set = paper_example();
        let cfg = AnalysisConfig {
            smax_mode: SmaxMode::TransitOnly,
            ..Default::default()
        };
        let report = analyze_all(&set, &cfg);
        assert!(report.per_flow().iter().all(|r| r.wcrt.is_bounded()));
    }

    #[test]
    fn jacobi_and_gauss_seidel_converge_to_the_same_fixed_point() {
        // Both strategies iterate the same monotone operator from the
        // same transit-only seed, so they reach the same least fixed
        // point: identical Smax tables and identical bounds (Jacobi may
        // take more rounds).
        for base in crate::config_grid() {
            let set = paper_example();
            let jac = AnalysisConfig {
                fixpoint: FixpointStrategy::Jacobi,
                ..base.clone()
            };
            let gs = AnalysisConfig {
                fixpoint: FixpointStrategy::GaussSeidel,
                ..base.clone()
            };
            let an_j = Analyzer::new(&set, &jac).unwrap();
            let an_g = Analyzer::new(&set, &gs).unwrap();
            assert_eq!(an_j.smax().values(), an_g.smax().values(), "cfg {base:?}");
            assert_eq!(
                analyze_all(&set, &jac).bounds(),
                analyze_all(&set, &gs).bounds(),
                "cfg {base:?}"
            );
        }
    }

    #[test]
    fn smax_rounds_are_reported() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        assert!(an.smax_rounds() >= 1);
        let transit = AnalysisConfig {
            smax_mode: SmaxMode::TransitOnly,
            ..Default::default()
        };
        assert_eq!(Analyzer::new(&set, &transit).unwrap().smax_rounds(), 0);
    }

    #[test]
    fn auto_strategy_picks_by_size_and_records_the_choice() {
        // The 5-flow paper example sits below AUTO_JACOBI_MIN_FLOWS: the
        // default (Auto) config must run Gauss–Seidel and say so.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        let t = an.telemetry();
        assert_eq!(t.requested, FixpointStrategy::Auto);
        assert_eq!(t.chosen, FixpointStrategy::GaussSeidel);
        assert!(t.auto_selected);
        assert!(t.converged);
        assert_eq!(t.flows, 5);
        assert_eq!(t.rounds, an.smax_rounds());
        assert_eq!(t.per_round.len(), t.rounds);
        // Every flow's non-ingress positions are iterated.
        let cells: usize = set.flows().iter().map(|f| f.path.len() - 1).sum();
        assert_eq!(t.cells, cells);
        // The convergence-check round changes nothing.
        let last = t.per_round.last().unwrap();
        assert_eq!(last.changed, 0);
        assert_eq!(last.max_delta, 0);
        // Explicit strategies are honoured verbatim.
        let jac = AnalysisConfig {
            fixpoint: FixpointStrategy::Jacobi,
            ..cfg.clone()
        };
        let tj = Analyzer::new(&set, &jac).unwrap().telemetry().clone();
        assert_eq!(tj.requested, FixpointStrategy::Jacobi);
        assert_eq!(tj.chosen, FixpointStrategy::Jacobi);
        assert!(!tj.auto_selected);
        // Jacobi's dirty-read analysis skips settled cells in later
        // rounds; Gauss–Seidel recomputes everything every round.
        assert!(tj.total_skipped() > 0, "{tj:?}");
        assert_eq!(t.total_skipped(), 0);
        assert_eq!(t.total_recomputed(), t.rounds * t.cells);
    }

    #[test]
    fn telemetry_rides_on_the_set_report_and_roundtrips() {
        let set = paper_example();
        let report = analyze_all(&set, &AnalysisConfig::default());
        let t = report.telemetry().expect("analyze_all attaches telemetry");
        assert!(t.converged);
        let json = serde_json::to_string(&report).unwrap();
        let back: SetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.telemetry(), Some(t));
        assert_eq!(back.bounds(), report.bounds());
    }

    #[test]
    fn fixpoint_emits_round_and_convergence_events_when_sink_installed() {
        let _g = traj_obs::test_guard();
        let ring = std::sync::Arc::new(traj_obs::RingSink::new(256));
        traj_obs::set_sink(ring.clone());
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        traj_obs::disable();
        let events = ring.drain();
        let rounds = events.iter().filter(|e| e.name == "fixpoint.round").count();
        assert_eq!(rounds, an.smax_rounds());
        let conv: Vec<_> = events
            .iter()
            .filter(|e| e.name == "fixpoint.converged")
            .collect();
        assert_eq!(conv.len(), 1);
        assert_eq!(
            conv[0].get("strategy"),
            Some(&traj_obs::Value::Str("gauss_seidel".into()))
        );
        assert!(
            events.iter().any(|e| e.name == "span"
                && e.get("name") == Some(&traj_obs::Value::Str("analysis.fixpoint".into()))),
            "fixpoint span missing"
        );
    }

    #[test]
    fn analyze_flow_single() {
        let set = paper_example();
        let r = analyze_flow(&set, &AnalysisConfig::default(), FlowId(1)).unwrap();
        assert_eq!(r.wcrt, Verdict::Bounded(31));
        assert!(analyze_flow(&set, &AnalysisConfig::default(), FlowId(99)).is_none());
    }
}
