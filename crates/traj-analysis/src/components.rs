//! Component-sharded `Smax` fixed point over a struct-of-arrays arena.
//!
//! # Why sharding is exact
//!
//! Crossing is the only coupling between rows of the fixed point: every
//! window of a flow's skeleton reads `Smax` of the flow itself (`pos_i`)
//! and of one flow crossing its path (`j_idx`/`pos_j`) — nothing else.
//! Over the connected components of the crossing graph the equation
//! system is therefore block-diagonal, and running the monolithic
//! iteration is *exactly* running each component's iteration side by
//! side: a monolithic round restricted to a component's rows reads only
//! that component's cells, so a per-component round with the same
//! schedule (Jacobi's frozen-table apply-after-round, Gauss–Seidel's
//! in-place ascending sweep) produces the same values in the same round.
//! Each component converges to its block of the unique least fixed point
//! independently — converged components stop doing any work while others
//! keep iterating, which the monolithic loop cannot do (its convergence
//! test is global).
//!
//! [`partition`] unions over the *full-prefix* (`k = len`) skeletons:
//! prefix windows arise by clipping full-path crossing segments, so the
//! full prefix's crosser set contains every shorter prefix's — the edge
//! set is a superset of all dependencies any cell can read.
//!
//! # The arena
//!
//! The monolithic hot loop pays three heap allocations per cell
//! evaluation (the materialised window vector, the coalescing map, the
//! event buffer) and reads values through one `Vec` per flow.
//! [`ComponentArena`] flattens a component into contiguous arrays —
//! values, windows with *precomputed flat read indices*, per-cell
//! metadata — plus a CSR **reverse adjacency** (value index → cells
//! reading it) built once at arena time. [`solve`] carries a dirty-cell
//! worklist across Jacobi rounds: applying a changed value pushes
//! exactly its dependent cells for the next round, so a steady-state
//! round costs O(dirty work), not O(cells) scan + O(windows) dirty
//! probes. Evaluation scratch lives in a per-worker thread-local pool
//! reused across cells, rounds, and shards, so a round allocates
//! nothing. Arithmetic, window order, coalescing semantics
//! (first-occurrence merge by `(a, period)`), and the checked-overflow
//! error labels are replicated from [`crate::terms`] verbatim; the
//! differential suite asserts bit-identity against
//! [`crate::ShardMode::Monolithic`].
//!
//! Rounds themselves can fan out across the rayon pool
//! ([`crate::IntraParallel`]): a Jacobi round's evaluations all read the
//! frozen previous table, so the parallel round writes results into a
//! buffer indexed by worklist position and applies them in ascending
//! arena order — the exact serial sequence, bit-identical by
//! construction. [`solve_sharded`] additionally schedules components
//! largest-estimated-cost first so a dominant component no longer
//! serialises the tail of the shard queue behind it.
//!
//! # Error determinism
//!
//! The monolithic loop surfaces the first error in (round, flow index,
//! position) order. Shards run independently to completion or error;
//! [`solve_sharded`] then replays that order: the minimum (round, flow
//! index) error wins, and a divergence reports the highest-indexed cell
//! still changing in the final round — exactly the cell the monolithic
//! `last_changed` would hold. Inside a shard the worklist is sorted
//! ascending before each round, so errors surface in the same
//! (flow, position) order as the monolithic scan, whether the round ran
//! serially or fanned out.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

use rayon::prelude::*;
use traj_model::{Duration, FlowId, FlowSet, NodeId, Tick};

use crate::cache::InterferenceCache;
use crate::config::{AnalysisConfig, FixpointStrategy, IntraParallel, INTRA_PARALLEL_MIN_CELLS};
use crate::report::Verdict;
use crate::smax::SmaxTable;
use crate::telemetry::{RoundTelemetry, ShardTelemetry};
use crate::terms::{sweep_merged, Overflowed, SweepScratch, Window};

/// Connected components of the crossing graph restricted to `universe`,
/// as ascending member lists ordered by first member — a deterministic
/// partition of the in-universe flow indices.
pub(crate) fn partition(
    set: &FlowSet,
    universe: &[bool],
    cache: &InterferenceCache,
) -> Vec<Vec<usize>> {
    let n = set.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (i, _) in universe.iter().enumerate().filter(|(_, in_u)| **in_u) {
        // The full prefix's windows cover every crosser any prefix of
        // this row can read (clipping only drops segments).
        let len = set.flows()[i].path.len();
        for w in &cache.prefix(i, len).windows {
            let (a, b) = (find(&mut parent, i), find(&mut parent, w.j_idx));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, _) in universe.iter().enumerate().filter(|(_, in_u)| **in_u) {
        let r = find(&mut parent, i);
        let ci = *comp_of_root.entry(r).or_insert_with(|| {
            out.push(Vec::new());
            out.len() - 1
        });
        out[ci].push(i);
    }
    out
}

/// One interference window, flattened: the symbolic `Smax` reads of
/// [`crate::cache::WindowSkeleton`] resolved to flat value indices at
/// arena build time, so an evaluation is two array loads and two adds.
struct ArenaWindow {
    base: Duration,
    period: Duration,
    cost: Duration,
    /// Flat index of the owner's `Smax` cell (`pos_i`).
    read_i: usize,
    /// Flat index of the crosser's `Smax` cell (`pos_j`).
    read_j: usize,
}

/// Frozen per-cell structure: everything [`crate::cache::PrefixSkeleton`]
/// holds, plus the incoming link's `Lmax` and the node id for the guard
/// verdict, so an update never touches the flow set.
struct ArenaCell {
    win_lo: usize,
    win_hi: usize,
    busy: Result<Option<Duration>, Overflowed>,
    constant: Duration,
    t_lo: Tick,
    self_window: Window,
    link_lmax: Duration,
    to_node: NodeId,
}

/// One component's rows in struct-of-arrays layout. `vals` mirrors the
/// component's slice of the [`SmaxTable`]; cell `(l, pos)` lives at
/// `vals[row_off[l] + pos]` and its update metadata at
/// `cells[cell_off[l] + pos - 1]` (positions `1..len`).
struct ComponentArena {
    members: Vec<usize>,
    flow_ids: Vec<FlowId>,
    row_off: Vec<usize>,
    path_len: Vec<usize>,
    seeded: Vec<bool>,
    vals: Vec<Duration>,
    windows: Vec<ArenaWindow>,
    cells: Vec<ArenaCell>,
    cell_off: Vec<usize>,
    /// Local row owning each cell (cells are laid out row-major).
    row_of_cell: Vec<u32>,
    /// Flat value index each cell writes: `row_off[row] + pos`.
    write_idx: Vec<u32>,
    /// CSR reverse adjacency: `rev[rev_off[v]..rev_off[v+1]]` lists the
    /// cells holding a window that reads value `v`, deduplicated and
    /// ascending — the worklist propagation edge set.
    rev_off: Vec<u32>,
    rev: Vec<u32>,
}

impl ComponentArena {
    /// `local_of` maps global flow index → local row for *this*
    /// component's members; built once per sharded run (components are
    /// disjoint, so one flat vector serves every arena). `need_rev`
    /// gates the CSR reverse-adjacency construction: only the Jacobi
    /// worklist consults it, and on small components its build cost
    /// rivals the solve itself, so Gauss–Seidel arenas skip it.
    fn build(
        set: &FlowSet,
        cache: &InterferenceCache,
        smax: &SmaxTable,
        seed_rows: &[bool],
        members: &[usize],
        local_of: &[u32],
        need_rev: bool,
    ) -> ComponentArena {
        let rows = members.len();
        let mut row_off = Vec::with_capacity(rows + 1);
        let mut path_len = Vec::with_capacity(rows);
        let mut cell_off = Vec::with_capacity(rows);
        let mut flow_ids = Vec::with_capacity(rows);
        row_off.push(0);
        let mut vals = Vec::new();
        let mut cells_total = 0;
        for &g in members {
            let f = &set.flows()[g];
            flow_ids.push(f.id);
            path_len.push(f.path.len());
            cell_off.push(cells_total);
            cells_total += f.path.len() - 1;
            vals.extend_from_slice(smax.row(g));
            row_off.push(vals.len());
        }
        let mut windows = Vec::new();
        let mut cells = Vec::with_capacity(cells_total);
        let mut row_of_cell = Vec::with_capacity(cells_total);
        let mut write_idx = Vec::with_capacity(cells_total);
        for (l, &g) in members.iter().enumerate() {
            let nodes = set.flows()[g].path.nodes();
            for pos in 1..path_len[l] {
                let sk = cache.prefix(g, pos);
                let win_lo = windows.len();
                for w in &sk.windows {
                    // Every `j_idx` a skeleton reads was unioned into
                    // this component by `partition` (full-prefix
                    // superset), so the local index always resolves.
                    let lj = local_of[w.j_idx] as usize;
                    windows.push(ArenaWindow {
                        base: w.base,
                        period: w.period,
                        cost: w.cost,
                        read_i: row_off[l] + w.pos_i,
                        read_j: row_off[lj] + w.pos_j,
                    });
                }
                cells.push(ArenaCell {
                    win_lo,
                    win_hi: windows.len(),
                    busy: sk.busy,
                    constant: sk.constant,
                    t_lo: sk.t_lo,
                    self_window: sk.self_window,
                    link_lmax: set.network().link_delay(nodes[pos - 1], nodes[pos]).lmax,
                    to_node: nodes[pos],
                });
                row_of_cell.push(l as u32);
                write_idx.push((row_off[l] + pos) as u32);
            }
        }
        // Reverse adjacency, deduplicated per cell with an epoch stamp
        // (a cell typically reads the same value through many windows).
        let nvals = vals.len();
        let (rev_off, rev) = if need_rev {
            let mut deg = vec![0u32; nvals];
            let mut stamp = vec![u32::MAX; nvals];
            for (c, cell) in cells.iter().enumerate() {
                for w in &windows[cell.win_lo..cell.win_hi] {
                    for v in [w.read_i, w.read_j] {
                        if stamp[v] != c as u32 {
                            stamp[v] = c as u32;
                            deg[v] += 1;
                        }
                    }
                }
            }
            let mut rev_off = Vec::with_capacity(nvals + 1);
            rev_off.push(0u32);
            let mut total = 0u32;
            for &d in &deg {
                total += d;
                rev_off.push(total);
            }
            let mut cursor: Vec<u32> = rev_off[..nvals].to_vec();
            let mut rev = vec![0u32; total as usize];
            stamp.fill(u32::MAX);
            for (c, cell) in cells.iter().enumerate() {
                for w in &windows[cell.win_lo..cell.win_hi] {
                    for v in [w.read_i, w.read_j] {
                        if stamp[v] != c as u32 {
                            stamp[v] = c as u32;
                            rev[cursor[v] as usize] = c as u32;
                            cursor[v] += 1;
                        }
                    }
                }
            }
            (rev_off, rev)
        } else {
            // Gauss–Seidel never walks dependents: empty CSR, every
            // `deps_of` slice is empty by construction.
            (vec![0u32; nvals + 1], Vec::new())
        };
        ComponentArena {
            seeded: members.iter().map(|&g| seed_rows[g]).collect(),
            members: members.to_vec(),
            flow_ids,
            row_off,
            path_len,
            vals,
            windows,
            cells,
            cell_off,
            row_of_cell,
            write_idx,
            rev_off,
            rev,
        }
    }

    /// Cells holding a window that reads value `v`.
    #[inline]
    fn deps_of(&self, v: usize) -> &[u32] {
        &self.rev[self.rev_off[v] as usize..self.rev_off[v + 1] as usize]
    }
}

/// Reusable per-worker evaluation scratch: cleared, never reallocated.
#[derive(Default)]
struct Scratch {
    /// Jump-stream buffers of the k-way merge sweep.
    sweep: SweepScratch,
}

thread_local! {
    /// Per-worker scratch pool: one `Scratch` per thread, reused across
    /// cells, rounds, and shards, so steady-state rounds allocate
    /// nothing regardless of which worker evaluates which cell.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// One cell update: materialise alignments from the flat values, sweep,
/// add the link `Lmax`, check the guard. Arithmetic and error order
/// replicate `wcrt_prefix` + `smax_update` exactly. Unlike the
/// monolithic path, the windows are *not* coalesced first: coalescing
/// merges equal-`(a, period)` windows, which is value-preserving (same
/// jump instants, tied events' costs are summed before each evaluation
/// either way), so skipping the hash pass changes nothing but time.
fn eval_cell(
    arena: &ComponentArena,
    cell: &ArenaCell,
    l: usize,
    cfg: &AnalysisConfig,
    scratch: &mut Scratch,
) -> Result<Duration, Verdict> {
    let busy = match cell.busy {
        Ok(Some(b)) => b,
        Ok(None) => {
            return Err(Verdict::unbounded(format!(
                "busy period of flow {} exceeds the {}-tick guard (overload)",
                arena.flow_ids[l], cfg.max_busy_period
            )))
        }
        Err(o) => return Err(Verdict::from(o)),
    };
    // The flow id is reporting-only; the sweep ignores it.
    let flow = arena.flow_ids[l];
    let materialised = arena.windows[cell.win_lo..cell.win_hi]
        .iter()
        .map(|w| Window {
            flow,
            a: arena.vals[w.read_i] + arena.vals[w.read_j] + w.base,
            period: w.period,
            cost: w.cost,
        })
        .chain(std::iter::once(cell.self_window));
    let m = sweep_merged(
        materialised,
        cell.constant,
        cell.t_lo,
        busy,
        &mut scratch.sweep,
    )
    .map_err(Verdict::from)?;
    let val = m.value + cell.link_lmax;
    if val > cfg.max_busy_period {
        return Err(Verdict::unbounded(format!(
            "Smax of flow {} at node {} exceeds the guard",
            arena.flow_ids[l], cell.to_node
        )));
    }
    Ok(val)
}

/// How one shard's solve ended.
enum ShardEnd {
    Converged,
    /// Still changing at the final round; `last` is the last (global
    /// flow index, position) changed in that round's apply order.
    Diverged {
        last: (usize, usize),
    },
    /// First error this shard hit, with the round it surfaced in and the
    /// global flow index of the erroring row.
    Failed {
        round: usize,
        flow_idx: usize,
        verdict: Verdict,
    },
}

struct SolveOut {
    arena: ComponentArena,
    rounds: usize,
    per_round: Vec<RoundTelemetry>,
    parallel_rounds: usize,
    micros: u64,
    end: ShardEnd,
}

/// Whether (and above which worklist size) a Jacobi round fans out
/// across the rayon pool; resolved once per sharded run from
/// [`IntraParallel`] and the live pool width.
#[derive(Clone, Copy)]
struct ParallelPlan {
    min_cells: Option<usize>,
}

impl ParallelPlan {
    fn resolve(cfg: &AnalysisConfig) -> ParallelPlan {
        let min_cells = match cfg.intra_parallel {
            IntraParallel::Never => None,
            IntraParallel::Always => Some(0),
            // A one-thread pool would pay the fork/join for zero overlap.
            IntraParallel::Auto => {
                (rayon::current_num_threads() > 1).then_some(INTRA_PARALLEL_MIN_CELLS)
            }
        };
        ParallelPlan { min_cells }
    }

    #[inline]
    fn fan_out(&self, worklist: usize) -> bool {
        self.min_cells.map(|m| worklist >= m).unwrap_or(false) && worklist > 1
    }
}

/// Iterates one component to its least fixed point with the chosen
/// strategy, mirroring the monolithic round schedule per component.
///
/// Jacobi rounds run a dirty-cell worklist: round 0 holds the seeded
/// rows' cells plus every cell reading a seeded row's value (exactly the
/// monolithic `force` + dirty-read criterion), and applying a changed
/// value pushes its reverse-adjacency dependents for the next round.
/// The worklist is sorted ascending before evaluation, so values,
/// telemetry counts, and error order match the monolithic scan
/// bit-for-bit — warm starts (few seeded rows) and cold starts (all
/// rows) are the same code path, differing only in the initial list.
fn solve(
    mut arena: ComponentArena,
    cfg: &AnalysisConfig,
    chosen: FixpointStrategy,
    plan: ParallelPlan,
) -> SolveOut {
    let start = Instant::now();
    let cells_total = arena.cells.len();
    let jacobi = chosen == FixpointStrategy::Jacobi;
    let mut dirty_cell = vec![false; cells_total];
    let mut cur: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    if jacobi {
        for l in 0..arena.members.len() {
            if !arena.seeded[l] {
                continue;
            }
            let cells = arena.cell_off[l]..arena.cell_off[l] + (arena.path_len[l] - 1);
            for (dirty, c) in dirty_cell[cells.clone()].iter_mut().zip(cells) {
                if !*dirty {
                    *dirty = true;
                    cur.push(c as u32);
                }
            }
            for v in arena.row_off[l]..arena.row_off[l + 1] {
                for &d in arena.deps_of(v) {
                    if !dirty_cell[d as usize] {
                        dirty_cell[d as usize] = true;
                        cur.push(d);
                    }
                }
            }
        }
    }
    let mut updates: Vec<(u32, Duration)> = Vec::new();
    let mut par_results: Vec<Result<Duration, Verdict>> = Vec::new();
    let mut per_round = Vec::new();
    let mut rounds = 0;
    let mut parallel_rounds = 0;
    let mut last_changed: Option<(usize, usize)> = None;
    for round in 0..cfg.max_smax_rounds {
        rounds = round + 1;
        let mut rt = RoundTelemetry {
            round: rounds,
            recomputed: 0,
            skipped: 0,
            changed: 0,
            max_delta: 0,
        };
        let mut round_changed: Option<(usize, usize)> = None;
        let mut err: Option<(usize, Verdict)> = None;
        if jacobi {
            // Frozen-table round over the worklist, ascending arena
            // order — the per-component projection of the monolithic
            // round, errors surfacing in the same (flow, position)
            // order. Values are applied only after every evaluation.
            cur.sort_unstable();
            rt.skipped = cells_total - cur.len();
            updates.clear();
            if plan.fan_out(cur.len()) {
                parallel_rounds += 1;
                let arena_ref = &arena;
                cur.par_iter()
                    .map(|&c| {
                        SCRATCH.with(|s| {
                            let scratch = &mut *s.borrow_mut();
                            eval_cell(
                                arena_ref,
                                &arena_ref.cells[c as usize],
                                arena_ref.row_of_cell[c as usize] as usize,
                                cfg,
                                scratch,
                            )
                        })
                    })
                    .collect_into_vec(&mut par_results);
                for (i, r) in par_results.iter().enumerate() {
                    match r {
                        Ok(v) => {
                            updates.push((cur[i], *v));
                            rt.recomputed += 1;
                        }
                        Err(v) => {
                            // First erroring cell in arena order — the
                            // serial sweep's break point; later results
                            // are discarded.
                            err = Some((arena.row_of_cell[cur[i] as usize] as usize, v.clone()));
                            break;
                        }
                    }
                }
            } else {
                SCRATCH.with(|s| {
                    let scratch = &mut *s.borrow_mut();
                    for &c in &cur {
                        let l = arena.row_of_cell[c as usize] as usize;
                        match eval_cell(&arena, &arena.cells[c as usize], l, cfg, scratch) {
                            Ok(v) => {
                                updates.push((c, v));
                                rt.recomputed += 1;
                            }
                            Err(v) => {
                                err = Some((l, v));
                                break;
                            }
                        }
                    }
                });
            }
            if err.is_none() {
                // Consume this round's marks, then push each changed
                // value's dependents as the next round's worklist.
                for &c in &cur {
                    dirty_cell[c as usize] = false;
                }
                next.clear();
                for &(c, val) in &updates {
                    let idx = arena.write_idx[c as usize] as usize;
                    let old = arena.vals[idx];
                    if old != val {
                        arena.vals[idx] = val;
                        rt.changed += 1;
                        rt.max_delta = rt.max_delta.max(val.saturating_sub(old));
                        let l = arena.row_of_cell[c as usize] as usize;
                        round_changed = Some((l, idx - arena.row_off[l]));
                        for &d in arena.deps_of(idx) {
                            if !dirty_cell[d as usize] {
                                dirty_cell[d as usize] = true;
                                next.push(d);
                            }
                        }
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
        } else {
            // Gauss–Seidel: in-place ascending sweep over every cell,
            // each update immediately visible to the next.
            SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                for c in 0..cells_total {
                    let l = arena.row_of_cell[c] as usize;
                    match eval_cell(&arena, &arena.cells[c], l, cfg, scratch) {
                        Ok(val) => {
                            rt.recomputed += 1;
                            let idx = arena.write_idx[c] as usize;
                            let old = arena.vals[idx];
                            if old != val {
                                arena.vals[idx] = val;
                                round_changed = Some((l, idx - arena.row_off[l]));
                                rt.changed += 1;
                                rt.max_delta = rt.max_delta.max(val.saturating_sub(old));
                            }
                        }
                        Err(v) => {
                            err = Some((l, v));
                            break;
                        }
                    }
                }
            });
        }
        if let Some((l, verdict)) = err {
            return SolveOut {
                end: ShardEnd::Failed {
                    round: rounds,
                    flow_idx: arena.members[l],
                    verdict,
                },
                arena,
                rounds,
                per_round,
                parallel_rounds,
                micros: start.elapsed().as_micros() as u64,
            };
        }
        per_round.push(rt);
        match round_changed {
            None => {
                return SolveOut {
                    end: ShardEnd::Converged,
                    arena,
                    rounds,
                    per_round,
                    parallel_rounds,
                    micros: start.elapsed().as_micros() as u64,
                };
            }
            Some((l, pos)) => last_changed = Some((arena.members[l], pos)),
        }
    }
    let last = last_changed.unwrap_or((0, 0));
    SolveOut {
        end: ShardEnd::Diverged { last },
        arena,
        rounds,
        per_round,
        parallel_rounds,
        micros: start.elapsed().as_micros() as u64,
    }
}

/// Result of a successful sharded solve, for the caller's telemetry.
pub(crate) struct ShardedRun {
    /// Maximum rounds over the shards (what the monolithic loop would
    /// have reported as its round count).
    pub(crate) rounds: usize,
    /// Monolithic-shaped per-round record: shard rounds merged
    /// index-wise (counts summed, deltas maxed).
    pub(crate) per_round: Vec<RoundTelemetry>,
    /// One record per component actually solved, ordered by first
    /// member flow index.
    pub(crate) shards: Vec<ShardTelemetry>,
}

/// Solves every component holding a seeded row (components without one
/// already sit at their block of the standing fixed point — recomputing
/// them would reproduce every value), largest estimated cost first
/// across the rayon pool, then writes the converged values back into
/// `smax`.
pub(crate) fn solve_sharded(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    cache: &InterferenceCache,
    smax: &mut SmaxTable,
    seed_rows: &[bool],
    chosen: FixpointStrategy,
    components: &[Vec<usize>],
) -> Result<ShardedRun, Verdict> {
    struct WorkItem<'m> {
        members: &'m [usize],
        cost: usize,
    }
    let mut work: Vec<WorkItem> = components
        .iter()
        .filter(|m| m.iter().any(|&g| seed_rows[g]))
        .map(|m| WorkItem {
            members: m,
            cost: m.iter().map(|&g| cache.row_cost_estimate(g)).sum(),
        })
        .collect();
    // Largest-estimated-cost first: a dominant component starts
    // immediately instead of serialising the tail of the queue behind
    // it. Ties (and the final telemetry) stay in first-member order.
    work.sort_by(|a, b| {
        b.cost
            .cmp(&a.cost)
            .then_with(|| a.members[0].cmp(&b.members[0]))
    });
    // Shared global→local row index: components partition the universe,
    // so one flat vector serves every arena build (the per-component
    // hash map this replaces dominated small-shard build time).
    let mut local_of = vec![0u32; set.len()];
    for item in &work {
        for (l, &g) in item.members.iter().enumerate() {
            local_of[g] = l as u32;
        }
    }
    let plan = ParallelPlan::resolve(cfg);
    let snapshot: &SmaxTable = smax;
    let local_ref: &[u32] = &local_of;
    let mut outs: Vec<SolveOut> = work
        .par_iter()
        .map(|item| {
            solve(
                ComponentArena::build(
                    set,
                    cache,
                    snapshot,
                    seed_rows,
                    item.members,
                    local_ref,
                    chosen == FixpointStrategy::Jacobi,
                ),
                cfg,
                chosen,
                plan,
            )
        })
        .collect();

    // Errors first, in the monolithic (round, flow index) surfacing
    // order; they pre-empt any other shard's later error or divergence.
    let mut first_err: Option<(usize, usize, Verdict)> = None;
    for o in &outs {
        if let ShardEnd::Failed {
            round,
            flow_idx,
            verdict,
        } = &o.end
        {
            let better = match &first_err {
                None => true,
                Some((r, f, _)) => (*round, *flow_idx) < (*r, *f),
            };
            if better {
                first_err = Some((*round, *flow_idx, verdict.clone()));
            }
        }
    }
    if let Some((_, _, v)) = first_err {
        return Err(v);
    }
    // Divergence: the monolithic `last_changed` is the highest-indexed
    // cell applied in the final round, i.e. the maximum over the
    // still-changing shards.
    let mut worst: Option<(usize, usize)> = None;
    for o in &outs {
        if let ShardEnd::Diverged { last } = o.end {
            worst = Some(match worst {
                None => last,
                Some(w) => w.max(last),
            });
        }
    }
    if let Some((fi, pos)) = worst {
        return Err(Verdict::Diverged {
            rounds: cfg.max_smax_rounds,
            worst_cell: (set.flows()[fi].id, set.flows()[fi].path.nodes()[pos]),
        });
    }

    // Telemetry is surfaced in first-member order whatever schedule the
    // cost sort executed.
    outs.sort_by_key(|o| o.arena.members.first().copied().unwrap_or(0));
    let mut run = ShardedRun {
        rounds: 0,
        per_round: Vec::new(),
        shards: Vec::with_capacity(outs.len()),
    };
    for o in outs {
        run.rounds = run.rounds.max(o.rounds);
        for rt in &o.per_round {
            let i = rt.round - 1;
            if run.per_round.len() <= i {
                run.per_round.push(RoundTelemetry {
                    round: i + 1,
                    recomputed: 0,
                    skipped: 0,
                    changed: 0,
                    max_delta: 0,
                });
            }
            let m = &mut run.per_round[i];
            m.recomputed += rt.recomputed;
            m.skipped += rt.skipped;
            m.changed += rt.changed;
            m.max_delta = m.max_delta.max(rt.max_delta);
        }
        run.shards.push(ShardTelemetry {
            flows: o.arena.members.len(),
            cells: o.arena.cells.len(),
            rounds: o.rounds,
            recomputed: o.per_round.iter().map(|r| r.recomputed).sum(),
            skipped: o.per_round.iter().map(|r| r.skipped).sum(),
            parallel_rounds: o.parallel_rounds,
            solve_micros: o.micros,
        });
        for (l, &g) in o.arena.members.iter().enumerate() {
            smax.set_row(g, &o.arena.vals[o.arena.row_off[l]..o.arena.row_off[l + 1]]);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::wcrt::NoDelta;
    use traj_model::examples::{line_topology, paper_example};

    fn parts_of(set: &FlowSet) -> Vec<Vec<usize>> {
        let cfg = AnalysisConfig::default();
        let universe = vec![true; set.len()];
        let cache = InterferenceCache::build(set, &cfg, &universe, &NoDelta);
        partition(set, &universe, &cache)
    }

    #[test]
    fn paper_example_is_one_component() {
        let set = paper_example();
        let comps = parts_of(&set);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], (0..set.len()).collect::<Vec<_>>());
    }

    #[test]
    fn chained_line_flows_form_one_component() {
        // line_topology flows overlap pairwise along the line: one
        // component even though the first and last flows never meet.
        let set = line_topology(6, 4, 120, 3, 1, 2).unwrap();
        assert_eq!(parts_of(&set).len(), 1);
    }

    #[test]
    fn masked_universe_rows_stay_out_of_every_component() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let mut universe = vec![true; set.len()];
        universe[0] = false;
        let cache = InterferenceCache::build(&set, &cfg, &universe, &NoDelta);
        let comps = partition(&set, &universe, &cache);
        assert!(comps.iter().all(|m| !m.contains(&0)));
        assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), set.len() - 1);
    }

    #[test]
    fn components_are_ordered_with_ascending_members() {
        let set = paper_example();
        let comps = parts_of(&set);
        let firsts: Vec<usize> = comps.iter().map(|m| m[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        for m in &comps {
            assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn arena_reverse_adjacency_is_deduplicated_and_complete() {
        // Every (window read → owning cell) edge must appear exactly
        // once in the CSR lists, whatever the duplication in windows.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let universe = vec![true; set.len()];
        let cache = InterferenceCache::build(&set, &cfg, &universe, &NoDelta);
        let comps = partition(&set, &universe, &cache);
        let seed = crate::smax::SmaxTable::transit(&set).unwrap();
        let seeded = vec![true; set.len()];
        let mut local_of = vec![0u32; set.len()];
        for m in &comps {
            for (l, &g) in m.iter().enumerate() {
                local_of[g] = l as u32;
            }
        }
        for m in &comps {
            let arena = ComponentArena::build(&set, &cache, &seed, &seeded, m, &local_of, true);
            for (c, cell) in arena.cells.iter().enumerate() {
                let mut reads: Vec<usize> = arena.windows[cell.win_lo..cell.win_hi]
                    .iter()
                    .flat_map(|w| [w.read_i, w.read_j])
                    .collect();
                reads.sort_unstable();
                reads.dedup();
                for v in reads {
                    let hits = arena
                        .deps_of(v)
                        .iter()
                        .filter(|&&d| d as usize == c)
                        .count();
                    assert_eq!(hits, 1, "cell {c} listed {hits} times for value {v}");
                }
            }
            // No spurious edges: every listed dependent really reads v.
            for v in 0..arena.vals.len() {
                for &d in arena.deps_of(v) {
                    let cell = &arena.cells[d as usize];
                    assert!(
                        arena.windows[cell.win_lo..cell.win_hi]
                            .iter()
                            .any(|w| w.read_i == v || w.read_j == v),
                        "cell {d} listed for value {v} it never reads"
                    );
                }
            }
        }
    }
}
