//! Component-sharded `Smax` fixed point over a struct-of-arrays arena.
//!
//! # Why sharding is exact
//!
//! Crossing is the only coupling between rows of the fixed point: every
//! window of a flow's skeleton reads `Smax` of the flow itself (`pos_i`)
//! and of one flow crossing its path (`j_idx`/`pos_j`) — nothing else.
//! Over the connected components of the crossing graph the equation
//! system is therefore block-diagonal, and running the monolithic
//! iteration is *exactly* running each component's iteration side by
//! side: a monolithic round restricted to a component's rows reads only
//! that component's cells, so a per-component round with the same
//! schedule (Jacobi's frozen-table apply-after-round, Gauss–Seidel's
//! in-place ascending sweep) produces the same values in the same round.
//! Each component converges to its block of the unique least fixed point
//! independently — converged components stop doing any work while others
//! keep iterating, which the monolithic loop cannot do (its convergence
//! test is global).
//!
//! [`partition`] unions over the *full-prefix* (`k = len`) skeletons:
//! prefix windows arise by clipping full-path crossing segments, so the
//! full prefix's crosser set contains every shorter prefix's — the edge
//! set is a superset of all dependencies any cell can read.
//!
//! # The arena
//!
//! The monolithic hot loop pays three heap allocations per cell
//! evaluation (the materialised window vector, the coalescing map, the
//! event buffer) and reads values through one `Vec` per flow.
//! [`ComponentArena`] flattens a component into contiguous arrays —
//! values, windows with *precomputed flat read indices*, per-cell
//! metadata — and [`solve`] reuses three scratch buffers across every
//! evaluation, so a round is a linear walk with zero allocation.
//! Arithmetic, window order, coalescing semantics (first-occurrence
//! merge by `(a, period)`), and the checked-overflow error labels are
//! replicated from [`crate::terms`] verbatim; the differential suite
//! asserts bit-identity against [`crate::ShardMode::Monolithic`].
//!
//! # Error determinism
//!
//! The monolithic loop surfaces the first error in (round, flow index,
//! position) order. Shards run independently to completion or error;
//! [`solve_sharded`] then replays that order: the minimum (round, flow
//! index) error wins, and a divergence reports the highest-indexed cell
//! still changing in the final round — exactly the cell the monolithic
//! `last_changed` would hold.

use std::collections::HashMap;
use std::time::Instant;

use rayon::prelude::*;
use traj_model::{Duration, FlowId, FlowSet, NodeId, Tick};

use crate::cache::InterferenceCache;
use crate::config::{AnalysisConfig, FixpointStrategy};
use crate::report::Verdict;
use crate::smax::SmaxTable;
use crate::telemetry::{RoundTelemetry, ShardTelemetry};
use crate::terms::{sweep_merged, Overflowed, Window};

/// Connected components of the crossing graph restricted to `universe`,
/// as ascending member lists ordered by first member — a deterministic
/// partition of the in-universe flow indices.
pub(crate) fn partition(
    set: &FlowSet,
    universe: &[bool],
    cache: &InterferenceCache,
) -> Vec<Vec<usize>> {
    let n = set.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (i, _) in universe.iter().enumerate().filter(|(_, in_u)| **in_u) {
        // The full prefix's windows cover every crosser any prefix of
        // this row can read (clipping only drops segments).
        let len = set.flows()[i].path.len();
        for w in &cache.prefix(i, len).windows {
            let (a, b) = (find(&mut parent, i), find(&mut parent, w.j_idx));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, _) in universe.iter().enumerate().filter(|(_, in_u)| **in_u) {
        let r = find(&mut parent, i);
        let ci = *comp_of_root.entry(r).or_insert_with(|| {
            out.push(Vec::new());
            out.len() - 1
        });
        out[ci].push(i);
    }
    out
}

/// One interference window, flattened: the symbolic `Smax` reads of
/// [`crate::cache::WindowSkeleton`] resolved to flat value indices at
/// arena build time, so an evaluation is two array loads and two adds.
struct ArenaWindow {
    base: Duration,
    period: Duration,
    cost: Duration,
    /// Flat index of the owner's `Smax` cell (`pos_i`).
    read_i: usize,
    /// Flat index of the crosser's `Smax` cell (`pos_j`).
    read_j: usize,
}

/// Frozen per-cell structure: everything [`crate::cache::PrefixSkeleton`]
/// holds, plus the incoming link's `Lmax` and the node id for the guard
/// verdict, so an update never touches the flow set.
struct ArenaCell {
    win_lo: usize,
    win_hi: usize,
    busy: Result<Option<Duration>, Overflowed>,
    constant: Duration,
    t_lo: Tick,
    self_window: Window,
    link_lmax: Duration,
    to_node: NodeId,
}

/// One component's rows in struct-of-arrays layout. `vals` mirrors the
/// component's slice of the [`SmaxTable`]; cell `(l, pos)` lives at
/// `vals[row_off[l] + pos]` and its update metadata at
/// `cells[cell_off[l] + pos - 1]` (positions `1..len`).
struct ComponentArena {
    members: Vec<usize>,
    flow_ids: Vec<FlowId>,
    row_off: Vec<usize>,
    path_len: Vec<usize>,
    seeded: Vec<bool>,
    vals: Vec<Duration>,
    windows: Vec<ArenaWindow>,
    cells: Vec<ArenaCell>,
    cell_off: Vec<usize>,
}

impl ComponentArena {
    fn build(
        set: &FlowSet,
        cache: &InterferenceCache,
        smax: &SmaxTable,
        seed_rows: &[bool],
        members: &[usize],
    ) -> ComponentArena {
        let rows = members.len();
        let mut local: HashMap<usize, usize> = HashMap::with_capacity(rows);
        for (l, &g) in members.iter().enumerate() {
            local.insert(g, l);
        }
        let mut row_off = Vec::with_capacity(rows + 1);
        let mut path_len = Vec::with_capacity(rows);
        let mut cell_off = Vec::with_capacity(rows);
        let mut flow_ids = Vec::with_capacity(rows);
        row_off.push(0);
        let mut vals = Vec::new();
        let mut cells_total = 0;
        for &g in members {
            let f = &set.flows()[g];
            flow_ids.push(f.id);
            path_len.push(f.path.len());
            cell_off.push(cells_total);
            cells_total += f.path.len() - 1;
            vals.extend_from_slice(smax.row(g));
            row_off.push(vals.len());
        }
        let mut windows = Vec::new();
        let mut cells = Vec::with_capacity(cells_total);
        for (l, &g) in members.iter().enumerate() {
            let nodes = set.flows()[g].path.nodes();
            for pos in 1..path_len[l] {
                let sk = cache.prefix(g, pos);
                let win_lo = windows.len();
                for w in &sk.windows {
                    // Every `j_idx` a skeleton reads was unioned into
                    // this component by `partition` (full-prefix
                    // superset), so the lookup always resolves.
                    let lj = local[&w.j_idx];
                    windows.push(ArenaWindow {
                        base: w.base,
                        period: w.period,
                        cost: w.cost,
                        read_i: row_off[l] + w.pos_i,
                        read_j: row_off[lj] + w.pos_j,
                    });
                }
                cells.push(ArenaCell {
                    win_lo,
                    win_hi: windows.len(),
                    busy: sk.busy,
                    constant: sk.constant,
                    t_lo: sk.t_lo,
                    self_window: sk.self_window,
                    link_lmax: set.network().link_delay(nodes[pos - 1], nodes[pos]).lmax,
                    to_node: nodes[pos],
                });
            }
        }
        ComponentArena {
            seeded: members.iter().map(|&g| seed_rows[g]).collect(),
            members: members.to_vec(),
            flow_ids,
            row_off,
            path_len,
            vals,
            windows,
            cells,
            cell_off,
        }
    }
}

/// Reusable per-shard evaluation scratch: cleared, never reallocated.
#[derive(Default)]
struct Scratch {
    /// Coalesced windows of the cell under evaluation.
    merged: Vec<Window>,
    /// First-occurrence index by `(a, period)`, mirroring
    /// [`crate::terms::BoundFunction::coalesced`].
    index: HashMap<(Tick, Duration), usize>,
    /// Jump-point events of the sweep.
    events: Vec<(Tick, Duration)>,
}

/// One cell update: materialise alignments from the flat values,
/// coalesce, sweep, add the link `Lmax`, check the guard. Arithmetic
/// and error order replicate `wcrt_prefix` + `smax_update` exactly.
fn eval_cell(
    arena: &ComponentArena,
    cell: &ArenaCell,
    l: usize,
    cfg: &AnalysisConfig,
    scratch: &mut Scratch,
) -> Result<Duration, Verdict> {
    let busy = match cell.busy {
        Ok(Some(b)) => b,
        Ok(None) => {
            return Err(Verdict::unbounded(format!(
                "busy period of flow {} exceeds the {}-tick guard (overload)",
                arena.flow_ids[l], cfg.max_busy_period
            )))
        }
        Err(o) => return Err(Verdict::from(o)),
    };
    scratch.merged.clear();
    scratch.index.clear();
    let push = |merged: &mut Vec<Window>,
                index: &mut HashMap<(Tick, Duration), usize>,
                a: Tick,
                period: Duration,
                cost: Duration| {
        match index.entry((a, period)) {
            std::collections::hash_map::Entry::Occupied(e) => merged[*e.get()].cost += cost,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(merged.len());
                merged.push(Window {
                    // The flow id is reporting-only; the sweep ignores it.
                    flow: arena.flow_ids[l],
                    a,
                    period,
                    cost,
                });
            }
        }
    };
    for w in &arena.windows[cell.win_lo..cell.win_hi] {
        let a = arena.vals[w.read_i] + arena.vals[w.read_j] + w.base;
        push(&mut scratch.merged, &mut scratch.index, a, w.period, w.cost);
    }
    let sw = cell.self_window;
    push(
        &mut scratch.merged,
        &mut scratch.index,
        sw.a,
        sw.period,
        sw.cost,
    );
    let m = sweep_merged(
        &scratch.merged,
        cell.constant,
        cell.t_lo,
        busy,
        &mut scratch.events,
    )
    .map_err(Verdict::from)?;
    let val = m.value + cell.link_lmax;
    if val > cfg.max_busy_period {
        return Err(Verdict::unbounded(format!(
            "Smax of flow {} at node {} exceeds the guard",
            arena.flow_ids[l], cell.to_node
        )));
    }
    Ok(val)
}

/// How one shard's solve ended.
enum ShardEnd {
    Converged,
    /// Still changing at the final round; `last` is the last (global
    /// flow index, position) changed in that round's apply order.
    Diverged {
        last: (usize, usize),
    },
    /// First error this shard hit, with the round it surfaced in and the
    /// global flow index of the erroring row.
    Failed {
        round: usize,
        flow_idx: usize,
        verdict: Verdict,
    },
}

struct SolveOut {
    arena: ComponentArena,
    rounds: usize,
    per_round: Vec<RoundTelemetry>,
    micros: u64,
    end: ShardEnd,
}

/// Iterates one component to its least fixed point with the chosen
/// strategy, mirroring the monolithic round schedule per component.
fn solve(mut arena: ComponentArena, cfg: &AnalysisConfig, chosen: FixpointStrategy) -> SolveOut {
    let start = Instant::now();
    let rows = arena.members.len();
    let jacobi = chosen == FixpointStrategy::Jacobi;
    let mut dirty = vec![false; arena.vals.len()];
    for l in 0..rows {
        if arena.seeded[l] {
            dirty[arena.row_off[l]..arena.row_off[l + 1]].fill(true);
        }
    }
    let mut scratch = Scratch::default();
    let mut updates: Vec<(usize, usize, Duration)> = Vec::new();
    let mut per_round = Vec::new();
    let mut rounds = 0;
    let mut last_changed: Option<(usize, usize)> = None;
    for round in 0..cfg.max_smax_rounds {
        rounds = round + 1;
        let mut rt = RoundTelemetry {
            round: rounds,
            recomputed: 0,
            skipped: 0,
            changed: 0,
            max_delta: 0,
        };
        let mut round_changed: Option<(usize, usize)> = None;
        let mut err: Option<(usize, Verdict)> = None;
        if jacobi {
            // Frozen-table round: evaluate row-major against the
            // pre-round values, apply afterwards — the per-component
            // projection of the parallel monolithic round, errors
            // surfacing in the same (flow, position) order.
            updates.clear();
            'jrows: for l in 0..rows {
                let forced = round == 0 && arena.seeded[l];
                for pos in 1..arena.path_len[l] {
                    let cell = &arena.cells[arena.cell_off[l] + pos - 1];
                    if !forced
                        && !arena.windows[cell.win_lo..cell.win_hi]
                            .iter()
                            .any(|w| dirty[w.read_i] || dirty[w.read_j])
                    {
                        rt.skipped += 1;
                        continue;
                    }
                    match eval_cell(&arena, cell, l, cfg, &mut scratch) {
                        Ok(v) => {
                            updates.push((l, pos, v));
                            rt.recomputed += 1;
                        }
                        Err(v) => {
                            err = Some((l, v));
                            break 'jrows;
                        }
                    }
                }
            }
            if err.is_none() {
                dirty.fill(false);
                for &(l, pos, val) in &updates {
                    let idx = arena.row_off[l] + pos;
                    let old = arena.vals[idx];
                    if old != val {
                        arena.vals[idx] = val;
                        dirty[idx] = true;
                        round_changed = Some((l, pos));
                        rt.changed += 1;
                        rt.max_delta = rt.max_delta.max(val.saturating_sub(old));
                    }
                }
            }
        } else {
            // Gauss–Seidel: in-place ascending sweep over every row,
            // each update immediately visible to the next.
            'grows: for l in 0..rows {
                for pos in 1..arena.path_len[l] {
                    let cell = &arena.cells[arena.cell_off[l] + pos - 1];
                    match eval_cell(&arena, cell, l, cfg, &mut scratch) {
                        Ok(val) => {
                            rt.recomputed += 1;
                            let idx = arena.row_off[l] + pos;
                            let old = arena.vals[idx];
                            if old != val {
                                arena.vals[idx] = val;
                                round_changed = Some((l, pos));
                                rt.changed += 1;
                                rt.max_delta = rt.max_delta.max(val.saturating_sub(old));
                            }
                        }
                        Err(v) => {
                            err = Some((l, v));
                            break 'grows;
                        }
                    }
                }
            }
        }
        if let Some((l, verdict)) = err {
            return SolveOut {
                end: ShardEnd::Failed {
                    round: rounds,
                    flow_idx: arena.members[l],
                    verdict,
                },
                arena,
                rounds,
                per_round,
                micros: start.elapsed().as_micros() as u64,
            };
        }
        per_round.push(rt);
        match round_changed {
            None => {
                return SolveOut {
                    end: ShardEnd::Converged,
                    arena,
                    rounds,
                    per_round,
                    micros: start.elapsed().as_micros() as u64,
                };
            }
            Some((l, pos)) => last_changed = Some((arena.members[l], pos)),
        }
    }
    let last = last_changed.unwrap_or((0, 0));
    SolveOut {
        end: ShardEnd::Diverged { last },
        arena,
        rounds,
        per_round,
        micros: start.elapsed().as_micros() as u64,
    }
}

/// Result of a successful sharded solve, for the caller's telemetry.
pub(crate) struct ShardedRun {
    /// Maximum rounds over the shards (what the monolithic loop would
    /// have reported as its round count).
    pub(crate) rounds: usize,
    /// Monolithic-shaped per-round record: shard rounds merged
    /// index-wise (counts summed, deltas maxed).
    pub(crate) per_round: Vec<RoundTelemetry>,
    /// One record per component actually solved.
    pub(crate) shards: Vec<ShardTelemetry>,
}

/// Solves every component holding a seeded row (components without one
/// already sit at their block of the standing fixed point — recomputing
/// them would reproduce every value), in parallel, then writes the
/// converged values back into `smax`.
pub(crate) fn solve_sharded(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    cache: &InterferenceCache,
    smax: &mut SmaxTable,
    seed_rows: &[bool],
    chosen: FixpointStrategy,
    components: &[Vec<usize>],
) -> Result<ShardedRun, Verdict> {
    let work: Vec<&Vec<usize>> = components
        .iter()
        .filter(|m| m.iter().any(|&g| seed_rows[g]))
        .collect();
    let snapshot: &SmaxTable = smax;
    let outs: Vec<SolveOut> = work
        .par_iter()
        .map(|members| {
            solve(
                ComponentArena::build(set, cache, snapshot, seed_rows, members),
                cfg,
                chosen,
            )
        })
        .collect();

    // Errors first, in the monolithic (round, flow index) surfacing
    // order; they pre-empt any other shard's later error or divergence.
    let mut first_err: Option<(usize, usize, Verdict)> = None;
    for o in &outs {
        if let ShardEnd::Failed {
            round,
            flow_idx,
            verdict,
        } = &o.end
        {
            let better = match &first_err {
                None => true,
                Some((r, f, _)) => (*round, *flow_idx) < (*r, *f),
            };
            if better {
                first_err = Some((*round, *flow_idx, verdict.clone()));
            }
        }
    }
    if let Some((_, _, v)) = first_err {
        return Err(v);
    }
    // Divergence: the monolithic `last_changed` is the highest-indexed
    // cell applied in the final round, i.e. the maximum over the
    // still-changing shards.
    let mut worst: Option<(usize, usize)> = None;
    for o in &outs {
        if let ShardEnd::Diverged { last } = o.end {
            worst = Some(match worst {
                None => last,
                Some(w) => w.max(last),
            });
        }
    }
    if let Some((fi, pos)) = worst {
        return Err(Verdict::Diverged {
            rounds: cfg.max_smax_rounds,
            worst_cell: (set.flows()[fi].id, set.flows()[fi].path.nodes()[pos]),
        });
    }

    let mut run = ShardedRun {
        rounds: 0,
        per_round: Vec::new(),
        shards: Vec::with_capacity(outs.len()),
    };
    for o in outs {
        run.rounds = run.rounds.max(o.rounds);
        for rt in &o.per_round {
            let i = rt.round - 1;
            if run.per_round.len() <= i {
                run.per_round.push(RoundTelemetry {
                    round: i + 1,
                    recomputed: 0,
                    skipped: 0,
                    changed: 0,
                    max_delta: 0,
                });
            }
            let m = &mut run.per_round[i];
            m.recomputed += rt.recomputed;
            m.skipped += rt.skipped;
            m.changed += rt.changed;
            m.max_delta = m.max_delta.max(rt.max_delta);
        }
        run.shards.push(ShardTelemetry {
            flows: o.arena.members.len(),
            cells: o.arena.cells.len(),
            rounds: o.rounds,
            solve_micros: o.micros,
        });
        for (l, &g) in o.arena.members.iter().enumerate() {
            smax.set_row(g, &o.arena.vals[o.arena.row_off[l]..o.arena.row_off[l + 1]]);
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::wcrt::NoDelta;
    use traj_model::examples::{line_topology, paper_example};

    fn parts_of(set: &FlowSet) -> Vec<Vec<usize>> {
        let cfg = AnalysisConfig::default();
        let universe = vec![true; set.len()];
        let cache = InterferenceCache::build(set, &cfg, &universe, &NoDelta);
        partition(set, &universe, &cache)
    }

    #[test]
    fn paper_example_is_one_component() {
        let set = paper_example();
        let comps = parts_of(&set);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], (0..set.len()).collect::<Vec<_>>());
    }

    #[test]
    fn chained_line_flows_form_one_component() {
        // line_topology flows overlap pairwise along the line: one
        // component even though the first and last flows never meet.
        let set = line_topology(6, 4, 120, 3, 1, 2).unwrap();
        assert_eq!(parts_of(&set).len(), 1);
    }

    #[test]
    fn masked_universe_rows_stay_out_of_every_component() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let mut universe = vec![true; set.len()];
        universe[0] = false;
        let cache = InterferenceCache::build(&set, &cfg, &universe, &NoDelta);
        let comps = partition(&set, &universe, &cache);
        assert!(comps.iter().all(|m| !m.contains(&0)));
        assert_eq!(comps.iter().map(Vec::len).sum::<usize>(), set.len() - 1);
    }

    #[test]
    fn components_are_ordered_with_ascending_members() {
        let set = paper_example();
        let comps = parts_of(&set);
        let firsts: Vec<usize> = comps.iter().map(|m| m[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        for m in &comps {
            assert!(m.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
