//! Retained pre-cache reference implementation of the plain FIFO
//! analysis (Property 2), kept verbatim in behaviour *and* in cost
//! profile: every `Smax` round reassembles each bound function from
//! scratch — crossing segments recomputed per call, `M` and `Smin`
//! terms re-derived, busy periods re-iterated — exactly as the analyzer
//! did before the [`crate::cache`] module existed.
//!
//! Two consumers:
//!
//! * the differential suites (`tests/equivalence.rs`, proptests) assert
//!   the cached analyzer's bounds are bit-identical to this one on every
//!   input and configuration;
//! * the `fixpoint_perf` benchmark measures the cached analyzer's
//!   speedup against it.
//!
//! Only the all-flows FIFO universe with `δ = 0` is reproduced here —
//! that is what the seed's `analyze_all` did; the EF variant goes
//! through the cached engine in both implementations.

use traj_model::{Duration, FlowSet, Path, SporadicFlow};

use crate::config::{AnalysisConfig, SmaxMode};
use crate::jitter::jitter_bound;
use crate::report::{FlowReport, SetReport, Verdict};
use crate::smax::SmaxTable;
use crate::terms::{BoundFunction, Window};
use crate::wcrt::segment_points;

/// The pre-cache analysis engine: sequential Gauss–Seidel `Smax` fixed
/// point, no interference-structure reuse, memo-bypassing path
/// relations.
pub struct ReferenceAnalyzer<'a> {
    set: &'a FlowSet,
    cfg: &'a AnalysisConfig,
    smax: SmaxTable,
    rounds: usize,
}

impl<'a> ReferenceAnalyzer<'a> {
    /// Builds the engine and iterates the fixed point (when the mode
    /// asks for it), like the historical `Analyzer::new`.
    pub fn new(set: &'a FlowSet, cfg: &'a AnalysisConfig) -> Result<Self, Verdict> {
        let mut an = ReferenceAnalyzer {
            set,
            cfg,
            smax: SmaxTable::transit(set)?,
            rounds: 0,
        };
        if cfg.smax_mode == SmaxMode::RecursivePrefix {
            an.fixpoint_smax()?;
        }
        Ok(an)
    }

    /// Rounds the fixed point took (0 under `TransitOnly`).
    pub fn smax_rounds(&self) -> usize {
        self.rounds
    }

    /// Worst-case end-to-end response-time bound of one flow.
    pub fn wcrt(&self, flow_idx: usize) -> Verdict {
        self.wcrt_prefix(flow_idx, self.set.flows()[flow_idx].path.len())
    }

    fn wcrt_prefix(&self, flow_idx: usize, k: usize) -> Verdict {
        let f = &self.set.flows()[flow_idx];
        // `k` ranges over 1..=len by construction; the fallback is inert.
        let prefix = f.path.prefix_len(k).unwrap_or_else(|| f.path.clone());
        let bf = self.bound_function(flow_idx, &prefix);
        match bf.maximise(self.cfg.max_busy_period) {
            Ok(Some(m)) => Verdict::Bounded(m.value),
            Ok(None) => Verdict::unbounded(format!(
                "busy period of flow {} exceeds the {}-tick guard (overload)",
                f.id, self.cfg.max_busy_period
            )),
            Err(o) => Verdict::from(o),
        }
    }

    /// Property 1's bound function, assembled from scratch on every call
    /// with the memo-bypassing path relations.
    fn bound_function(&self, flow_idx: usize, prefix: &Path) -> BoundFunction {
        let set = self.set;
        let fi = &set.flows()[flow_idx];

        let mut windows = Vec::new();
        for (j_idx, fj) in set.flows().iter().enumerate() {
            if j_idx == flow_idx || !set.crosses(fj, prefix) {
                continue;
            }
            for segment in set.crossing_segments_uncached(fj, prefix) {
                let cost = segment
                    .nodes
                    .iter()
                    .map(|&h| fj.cost_at(h))
                    .max()
                    .unwrap_or(0);
                for (fji, fij) in segment_points(self.cfg, &segment, prefix) {
                    let a = self.smax.get(set, flow_idx, fji).unwrap_or(0)
                        - set.smin(fj, fji, self.cfg.smin_mode).unwrap_or(0)
                        - self.m_term_uncached(prefix, fij).unwrap_or(0)
                        + self.smax.get(set, j_idx, fij).unwrap_or(0)
                        + fj.jitter;
                    windows.push(Window {
                        flow: fj.id,
                        a,
                        period: fj.period,
                        cost,
                    });
                }
            }
        }
        let trunc = fi.truncated(prefix.len()).unwrap_or_else(|| fi.clone());
        windows.push(Window {
            flow: fi.id,
            a: fi.jitter,
            period: fi.period,
            cost: trunc.max_cost(),
        });

        let slow = trunc.slow_node();
        let mut constant = 0;
        for &h in prefix.nodes() {
            if h != slow {
                constant += self.max_samedir_cost_uncached(prefix, h);
            }
        }
        for (a, b) in prefix.links() {
            constant += set.network().link_delay(a, b).lmax;
        }
        BoundFunction {
            windows,
            constant,
            t_lo: -fi.jitter,
        }
    }

    /// `Mᵢʰ` recomputed with memo-bypassing segment lookups (the
    /// historical cost profile of `FlowSet::m_term_filtered`).
    fn m_term_uncached(&self, path: &Path, node: traj_model::NodeId) -> Option<Duration> {
        use traj_model::{CrossDirection, MinConvention};
        let set = self.set;
        let idx = path.index_of(node)?;
        let samedir_here = |j: &&SporadicFlow, here: traj_model::NodeId| {
            set.segment_direction_at_uncached(j, path, here) == Some(CrossDirection::Same)
        };
        let mut s = 0;
        for k in 0..idx {
            let here = path.nodes()[k];
            let next = path.nodes()[k + 1];
            let min_cost = match self.cfg.min_convention {
                MinConvention::Visiting => set
                    .flows()
                    .iter()
                    .filter(|j| samedir_here(j, here))
                    .map(|j| j.cost_at(here))
                    .min()
                    .unwrap_or(0),
                MinConvention::ZeroConvention => set
                    .flows()
                    .iter()
                    .filter(|j| set.crosses(j, path) && set.same_direction(j, path))
                    .map(|j| j.cost_at(here))
                    .min()
                    .unwrap_or(0),
                MinConvention::EdgeTraversing => set
                    .flows()
                    .iter()
                    .filter(|j| samedir_here(j, here) && j.path.suc(here) == Some(next))
                    .map(|j| j.cost_at(here))
                    .min()
                    .unwrap_or(0),
            };
            s += min_cost + set.network().link_delay(here, next).lmin;
        }
        Some(s)
    }

    /// `max C` over same-direction flows at `node`, memo-bypassing.
    fn max_samedir_cost_uncached(&self, path: &Path, node: traj_model::NodeId) -> Duration {
        use traj_model::CrossDirection;
        self.set
            .flows()
            .iter()
            .filter(|j| {
                self.set.segment_direction_at_uncached(j, path, node) == Some(CrossDirection::Same)
            })
            .map(|j| j.cost_at(node))
            .max()
            .unwrap_or(0)
    }

    /// The historical sequential in-place (Gauss–Seidel) fixed point.
    fn fixpoint_smax(&mut self) -> Result<(), Verdict> {
        let mut last_changed: Option<(usize, usize)> = None;
        for round in 0..self.cfg.max_smax_rounds {
            self.rounds = round + 1;
            let mut changed = false;
            for fi in 0..self.set.len() {
                let path = self.set.flows()[fi].path.clone();
                for pos in 1..path.len() {
                    let r = match self.wcrt_prefix(fi, pos) {
                        Verdict::Bounded(r) => r,
                        u => return Err(u),
                    };
                    let from = path.nodes()[pos - 1];
                    let to = path.nodes()[pos];
                    let val = r + self.set.network().link_delay(from, to).lmax;
                    if val > self.cfg.max_busy_period {
                        return Err(Verdict::unbounded(format!(
                            "Smax of flow {} at node {} exceeds the guard",
                            self.set.flows()[fi].id,
                            to
                        )));
                    }
                    if self.smax.set(fi, pos, val) {
                        changed = true;
                        last_changed = Some((fi, pos));
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
        let (fi, pos) = last_changed.unwrap_or((0, 0));
        Err(Verdict::Diverged {
            rounds: self.rounds,
            worst_cell: (
                self.set.flows()[fi].id,
                self.set.flows()[fi].path.nodes()[pos],
            ),
        })
    }
}

/// The seed's `analyze_all`, sequential flavour: the pre-cache plain
/// FIFO analysis of every flow.
pub fn analyze_all_reference(set: &FlowSet, cfg: &AnalysisConfig) -> SetReport {
    match ReferenceAnalyzer::new(set, cfg) {
        Ok(an) => SetReport::new(
            (0..set.len())
                .map(|i| {
                    let f = &set.flows()[i];
                    let wcrt = an.wcrt(i);
                    let jitter = wcrt.value().map(|r| jitter_bound(set, f, r));
                    FlowReport {
                        flow: f.id,
                        name: f.name.clone(),
                        wcrt,
                        jitter,
                        deadline: f.deadline,
                    }
                })
                .collect(),
        ),
        Err(verdict) => SetReport::new(
            set.flows()
                .iter()
                .map(|f| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: verdict.clone(),
                    jitter: None,
                    deadline: f.deadline,
                })
                .collect(),
        ),
    }
}

/// [`analyze_all_reference`] with [`crate::FixpointTelemetry`] attached:
/// the engine [`crate::analyze_all`] routes small sets to when
/// [`crate::FixpointStrategy::Auto`] resolves to
/// [`crate::FixpointStrategy::Reference`]. The reference sweep has no
/// per-round instrumentation (it predates the telemetry layer), so
/// `per_round` is empty; the aggregate numbers are honest.
pub(crate) fn analyze_all_reference_tracked(set: &FlowSet, cfg: &AnalysisConfig) -> SetReport {
    use crate::config::FixpointStrategy;
    use crate::telemetry::FixpointTelemetry;
    match ReferenceAnalyzer::new(set, cfg) {
        Ok(an) => {
            let telemetry = FixpointTelemetry {
                requested: cfg.fixpoint,
                chosen: FixpointStrategy::Reference,
                auto_selected: cfg.fixpoint == FixpointStrategy::Auto,
                flows: set.len(),
                cells: set
                    .flows()
                    .iter()
                    .map(|f| f.path.len().saturating_sub(1))
                    .sum(),
                rounds: an.smax_rounds(),
                converged: true,
                per_round: Vec::new(),
                components: 0,
                largest_component: 0,
                shards: Vec::new(),
            };
            SetReport::new(
                (0..set.len())
                    .map(|i| {
                        let f = &set.flows()[i];
                        let wcrt = an.wcrt(i);
                        let jitter = wcrt.value().map(|r| jitter_bound(set, f, r));
                        FlowReport {
                            flow: f.id,
                            name: f.name.clone(),
                            wcrt,
                            jitter,
                            deadline: f.deadline,
                        }
                    })
                    .collect(),
            )
            .with_telemetry(telemetry)
        }
        Err(verdict) => SetReport::new(
            set.flows()
                .iter()
                .map(|f| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: verdict.clone(),
                    jitter: None,
                    deadline: f.deadline,
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_all;
    use traj_model::examples::paper_example;

    #[test]
    fn reference_reproduces_paper_example_bounds() {
        let set = paper_example();
        let r = analyze_all_reference(&set, &AnalysisConfig::default());
        assert_eq!(
            r.bounds(),
            vec![Some(31), Some(37), Some(47), Some(47), Some(40)]
        );
    }

    #[test]
    fn reference_and_cached_agree_on_every_config_corner() {
        let set = paper_example();
        for cfg in crate::config_grid() {
            let naive = analyze_all_reference(&set, &cfg);
            let cached = analyze_all(&set, &cfg);
            assert_eq!(naive.bounds(), cached.bounds(), "cfg {cfg:?}");
        }
    }
}
