//! Definition 2: end-to-end jitter bound.
//!
//! The end-to-end jitter of `τᵢ` is the difference between its maximum and
//! minimum end-to-end response times:
//! `Rᵢ − ( Σ_{h∈Pᵢ} Cᵢʰ + Σ_{links} Lmin )`.

use traj_model::{Duration, FlowSet, SporadicFlow};

/// Minimum end-to-end response time of a flow: every node idle, every link
/// at its minimum delay.
pub fn min_response(set: &FlowSet, flow: &SporadicFlow) -> Duration {
    let mut r = flow.total_cost();
    for (a, b) in flow.path.links() {
        r += set.network().link_delay(a, b).lmin;
    }
    r
}

/// Definition 2: jitter bound given a worst-case response-time bound.
pub fn jitter_bound(set: &FlowSet, flow: &SporadicFlow, wcrt: Duration) -> Duration {
    (wcrt - min_response(set, flow)).max(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_all, AnalysisConfig};
    use traj_model::examples::paper_example;

    #[test]
    fn min_response_on_paper_example() {
        let set = paper_example();
        // flow 1: 4 nodes * 4 + 3 links * 1
        assert_eq!(min_response(&set, &set.flows()[0]), 19);
        // flow 3: 6 nodes * 4 + 5 links * 1
        assert_eq!(min_response(&set, &set.flows()[2]), 29);
    }

    #[test]
    fn jitter_equals_wcrt_minus_floor() {
        let set = paper_example();
        let report = analyze_all(&set, &AnalysisConfig::default());
        let r1 = report.per_flow()[0].clone();
        assert_eq!(r1.wcrt.value(), Some(31));
        assert_eq!(r1.jitter, Some(31 - 19));
    }

    #[test]
    fn jitter_is_clamped_non_negative() {
        let set = paper_example();
        let f = &set.flows()[0];
        assert_eq!(jitter_bound(&set, f, 5), 0);
    }
}
