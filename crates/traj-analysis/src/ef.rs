//! The Expedited Forwarding application (paper §6): Lemma 4's
//! non-preemption delay `δᵢ` and Property 3's EF response-time bound.
//!
//! In a DiffServ router the EF class is served at the highest fixed
//! priority, FIFO within the class, and packet transmission is
//! non-preemptive: an EF packet arriving while a lower-priority (AF /
//! best-effort) packet is being transmitted waits for its completion. On
//! each node this blocking is at most one residual lower-priority packet;
//! Lemma 4 bounds the *accumulated* effect along the path, distinguishing
//! where the blocking packet can come from.

use traj_model::{CrossDirection, Duration, FlowSet, Path, SporadicFlow};

use crate::config::AnalysisConfig;
use crate::jitter::jitter_bound;
use crate::report::{FlowReport, SetReport, Verdict};
use crate::wcrt::{Analyzer, DeltaProvider};

/// Lemma 4: maximum non-preemption delay suffered by a packet of the EF
/// flow `flow` along `prefix` (a prefix of its path).
///
/// With `maxⱼ` ranging over non-EF flows and `(x)⁺ = max(0, x)`:
///
/// * on the first node: `( max_{first_{j,i} = firstᵢ} C_j^{firstᵢ} − 1 )⁺`;
/// * on each later node `h`, the largest of three cases, clamped at 0:
///   1. `h` is the first node of `Pᵢ` visited by `τⱼ`: `C_jʰ − 1`;
///   2. `τⱼ` already crossed `Pᵢ` before `h` in the *reverse* direction:
///      `C_jʰ − 1`;
///   3. `τⱼ` travels *with* `τᵢ` (same direction): the blocker left the
///      previous node no earlier than the EF packet, so only
///      `C_jʰ − Cᵢ^{preᵢ(h)} + Lmax − Lmin` remains (and this case only
///      exists when non-EF flows exist at all: the `1_α` indicator).
pub fn nonpreemption_delta(set: &FlowSet, flow: &SporadicFlow, prefix: &Path) -> Duration {
    let non_ef: Vec<&SporadicFlow> = set.non_ef_flows().collect();
    if non_ef.is_empty() {
        return 0;
    }
    let first = prefix.first();
    let mut delta: Duration = 0;

    // First node: only flows entering the path at the ingress (in their
    // own visiting order) can block there. Segment-aware: a flow may
    // cross the path in several segments (Assumption 1 reduction).
    let first_blocker = non_ef
        .iter()
        .filter(|j| {
            set.crossing_segments(j, prefix)
                .iter()
                .any(|seg| seg.first_in_crosser_order() == first)
        })
        .map(|j| j.cost_at(first))
        .max()
        .unwrap_or(0);
    delta += (first_blocker - 1).max(0);

    for &h in &prefix.nodes()[1..] {
        let mut candidates: Vec<Duration> = Vec::new();
        for j in &non_ef {
            for seg in set.crossing_segments(j, prefix) {
                if !seg.contains(h) {
                    continue;
                }
                if seg.first_in_crosser_order() == h {
                    // Case 1: fresh blocker entering the path at h (also
                    // covers re-entries after leaving the path).
                    candidates.push(j.cost_at(h) - 1);
                } else {
                    match seg.direction {
                        CrossDirection::Reverse => {
                            // Case 2: reverse traveller re-blocking
                            // downstream.
                            candidates.push(j.cost_at(h) - 1);
                        }
                        CrossDirection::Same => {
                            // Case 3: co-traveller; 1_α = 1 since non-EF
                            // flows exist. `h` ranges over nodes[1..], so
                            // a predecessor always exists.
                            let Some(pre) = prefix.pre(h) else { continue };
                            let link = set.network().link_delay(pre, h);
                            candidates
                                .push(j.cost_at(h) - flow.cost_at(pre) + link.lmax - link.lmin);
                        }
                    }
                }
            }
        }
        delta += candidates.into_iter().max().unwrap_or(0).max(0);
    }
    delta
}

/// [`DeltaProvider`] wiring Lemma 4 into the trajectory engine.
pub struct EfDelta;

impl DeltaProvider for EfDelta {
    fn delta(&self, set: &FlowSet, flow_idx: usize, prefix: &Path) -> Duration {
        nonpreemption_delta(set, &set.flows()[flow_idx], prefix)
    }
}

/// Property 3: worst-case end-to-end response times of the EF flows.
///
/// The FIFO interference universe is restricted to EF flows; non-EF flows
/// only contribute through `δᵢ`. Returns one report per **EF** flow, in
/// flow-set order.
pub fn analyze_ef(set: &FlowSet, cfg: &AnalysisConfig) -> SetReport {
    let universe: Vec<bool> = set.flows().iter().map(|f| f.class.is_ef()).collect();
    match Analyzer::with_universe_and_delta(set, cfg, universe, EfDelta) {
        Ok(an) => ef_report(set, &an),
        Err(verdict) => ef_error_report(set, &verdict),
    }
}

/// Indices of the EF flows, in flow-set order — the rows an EF report
/// covers. Shared by the cold and incremental paths so their outputs
/// stay index-aligned verbatim.
pub(crate) fn ef_indices(set: &FlowSet) -> Vec<usize> {
    (0..set.len())
        .filter(|&i| set.flows()[i].class.is_ef())
        .collect()
}

/// Property 3's per-EF-flow report off a converged analyzer. Used by
/// both [`analyze_ef`] and the warm-start path in [`crate::incremental`]
/// so the two assemble bit-identical reports.
pub(crate) fn ef_report<D: DeltaProvider>(set: &FlowSet, an: &Analyzer<'_, D>) -> SetReport {
    SetReport::new(
        ef_indices(set)
            .into_iter()
            .map(|i| {
                let f = &set.flows()[i];
                let wcrt = an.wcrt(i);
                let jitter = wcrt.value().map(|r| jitter_bound(set, f, r));
                FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt,
                    jitter,
                    deadline: f.deadline,
                }
            })
            .collect(),
    )
    .with_telemetry(an.telemetry().clone())
}

/// The analysis-failed shape of an EF report: the typed verdict
/// replicated onto every EF flow, no jitter, no telemetry.
pub(crate) fn ef_error_report(set: &FlowSet, verdict: &Verdict) -> SetReport {
    SetReport::new(
        ef_indices(set)
            .into_iter()
            .map(|i| {
                let f = &set.flows()[i];
                FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: verdict.clone(),
                    jitter: None,
                    deadline: f.deadline,
                }
            })
            .collect(),
    )
}

/// Convenience: the plain-FIFO bounds of the EF flows when no other class
/// exists, used to quantify the cost of non-preemption. Empty when the
/// set has no EF flows (the EF-only subset is not a valid flow set).
pub fn ef_penalty(set: &FlowSet, cfg: &AnalysisConfig) -> Vec<(Verdict, Verdict)> {
    let ef_only: Vec<SporadicFlow> = set.ef_flows().cloned().collect();
    let pure = match FlowSet::new(set.network().clone(), ef_only) {
        Ok(p) => p,
        Err(_) => return Vec::new(),
    };
    let base = crate::analyze_all(&pure, cfg);
    let with_np = analyze_ef(set, cfg);
    base.per_flow()
        .iter()
        .zip(with_np.per_flow())
        .map(|(a, b)| (a.wcrt.clone(), b.wcrt.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{paper_example, paper_example_with_best_effort};
    use traj_model::FlowId;

    #[test]
    fn delta_is_zero_without_lower_priority_traffic() {
        let set = paper_example();
        for f in set.flows() {
            assert_eq!(nonpreemption_delta(&set, f, &f.path), 0);
        }
    }

    #[test]
    fn delta_grows_with_blocker_size() {
        let small = paper_example_with_best_effort(2).unwrap();
        let large = paper_example_with_best_effort(40).unwrap();
        for (fs, fl) in small.ef_flows().zip(large.ef_flows()) {
            let ds = nonpreemption_delta(&small, fs, &fs.path);
            let dl = nonpreemption_delta(&large, fl, &fl.path);
            assert!(dl > ds, "flow {}: {} !> {}", fs.id, dl, ds);
        }
    }

    #[test]
    fn delta_first_node_case() {
        // P1 = [1,3,4,5]. Its BE twin shares the whole path (same
        // direction, same ingress): (C_be - 1)+ at node 1. The BE twins of
        // P3/P4/P5 first cross P1 at node 3: case 1 there, (C_be - 1)+.
        // Nodes 4 and 5 only see co-travelling blockers: case 3,
        // (C_be - C_1 + Lmax - Lmin)+ = 5.
        let set = paper_example_with_best_effort(9).unwrap();
        let f1 = set.flow(FlowId(1)).unwrap();
        let d = nonpreemption_delta(&set, f1, &f1.path);
        assert_eq!(d, (9 - 1) + (9 - 1) + (9 - 4) + (9 - 4));
    }

    #[test]
    fn small_be_packets_vanish_in_case3() {
        // C_be = 3 < C_i = 4 and Lmax = Lmin: case 3 clamps to 0; what
        // remains is the ingress blocking (node 1) and the fresh entry of
        // the P3/P4/P5 twins at node 3 (case 1).
        let set = paper_example_with_best_effort(3).unwrap();
        let f1 = set.flow(FlowId(1)).unwrap();
        assert_eq!(nonpreemption_delta(&set, f1, &f1.path), (3 - 1) + (3 - 1));
    }

    #[test]
    fn property3_reduces_to_property2_without_cross_traffic() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let p2 = crate::analyze_all(&set, &cfg);
        let p3 = analyze_ef(&set, &cfg);
        assert_eq!(p2.bounds(), p3.bounds());
    }

    #[test]
    fn property3_bounds_exceed_property2_with_cross_traffic() {
        let set = paper_example_with_best_effort(9).unwrap();
        let cfg = AnalysisConfig::default();
        let p3 = analyze_ef(&set, &cfg);
        assert_eq!(p3.per_flow().len(), 5);
        let pure = crate::analyze_all(&paper_example(), &cfg);
        for (with_np, without) in p3.per_flow().iter().zip(pure.per_flow()) {
            assert!(with_np.wcrt.value().unwrap() > without.wcrt.value().unwrap());
        }
    }

    #[test]
    fn ef_penalty_pairs_up() {
        let set = paper_example_with_best_effort(9).unwrap();
        let pairs = ef_penalty(&set, &AnalysisConfig::default());
        assert_eq!(pairs.len(), 5);
        for (base, np) in pairs {
            assert!(np.value().unwrap() > base.value().unwrap());
        }
    }
}
