//! The arithmetic pieces of Property 2: interference windows `A_{i,j}`,
//! the busy-period bound `Bᵢ^{slow}` (Lemma 3), and the latest-starting-time
//! function `W_{i,t}` (Property 1).
//!
//! A *window* is one `(1 + ⌊(t + A)/T⌋)⁺ · C` term of the bound: the
//! packets of one interfering flow (or, for reverse-direction flows under
//! [`crate::ReverseCounting::PerCrossingNode`], of one flow at one crossing
//! node) that can delay the packet under study.

use serde::{Deserialize, Serialize};
use traj_model::{plus_one_floor, Duration, FlowId, Tick};

/// One interference term of `W_{i,t}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Flow contributing the packets (the analysed flow itself for the
    /// self term).
    pub flow: FlowId,
    /// Alignment `A_{i,j}` (or `Jᵢ` for the self term); may be negative.
    pub a: Tick,
    /// Period `Tⱼ` of the contributing flow.
    pub period: Duration,
    /// Cost per counted packet: `C_j^{slow_{j,i}}`.
    pub cost: Duration,
}

impl Window {
    /// Packets contributed at activation instant `t`:
    /// `(1 + ⌊(t + A)/T⌋)⁺`.
    #[inline]
    pub fn packets(&self, t: Tick) -> i64 {
        plus_one_floor(t + self.a, self.period)
    }

    /// Workload contributed at activation instant `t`.
    #[inline]
    pub fn workload(&self, t: Tick) -> Duration {
        self.packets(t) * self.cost
    }
}

/// The fully-assembled bound for one flow (over a full path or a prefix):
/// `R(t) = Σ_w workload_w(t) + constant - t`, maximised over
/// `t ∈ [-Jᵢ, -Jᵢ + B)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundFunction {
    /// All interference windows, self term included.
    pub windows: Vec<Window>,
    /// The `t`-independent part: `Σ_{h≠slow} max C` + `Σ Lmax` −
    /// `Cᵢ^{last}` + `Cᵢ^{last}` (completion) + non-preemption `δᵢ`.
    pub constant: Duration,
    /// Lower end of the maximisation domain (`-Jᵢ`).
    pub t_lo: Tick,
}

/// Result of maximising a [`BoundFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPoint {
    /// The bound value.
    pub value: Duration,
    /// An activation instant achieving it.
    pub t_star: Tick,
}

impl BoundFunction {
    /// Evaluates `R(t)`.
    pub fn eval(&self, t: Tick) -> Duration {
        let w: Duration = self.windows.iter().map(|w| w.workload(t)).sum();
        w + self.constant - t
    }

    /// Smallest positive fixed point of
    /// `B = Σ_w ⌈B / T_w⌉ · C_w` (Lemma 3's `Bᵢ^{slow}`), or `None` when it
    /// exceeds `max_busy_period` (overload / divergence guard).
    pub fn busy_period(&self, max_busy_period: Duration) -> Option<Duration> {
        let mut b: Duration = self.windows.iter().map(|w| w.cost).sum();
        if b == 0 {
            return Some(0);
        }
        loop {
            let nb: Duration = self
                .windows
                .iter()
                .map(|w| traj_model::ceil_div(b, w.period) * w.cost)
                .sum();
            if nb == b {
                return Some(b);
            }
            if nb > max_busy_period {
                return None;
            }
            b = nb;
        }
    }

    /// Maximises `R(t)` over `t ∈ [t_lo, t_lo + B)`.
    ///
    /// `R` is piecewise of the form `const - t` between window jump points
    /// (where some `t + A_w` crosses a multiple of `T_w`), so the maximum
    /// is attained at `t_lo` or at a jump point; only those candidates are
    /// evaluated — `O(Σ_w B/T_w)` instead of `O(B)`.
    pub fn maximise(&self, max_busy_period: Duration) -> Option<MaxPoint> {
        let b = self.busy_period(max_busy_period)?;
        let t_hi = self.t_lo + b; // exclusive
        let mut best = MaxPoint { value: self.eval(self.t_lo), t_star: self.t_lo };
        for w in &self.windows {
            // jump points: t = k*T - A with t in (t_lo, t_hi)
            let mut k = traj_model::ceil_div(self.t_lo + w.a + 1, w.period);
            loop {
                let t = k * w.period - w.a;
                if t >= t_hi {
                    break;
                }
                if t > self.t_lo {
                    let v = self.eval(t);
                    if v > best.value {
                        best = MaxPoint { value: v, t_star: t };
                    }
                }
                k += 1;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: i64, period: i64, cost: i64) -> Window {
        Window { flow: FlowId(9), a, period, cost }
    }

    #[test]
    fn window_packet_counts() {
        let win = w(0, 36, 4);
        assert_eq!(win.packets(0), 1);
        assert_eq!(win.packets(35), 1);
        assert_eq!(win.packets(36), 2);
        assert_eq!(win.packets(-1), 0);
        assert_eq!(win.workload(36), 8);
    }

    #[test]
    fn busy_period_fixed_point() {
        // Paper example, flow 1: four crossing flows with T = 36, C = 4.
        let f = BoundFunction {
            windows: (0..4).map(|_| w(0, 36, 4)).collect(),
            constant: 0,
            t_lo: 0,
        };
        assert_eq!(f.busy_period(1_000_000), Some(16));
    }

    #[test]
    fn busy_period_divergence_guard() {
        // Utilisation 2.0: C = 2 T for a single window -> diverges.
        let f = BoundFunction { windows: vec![w(0, 10, 20)], constant: 0, t_lo: 0 };
        assert_eq!(f.busy_period(1_000_000), None);
    }

    #[test]
    fn busy_period_full_utilisation_converges_to_lcm_scale() {
        // u = 1 exactly: B = ceil(B/10)*10 stabilises at the seed.
        let f = BoundFunction { windows: vec![w(0, 10, 10)], constant: 0, t_lo: 0 };
        assert_eq!(f.busy_period(1_000_000), Some(10));
    }

    #[test]
    fn maximise_finds_interior_jump() {
        // One window jumping at t = 4 (a = 32, T = 36): R(4) = 2*4 - 4 + c
        // beats R(0) = 4 + c when cost > t.
        let f = BoundFunction {
            windows: vec![w(32, 36, 6), w(0, 36, 30)],
            constant: 0,
            t_lo: 0,
        };
        // B: 36 = ceil(B/36)*6 + ceil(B/36)*30 -> B = 36
        assert_eq!(f.busy_period(1 << 40), Some(36));
        let m = f.maximise(1 << 40).unwrap();
        // candidates: t=0 -> 36; t=4 -> 12+30-4 = 38
        assert_eq!(m.t_star, 4);
        assert_eq!(m.value, 38);
    }

    #[test]
    fn maximise_matches_exhaustive_scan() {
        // Cross-check the jump-point optimisation against brute force.
        let f = BoundFunction {
            windows: vec![w(5, 7, 2), w(-2, 11, 3), w(9, 13, 2), w(0, 36, 4)],
            constant: 17,
            t_lo: -3,
        };
        let b = f.busy_period(1 << 40).unwrap();
        let brute = (f.t_lo..f.t_lo + b).map(|t| f.eval(t)).max().unwrap();
        let m = f.maximise(1 << 40).unwrap();
        assert_eq!(m.value, brute);
    }

    #[test]
    fn maximise_with_jitter_domain() {
        // t_lo = -J < 0; the self window (a = J) contributes 1 packet at
        // t = -J.
        let f = BoundFunction { windows: vec![w(6, 20, 5)], constant: 0, t_lo: -6 };
        let m = f.maximise(1 << 40).unwrap();
        assert_eq!(m.t_star, -6);
        assert_eq!(m.value, 5 + 6);
    }
}
