//! The arithmetic pieces of Property 2: interference windows `A_{i,j}`,
//! the busy-period bound `Bᵢ^{slow}` (Lemma 3), and the latest-starting-time
//! function `W_{i,t}` (Property 1).
//!
//! A *window* is one `(1 + ⌊(t + A)/T⌋)⁺ · C` term of the bound: the
//! packets of one interfering flow (or, for reverse-direction flows under
//! [`crate::ReverseCounting::PerCrossingNode`], of one flow at one crossing
//! node) that can delay the packet under study.

use serde::{Deserialize, Serialize};
use traj_model::{checked_ceil_div, checked_plus_one_floor, floor_div, Duration, FlowId, Tick};

/// An i64 overflow inside term arithmetic; carries the overflowed
/// quantity's name. Mapped to [`crate::Verdict::Overflow`] at the
/// analysis boundary instead of silently wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflowed(pub &'static str);

impl std::fmt::Display for Overflowed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i64 overflow while computing {}", self.0)
    }
}

impl From<Overflowed> for crate::report::Verdict {
    fn from(o: Overflowed) -> Self {
        crate::report::Verdict::overflow(o.0)
    }
}

/// One interference term of `W_{i,t}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Flow contributing the packets (the analysed flow itself for the
    /// self term).
    pub flow: FlowId,
    /// Alignment `A_{i,j}` (or `Jᵢ` for the self term); may be negative.
    pub a: Tick,
    /// Period `Tⱼ` of the contributing flow.
    pub period: Duration,
    /// Cost per counted packet: `C_j^{slow_{j,i}}`.
    pub cost: Duration,
}

impl Window {
    /// Packets contributed at activation instant `t`:
    /// `(1 + ⌊(t + A)/T⌋)⁺`. Checked: alignments near `i64::MAX` surface
    /// an [`Overflowed`] instead of wrapping.
    #[inline]
    pub fn packets(&self, t: Tick) -> Result<i64, Overflowed> {
        let shifted = t.checked_add(self.a).ok_or(Overflowed("t + A"))?;
        checked_plus_one_floor(shifted, self.period).ok_or(Overflowed("packet count"))
    }

    /// Workload contributed at activation instant `t`.
    #[inline]
    pub fn workload(&self, t: Tick) -> Result<Duration, Overflowed> {
        self.packets(t)?
            .checked_mul(self.cost)
            .ok_or(Overflowed("window workload"))
    }
}

/// The fully-assembled bound for one flow (over a full path or a prefix):
/// `R(t) = Σ_w workload_w(t) + constant - t`, maximised over
/// `t ∈ [-Jᵢ, -Jᵢ + B)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundFunction {
    /// All interference windows, self term included.
    pub windows: Vec<Window>,
    /// The `t`-independent part: `Σ_{h≠slow} max C` + `Σ Lmax` −
    /// `Cᵢ^{last}` + `Cᵢ^{last}` (completion) + non-preemption `δᵢ`.
    pub constant: Duration,
    /// Lower end of the maximisation domain (`-Jᵢ`).
    pub t_lo: Tick,
}

/// Result of maximising a [`BoundFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPoint {
    /// The bound value.
    pub value: Duration,
    /// An activation instant achieving it.
    pub t_star: Tick,
}

impl BoundFunction {
    /// Evaluates `R(t)`; checked against i64 overflow.
    pub fn eval(&self, t: Tick) -> Result<Duration, Overflowed> {
        let mut w: Duration = 0;
        for win in &self.windows {
            w = w
                .checked_add(win.workload(t)?)
                .ok_or(Overflowed("interference workload sum"))?;
        }
        w.checked_add(self.constant)
            .and_then(|v| v.checked_sub(t))
            .ok_or(Overflowed("bound value"))
    }

    /// Merges windows with equal `(a, period)` by summing their costs.
    ///
    /// Two such windows count the same packets at every `t`
    /// (`(1 + ⌊(t+a)/T⌋)⁺ · (c₁ + c₂)`), share the same jump points, and
    /// contribute `⌈B/T⌉ · (c₁ + c₂)` to the busy-period recurrence, so
    /// both [`Self::busy_period`] and [`Self::maximise`] are invariant
    /// under the merge. The original window list is kept intact (the
    /// explanation module attributes interference per flow from it);
    /// coalescing only compresses the iteration inside the hot paths.
    /// First-occurrence order (and flow id) is preserved.
    pub fn coalesced(&self) -> Vec<Window> {
        let mut index: std::collections::HashMap<(Tick, Duration), usize> =
            std::collections::HashMap::with_capacity(self.windows.len());
        let mut out: Vec<Window> = Vec::with_capacity(self.windows.len());
        for w in &self.windows {
            match index.entry((w.a, w.period)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    out[*e.get()].cost += w.cost;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(out.len());
                    out.push(*w);
                }
            }
        }
        out
    }

    /// Smallest positive fixed point of
    /// `B = Σ_w ⌈B / T_w⌉ · C_w` (Lemma 3's `Bᵢ^{slow}`), or `Ok(None)`
    /// when it exceeds `max_busy_period` (overload / divergence guard).
    pub fn busy_period(&self, max_busy_period: Duration) -> Result<Option<Duration>, Overflowed> {
        Self::busy_period_of(&self.windows, max_busy_period)
    }

    fn busy_period_of(
        windows: &[Window],
        max_busy_period: Duration,
    ) -> Result<Option<Duration>, Overflowed> {
        let pairs: Vec<(Duration, Duration)> = windows.iter().map(|w| (w.period, w.cost)).collect();
        busy_period_of_pairs(&pairs, max_busy_period)
    }

    /// Maximises `R(t)` over `t ∈ [t_lo, t_lo + B)`.
    ///
    /// `R` is piecewise of the form `const - t` between window jump points
    /// (where some `t + A_w` crosses a multiple of `T_w`), so the maximum
    /// is attained at `t_lo` or at a jump point; only those candidates are
    /// evaluated — `O(Σ_w B/T_w)` instead of `O(B)`.
    pub fn maximise(&self, max_busy_period: Duration) -> Result<Option<MaxPoint>, Overflowed> {
        match self.busy_period(max_busy_period)? {
            Some(b) => self.maximise_given_busy(b).map(Some),
            None => Ok(None),
        }
    }

    /// [`Self::maximise`] with the busy period supplied by the caller.
    ///
    /// The busy period depends only on the windows' `(period, cost)`
    /// pairs — not on the alignments `a` — so callers that re-maximise
    /// the same window structure under shifting alignments (the `Smax`
    /// fixed point) compute it once and pass it in. Windows are coalesced
    /// and jump-point candidates deduplicated before evaluation.
    pub fn maximise_given_busy(&self, busy: Duration) -> Result<MaxPoint, Overflowed> {
        let windows = self.coalesced();
        let mut scratch = SweepScratch::default();
        sweep_merged(
            windows.iter().copied(),
            self.constant,
            self.t_lo,
            busy,
            &mut scratch,
        )
    }
}

/// Reusable buffers of [`sweep_merged`]: cleared every call, reallocated
/// (almost) never. The arena solver threads one instance per worker
/// through millions of cell evaluations.
#[derive(Default)]
pub(crate) struct SweepScratch {
    /// `(period, first jump, cost)` per window; the class-merge path
    /// sorts it by `(period, first jump)` so equal periods form
    /// contiguous classes.
    jumps: Vec<(Duration, Tick, Duration)>,
    /// One streaming cursor per period class.
    classes: Vec<ClassCursor>,
    /// `(jump, cost)` buffer of the sorted-event fallback path.
    events: Vec<(Tick, Duration)>,
}

/// Cursor over one period class's merged jump stream (see
/// [`sweep_merged`]): walks `jumps[start..end]` cyclically, adding one
/// period per lap. `t` is the head event, `>= t_hi` once exhausted.
struct ClassCursor {
    start: usize,
    end: usize,
    /// Current element of the lap.
    p: usize,
    /// `lap × period`, added to the element's first jump.
    lap_off: Tick,
    period: Duration,
    /// Head event time (sentinel `t_hi` when the class is spent).
    t: Tick,
}

/// Above this many *distinct periods* among a sweep's windows, the
/// pre-sorted class merge degrades (each event pays a scan over all
/// class cursors) and [`sweep_merged`] falls back to the sorted event
/// buffer, whose `E log E` is cheap precisely in that regime (many
/// distinct periods ⇒ few jumps per window ⇒ `E ≈ W`).
const SWEEP_MERGE_MAX_CLASSES: usize = 8;

/// The event-sweep core of [`BoundFunction::maximise_given_busy`], over
/// coalesced-or-not windows (coalescing is value-preserving and purely
/// an optimisation: duplicate `(a, period)` windows just produce tied
/// events) and caller-owned scratch buffers.
///
/// Between jump points `R(t)` is `const − t`, and at a window's jump
/// `t = k·T − A` its workload steps up by exactly one packet cost, so
/// the maximum lies at `t_lo` or at a jump. Each window's jumps form an
/// arithmetic progression, and every window's *first* jump lies in
/// `(t_lo, t_lo + T]` — so within one period class (windows sharing `T`)
/// the first jumps span less than one period and the class's merged
/// stream is its windows in first-jump order, repeated with `+T` per
/// lap: pre-sorted by construction. With few classes (harmonic traffic,
/// the steady-state shape the fixed point re-evaluates millions of
/// times) the sweep sorts the W `(period, first)` pairs once and runs a
/// linear cursor merge across the classes — O(W log W + E·classes), no
/// event buffer. Past [`SWEEP_MERGE_MAX_CLASSES`] distinct periods the
/// cursor scan would dominate, so the sweep materialises the events
/// into a reused buffer and sorts them instead — O(E log E), which in
/// that regime is within a constant of the class sort since `E ≈ W`.
/// Both paths visit the same jump instants, group equal-`t` events
/// before evaluating (costs are non-negative, so the grouped sum — and
/// its overflow behaviour — is order-independent), and are therefore
/// bit-identical.
pub(crate) fn sweep_merged(
    windows: impl Iterator<Item = Window>,
    constant: Duration,
    t_lo: Tick,
    busy: Duration,
    scratch: &mut SweepScratch,
) -> Result<MaxPoint, Overflowed> {
    let t_hi = t_lo
        .checked_add(busy)
        .ok_or(Overflowed("maximisation horizon"))?; // exclusive
    scratch.jumps.clear();
    // Distinct periods seen so far, tracked only up to the class cap —
    // one linear probe of a register-sized array per window.
    let mut periods = [0 as Duration; SWEEP_MERGE_MAX_CLASSES];
    let mut n_periods = 0usize;
    let mut workload: Duration = 0;
    for w in windows {
        // One floor division serves both the seed workload and the
        // first jump: with `s = t_lo + A` and `q = ⌊s/T⌋`, the packets
        // at `t_lo` are `(1 + q)⁺ · C`, and the first jump strictly
        // after `t_lo` — the smallest `k·T − A > t_lo` — has
        // `k = ⌈(s+1)/T⌉ = q + 1` (integer identity, any sign of `s`).
        let s = t_lo.checked_add(w.a).ok_or(Overflowed("t + A"))?;
        let k = floor_div(s, w.period)
            .checked_add(1)
            .ok_or(Overflowed("packet count"))?;
        let wl = k
            .max(0)
            .checked_mul(w.cost)
            .ok_or(Overflowed("window workload"))?;
        workload = workload
            .checked_add(wl)
            .ok_or(Overflowed("interference workload sum"))?;
        let t = k
            .checked_mul(w.period)
            .and_then(|v| v.checked_sub(w.a))
            .ok_or(Overflowed("jump point"))?;
        scratch.jumps.push((w.period, t, w.cost));
        if n_periods <= SWEEP_MERGE_MAX_CLASSES
            && !periods[..n_periods.min(SWEEP_MERGE_MAX_CLASSES)].contains(&w.period)
        {
            if n_periods < SWEEP_MERGE_MAX_CLASSES {
                periods[n_periods] = w.period;
            }
            n_periods += 1;
        }
    }
    let seed_value = workload
        .checked_add(constant)
        .and_then(|v| v.checked_sub(t_lo))
        .ok_or(Overflowed("bound value"))?;
    let mut best = MaxPoint {
        value: seed_value,
        t_star: t_lo,
    };
    if n_periods <= SWEEP_MERGE_MAX_CLASSES {
        sweep_class_merge(scratch, constant, t_hi, workload, &mut best)?;
    } else {
        sweep_event_sort(scratch, constant, t_hi, workload, &mut best)?;
    }
    Ok(best)
}

/// Class-merge path of [`sweep_merged`]: per-period pre-sorted streams,
/// linear cursor merge.
fn sweep_class_merge(
    scratch: &mut SweepScratch,
    constant: Duration,
    t_hi: Tick,
    mut workload: Duration,
    best: &mut MaxPoint,
) -> Result<(), Overflowed> {
    scratch.classes.clear();
    scratch
        .jumps
        .sort_unstable_by_key(|&(period, t, _)| (period, t));
    let jumps = &scratch.jumps[..];
    let mut lo = 0;
    while lo < jumps.len() {
        let period = jumps[lo].0;
        let mut hi = lo + 1;
        while hi < jumps.len() && jumps[hi].0 == period {
            hi += 1;
        }
        // The class head is its minimum first jump; the stream is
        // sorted, so a head at or past the horizon means no events.
        if jumps[lo].1 < t_hi {
            scratch.classes.push(ClassCursor {
                start: lo,
                end: hi,
                p: lo,
                lap_off: 0,
                period,
                t: jumps[lo].1,
            });
        }
        lo = hi;
    }
    loop {
        // Next event: minimum head over the live cursors.
        let mut t = t_hi;
        for c in &scratch.classes {
            if c.t < t {
                t = c.t;
            }
        }
        if t >= t_hi {
            break;
        }
        // Drain every cursor sitting at this t, advancing each along its
        // stream (next element of the lap, `+period` on wrap-around).
        for c in &mut scratch.classes {
            while c.t == t {
                workload = workload
                    .checked_add(jumps[c.p].2)
                    .ok_or(Overflowed("interference workload sum"))?;
                c.p += 1;
                if c.p == c.end {
                    c.p = c.start;
                    c.lap_off = c
                        .lap_off
                        .checked_add(c.period)
                        .ok_or(Overflowed("jump point"))?;
                }
                let next = jumps[c.p]
                    .1
                    .checked_add(c.lap_off)
                    .ok_or(Overflowed("jump point"))?;
                c.t = if next < t_hi { next } else { t_hi };
                if c.t == t_hi {
                    break;
                }
            }
        }
        let v = workload
            .checked_add(constant)
            .and_then(|x| x.checked_sub(t))
            .ok_or(Overflowed("bound value"))?;
        if v > best.value {
            *best = MaxPoint {
                value: v,
                t_star: t,
            };
        }
    }
    Ok(())
}

/// Sorted-event-buffer path of [`sweep_merged`]: each window's
/// progression is materialised into the reused buffer, sorted once, and
/// swept linearly with equal-`t` grouping.
fn sweep_event_sort(
    scratch: &mut SweepScratch,
    constant: Duration,
    t_hi: Tick,
    mut workload: Duration,
    best: &mut MaxPoint,
) -> Result<(), Overflowed> {
    scratch.events.clear();
    for &(period, first, cost) in &scratch.jumps {
        let mut t = first;
        while t < t_hi {
            scratch.events.push((t, cost));
            t = t.checked_add(period).ok_or(Overflowed("jump point"))?;
        }
    }
    scratch.events.sort_unstable();
    let events = &scratch.events[..];
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            workload = workload
                .checked_add(events[i].1)
                .ok_or(Overflowed("interference workload sum"))?;
            i += 1;
        }
        let v = workload
            .checked_add(constant)
            .and_then(|x| x.checked_sub(t))
            .ok_or(Overflowed("bound value"))?;
        if v > best.value {
            *best = MaxPoint {
                value: v,
                t_star: t,
            };
        }
    }
    Ok(())
}

/// Smallest positive fixed point of `B = Σ (period, cost) ⌈B/T⌉·C`, on
/// bare pairs: the alignment-free form of [`BoundFunction::busy_period`],
/// shared with the interference cache, whose build coalesces equal
/// periods first (`⌈B/T⌉·(c₁+c₂) = ⌈B/T⌉·c₁ + ⌈B/T⌉·c₂`, so merging
/// preserves the fixed point).
pub(crate) fn busy_period_of_pairs(
    pairs: &[(Duration, Duration)],
    max_busy_period: Duration,
) -> Result<Option<Duration>, Overflowed> {
    busy_period_from(pairs, max_busy_period, 0)
}

/// [`busy_period_of_pairs`] fast-forwarded from a known below-fixed-point
/// seed. Sound whenever `F(seed) ≥ seed` and `seed ≤ lfp`: the recurrence
/// is monotone, so Kleene iteration from the seed climbs to the *same*
/// least fixed point as from the cost sum — bit-identical on the
/// converging path. The cache build exploits this across prefix lengths:
/// prefix `k+1`'s `(period, cost)` pairs dominate prefix `k`'s per period
/// (clipped crossing pieces only grow with `k`, window costs are running
/// maxima, and windows are only added), so `Fₖ₊₁(busyₖ) ≥ Fₖ(busyₖ) =
/// busyₖ ≤ lfpₖ₊₁` and prefix `k`'s converged busy period seeds prefix
/// `k+1`'s in one or two rounds instead of a climb from the cost sum.
///
/// The overload (`None`) and overflow (`Err`) classifications depend on
/// the iterate *trajectory*, not just the fixed point, so a seeded run
/// that fails to converge replays the unseeded iteration — those are the
/// error paths, hit at most once per offending prefix.
pub(crate) fn busy_period_of_pairs_seeded(
    pairs: &[(Duration, Duration)],
    max_busy_period: Duration,
    seed: Option<Duration>,
) -> Result<Option<Duration>, Overflowed> {
    match seed {
        Some(s) if s > 0 => match busy_period_from(pairs, max_busy_period, s) {
            ok @ Ok(Some(_)) => ok,
            _ => busy_period_of_pairs(pairs, max_busy_period),
        },
        _ => busy_period_of_pairs(pairs, max_busy_period),
    }
}

fn busy_period_from(
    pairs: &[(Duration, Duration)],
    max_busy_period: Duration,
    seed: Duration,
) -> Result<Option<Duration>, Overflowed> {
    let mut b: Duration = 0;
    for &(_, c) in pairs {
        b = b
            .checked_add(c)
            .ok_or(Overflowed("busy-period workload sum"))?;
    }
    if b == 0 {
        return Ok(Some(0));
    }
    b = b.max(seed);
    loop {
        let mut nb: Duration = 0;
        for &(t, c) in pairs {
            let term = checked_ceil_div(b, t)
                .and_then(|k| k.checked_mul(c))
                .ok_or(Overflowed("busy-period term"))?;
            nb = nb
                .checked_add(term)
                .ok_or(Overflowed("busy-period workload sum"))?;
        }
        if nb == b {
            return Ok(Some(b));
        }
        if nb > max_busy_period {
            return Ok(None);
        }
        b = nb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: i64, period: i64, cost: i64) -> Window {
        Window {
            flow: FlowId(9),
            a,
            period,
            cost,
        }
    }

    #[test]
    fn window_packet_counts() {
        let win = w(0, 36, 4);
        assert_eq!(win.packets(0).unwrap(), 1);
        assert_eq!(win.packets(35).unwrap(), 1);
        assert_eq!(win.packets(36).unwrap(), 2);
        assert_eq!(win.packets(-1).unwrap(), 0);
        assert_eq!(win.workload(36).unwrap(), 8);
    }

    #[test]
    fn near_max_parameters_overflow_instead_of_wrapping() {
        let win = w(i64::MAX - 1, 36, 4);
        assert_eq!(win.packets(2), Err(Overflowed("t + A")));
        let huge = w(0, i64::MAX / 2, i64::MAX / 2);
        let f = BoundFunction {
            windows: vec![huge, huge, huge],
            constant: 0,
            t_lo: 0,
        };
        assert!(f.busy_period(i64::MAX).is_err());
    }

    #[test]
    fn busy_period_fixed_point() {
        // Paper example, flow 1: four crossing flows with T = 36, C = 4.
        let f = BoundFunction {
            windows: (0..4).map(|_| w(0, 36, 4)).collect(),
            constant: 0,
            t_lo: 0,
        };
        assert_eq!(f.busy_period(1_000_000).unwrap(), Some(16));
    }

    #[test]
    fn busy_period_divergence_guard() {
        // Utilisation 2.0: C = 2 T for a single window -> diverges.
        let f = BoundFunction {
            windows: vec![w(0, 10, 20)],
            constant: 0,
            t_lo: 0,
        };
        assert_eq!(f.busy_period(1_000_000).unwrap(), None);
    }

    #[test]
    fn busy_period_full_utilisation_converges_to_lcm_scale() {
        // u = 1 exactly: B = ceil(B/10)*10 stabilises at the seed.
        let f = BoundFunction {
            windows: vec![w(0, 10, 10)],
            constant: 0,
            t_lo: 0,
        };
        assert_eq!(f.busy_period(1_000_000).unwrap(), Some(10));
    }

    #[test]
    fn maximise_finds_interior_jump() {
        // One window jumping at t = 4 (a = 32, T = 36): R(4) = 2*4 - 4 + c
        // beats R(0) = 4 + c when cost > t.
        let f = BoundFunction {
            windows: vec![w(32, 36, 6), w(0, 36, 30)],
            constant: 0,
            t_lo: 0,
        };
        // B: 36 = ceil(B/36)*6 + ceil(B/36)*30 -> B = 36
        assert_eq!(f.busy_period(1 << 40).unwrap(), Some(36));
        let m = f.maximise(1 << 40).unwrap().unwrap();
        // candidates: t=0 -> 36; t=4 -> 12+30-4 = 38
        assert_eq!(m.t_star, 4);
        assert_eq!(m.value, 38);
    }

    #[test]
    fn maximise_matches_exhaustive_scan() {
        // Cross-check the jump-point optimisation against brute force.
        let f = BoundFunction {
            windows: vec![w(5, 7, 2), w(-2, 11, 3), w(9, 13, 2), w(0, 36, 4)],
            constant: 17,
            t_lo: -3,
        };
        let b = f.busy_period(1 << 40).unwrap().unwrap();
        let brute = (f.t_lo..f.t_lo + b)
            .map(|t| f.eval(t).unwrap())
            .max()
            .unwrap();
        let m = f.maximise(1 << 40).unwrap().unwrap();
        assert_eq!(m.value, brute);
    }

    #[test]
    fn maximise_matches_exhaustive_scan_on_coalescable_windows() {
        // Duplicate (a, period) pairs: the coalesced hot path must agree
        // with brute force and with the uncoalesced evaluation.
        let f = BoundFunction {
            windows: vec![
                w(5, 7, 1),
                w(5, 7, 1),
                w(-2, 11, 2),
                w(5, 7, 1),
                w(-2, 11, 2),
                w(0, 36, 4),
            ],
            constant: 17,
            t_lo: -3,
        };
        let b = f.busy_period(1 << 40).unwrap().unwrap();
        let brute = (f.t_lo..f.t_lo + b)
            .map(|t| f.eval(t).unwrap())
            .max()
            .unwrap();
        let m = f.maximise(1 << 40).unwrap().unwrap();
        assert_eq!(m.value, brute);
        assert_eq!(
            f.eval(m.t_star).unwrap(),
            m.value,
            "coalesced eval must match eval"
        );
    }

    #[test]
    fn coalescing_merges_equal_alignment_and_period() {
        let f = BoundFunction {
            windows: vec![w(5, 7, 2), w(5, 7, 3), w(4, 7, 1), w(5, 8, 1)],
            constant: 0,
            t_lo: 0,
        };
        let c = f.coalesced();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], w(5, 7, 5), "costs summed, first occurrence kept");
        assert_eq!(c[1], w(4, 7, 1));
        assert_eq!(c[2], w(5, 8, 1));
        // The merge is workload-preserving at every instant.
        for t in -20..60 {
            let orig: Duration = f.windows.iter().map(|x| x.workload(t).unwrap()).sum();
            let merged: Duration = c.iter().map(|x| x.workload(t).unwrap()).sum();
            assert_eq!(orig, merged, "t = {t}");
        }
        assert_eq!(
            BoundFunction {
                windows: c,
                constant: 0,
                t_lo: 0
            }
            .busy_period(1 << 40)
            .unwrap(),
            f.busy_period(1 << 40).unwrap(),
        );
    }

    #[test]
    fn maximise_given_busy_matches_maximise() {
        let f = BoundFunction {
            windows: vec![w(5, 7, 2), w(-2, 11, 3), w(9, 13, 2)],
            constant: 4,
            t_lo: -2,
        };
        let b = f.busy_period(1 << 40).unwrap().unwrap();
        assert_eq!(
            f.maximise_given_busy(b).unwrap(),
            f.maximise(1 << 40).unwrap().unwrap()
        );
    }

    #[test]
    fn maximise_with_jitter_domain() {
        // t_lo = -J < 0; the self window (a = J) contributes 1 packet at
        // t = -J.
        let f = BoundFunction {
            windows: vec![w(6, 20, 5)],
            constant: 0,
            t_lo: -6,
        };
        let m = f.maximise(1 << 40).unwrap().unwrap();
        assert_eq!(m.t_star, -6);
        assert_eq!(m.value, 5 + 6);
    }
}
