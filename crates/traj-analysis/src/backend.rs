//! Pluggable analysis backends behind a common trait.
//!
//! The workspace has two ways to bound the EF class end to end: the
//! exact trajectory fixed point ([`crate::analyze_ef`], this crate) and
//! the closed-form network-calculus bounds (`traj-netcalc`, which
//! implements this trait for its `NetcalcAnalyzer`). Both consume a
//! [`FlowSet`] and produce a [`SetReport`] with per-flow verdicts, so
//! consumers that only need *a* sound bound — reporting, screening,
//! cross-validation — can be written once against the trait and handed
//! either engine, or both (the serving layer reports the tightest
//! per-flow bound of the two with its provenance).
//!
//! The trait deliberately covers the *stateless* whole-set analysis
//! only. The warm incremental machinery ([`crate::ConvergedState`]) and
//! the O(path) screen (`traj-netcalc`'s `AggregateCache`) stay typed:
//! their contracts (bit-identity, checked-overflow fallback) are
//! stronger than a common interface could express.

use traj_model::FlowSet;

use crate::config::AnalysisConfig;
use crate::report::SetReport;

/// A whole-set schedulability analysis backend.
///
/// Implementations must be *sound*: every [`crate::Verdict::Bounded`]
/// value is a true upper bound on the flow's worst-case end-to-end
/// response time. They need not be tight — the cross-validation suite
/// checks soundness (bounds dominate the simulator's observed worst
/// case), not tightness.
pub trait Analyzer {
    /// Short stable name for reports and provenance fields.
    fn name(&self) -> &'static str;

    /// Analyses `set` and returns one verdict per flow, set order.
    fn analyze(&self, set: &FlowSet, cfg: &AnalysisConfig) -> SetReport;
}

/// The exact trajectory engine (Property 3 / [`crate::analyze_ef`])
/// behind the backend trait.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrajectoryAnalyzer;

impl Analyzer for TrajectoryAnalyzer {
    fn name(&self) -> &'static str {
        "trajectory"
    }

    fn analyze(&self, set: &FlowSet, cfg: &AnalysisConfig) -> SetReport {
        crate::analyze_ef(set, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn trajectory_backend_matches_direct_analyze_ef() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let via_trait = TrajectoryAnalyzer.analyze(&set, &cfg);
        let direct = crate::analyze_ef(&set, &cfg);
        assert_eq!(via_trait.bounds(), direct.bounds());
        assert_eq!(TrajectoryAnalyzer.name(), "trajectory");
    }
}
