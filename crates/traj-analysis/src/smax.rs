//! The `Smaxᵢʰ` table: maximum source-to-node traversal times.
//!
//! Property 2 needs, for every flow and every node on its path, an upper
//! bound on the time between a packet's generation and its arrival at that
//! node. The paper states the quantity but not its computation; this
//! module stores the table and the [`crate::Analyzer`] drives the sound
//! recursive fixed point over path prefixes
//! (`Smaxᵢʰ = R(prefix through preᵢ(h)) + Lmax`), seeded with transit-only
//! values.
//!
//! The table is laid out struct-of-arrays: one flat `Duration` buffer with
//! per-flow row offsets. The fixed-point hot loop reads and writes cells
//! millions of times on large sets; a flat buffer keeps those accesses on
//! contiguous cache lines instead of chasing one heap allocation per flow.

use serde::{DeError, Deserialize, Serialize, Value};
use traj_model::{Duration, FlowSet, NodeId};

use crate::report::Verdict;

/// `Smax` values per flow, aligned with each flow's path node order.
///
/// Rows are stored back-to-back in `vals`; row `i` spans
/// `vals[off[i]..off[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmaxTable {
    vals: Vec<Duration>,
    off: Vec<usize>,
}

impl SmaxTable {
    /// Transit-only seed: `Smaxᵢʰ = Σ_{h' < h} (Cᵢ^{h'} + Lmax)`,
    /// and 0 at each ingress.
    ///
    /// Every node iterated here lies on its flow's path, so the only way
    /// `transit_smax` can fail is i64 overflow of the running sum. That
    /// failure must not be papered over with a 0 seed: 0 is an
    /// *optimistic* under-approximation of `Smax`, and an optimistic
    /// seed can make an unschedulable set look schedulable. It surfaces
    /// as a typed [`Verdict::Overflow`] instead.
    pub fn transit(set: &FlowSet) -> Result<Self, Verdict> {
        let cells: usize = set.flows().iter().map(|f| f.path.len()).sum();
        let mut vals = Vec::with_capacity(cells);
        let mut off = Vec::with_capacity(set.len() + 1);
        off.push(0);
        for f in set.flows() {
            for &h in f.path.nodes() {
                match set.transit_smax(f, h) {
                    Some(v) => vals.push(v),
                    None => {
                        return Err(Verdict::overflow(format!(
                            "transit Smax seed of flow {} at node {h}",
                            f.id
                        )))
                    }
                }
            }
            off.push(vals.len());
        }
        Ok(SmaxTable { vals, off })
    }

    /// `Smax` of the flow at `flow_idx` to `node`; `None` when the flow
    /// does not visit the node.
    pub fn get(&self, set: &FlowSet, flow_idx: usize, node: NodeId) -> Option<Duration> {
        let pos = set.flows()[flow_idx].path.index_of(node)?;
        Some(self.at(flow_idx, pos))
    }

    /// Raw positional read: `Smax` of the flow at `flow_idx` to the
    /// `pos`-th node of its path. The interference cache resolves node
    /// ids to positions once at build time and then reads through here.
    #[inline]
    pub(crate) fn at(&self, flow_idx: usize, pos: usize) -> Duration {
        self.vals[self.off[flow_idx] + pos]
    }

    /// Updates one entry; returns whether the value changed.
    pub(crate) fn set(&mut self, flow_idx: usize, pos: usize, val: Duration) -> bool {
        let cell = &mut self.vals[self.off[flow_idx] + pos];
        if *cell != val {
            *cell = val;
            true
        } else {
            false
        }
    }

    /// Replaces a whole per-flow row (the survivability warm seed mixes
    /// healthy fixed-point rows with transit rows; row length must match
    /// the flow's path length).
    pub(crate) fn set_row(&mut self, flow_idx: usize, vals: &[Duration]) {
        let (lo, hi) = (self.off[flow_idx], self.off[flow_idx + 1]);
        debug_assert_eq!(vals.len(), hi - lo, "row length mismatch");
        self.vals[lo..hi].copy_from_slice(vals);
    }

    /// One per-flow row (aligned with path order).
    #[inline]
    pub fn row(&self, flow_idx: usize) -> &[Duration] {
        &self.vals[self.off[flow_idx]..self.off[flow_idx + 1]]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.off.len() - 1
    }

    /// Per-flow values (aligned with path order), for reporting.
    pub fn values(&self) -> Vec<Vec<Duration>> {
        (0..self.rows()).map(|i| self.row(i).to_vec()).collect()
    }
}

// The wire format stays the nested-rows shape the previous
// `Vec<Vec<Duration>>` derive produced, so serialized telemetry and
// reports are unchanged by the struct-of-arrays layout.
impl Serialize for SmaxTable {
    fn to_value(&self) -> Value {
        let rows: Vec<Value> = (0..self.rows())
            .map(|i| Value::Seq(self.row(i).iter().map(Serialize::to_value).collect()))
            .collect();
        Value::Map(vec![("vals".to_string(), Value::Seq(rows))])
    }
}

impl Deserialize for SmaxTable {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::new(format!("expected map, got {}", v.kind())))?;
        let rows_v = serde::value::field(entries, "vals")
            .ok_or_else(|| DeError::new("missing field `vals`"))?;
        let rows: Vec<Vec<Duration>> = Deserialize::from_value(rows_v)?;
        let mut vals = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        let mut off = Vec::with_capacity(rows.len() + 1);
        off.push(0);
        for row in rows {
            vals.extend(row);
            off.push(vals.len());
        }
        Ok(SmaxTable { vals, off })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::wcrt::Analyzer;
    use traj_model::examples::{line_topology, paper_example};
    use traj_model::NodeId;

    #[test]
    fn transit_seed_matches_model() {
        let set = paper_example();
        let t = SmaxTable::transit(&set).unwrap();
        // flow 3 (index 2) to node 10: 4 hops * (4 + 1)
        assert_eq!(t.get(&set, 2, NodeId(10)), Some(20));
        assert_eq!(t.get(&set, 2, NodeId(2)), Some(0));
        assert_eq!(
            t.get(&set, 0, NodeId(9)),
            None,
            "flow 1 never visits node 9"
        );
    }

    #[test]
    fn rows_align_with_paths_and_roundtrip_through_serde() {
        let set = paper_example();
        let t = SmaxTable::transit(&set).unwrap();
        assert_eq!(t.rows(), set.len());
        for (i, f) in set.flows().iter().enumerate() {
            assert_eq!(t.row(i).len(), f.path.len());
        }
        let back = SmaxTable::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn fixed_point_dominates_transit_seed() {
        // Queueing can only delay packets: the converged Smax is pointwise
        // >= the transit-only seed.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        let seed = SmaxTable::transit(&set).unwrap();
        for (fi, f) in set.flows().iter().enumerate() {
            for &h in f.path.nodes() {
                let fixed = an.smax().get(&set, fi, h).unwrap();
                let transit = seed.get(&set, fi, h).unwrap();
                assert!(fixed >= transit, "flow {} node {h}", f.id);
            }
        }
    }

    #[test]
    fn transit_seed_overflow_is_a_typed_verdict_not_a_zero_seed() {
        // Two upstream hops of cost ~ i64::MAX/2: the transit sum at the
        // third node leaves i64. Pre-fix this was swallowed by
        // `unwrap_or(0)` — an *optimistic* seed that can declare an
        // unschedulable set schedulable; now it must surface as a typed
        // overflow, both from the seed itself and from `Analyzer::new`.
        let set = line_topology(1, 3, i64::MAX / 2, i64::MAX / 2, 1, 1).unwrap();
        match SmaxTable::transit(&set) {
            Err(crate::Verdict::Overflow { what }) => {
                assert!(what.contains("transit Smax seed"), "{what}")
            }
            other => panic!("expected an overflow verdict, got {other:?}"),
        }
        let cfg = AnalysisConfig::default();
        match Analyzer::new(&set, &cfg) {
            Err(crate::Verdict::Overflow { .. }) => {}
            Ok(_) => panic!("analyzer must not produce bounds from an overflowing seed"),
            Err(other) => panic!("expected an overflow verdict, got {other:?}"),
        }
    }

    #[test]
    fn fixed_point_values_on_paper_example() {
        // Spot-check converged values against the calibration prototype:
        // the busy node 3 delays flows 3..5 well beyond their transit time.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let an = Analyzer::new(&set, &cfg).unwrap();
        // flow 1's arrival at node 3 is uncontended upstream: 4 + 1.
        assert_eq!(an.smax().get(&set, 0, NodeId(3)), Some(5));
        // flow 3's arrival at node 3 waits behind flows 4 and 5 at node 2.
        let s33 = an.smax().get(&set, 2, NodeId(3)).unwrap();
        assert!(s33 > 5, "expected queueing at node 2, got {s33}");
    }
}
