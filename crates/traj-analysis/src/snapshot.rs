//! Durable serialization of a converged EF analysis.
//!
//! A [`ConvergedState`] owns large derived structures — interference
//! skeletons, the `Smax` fixed-point table, per-flow verdicts — that are
//! all pure functions of `(set, cfg)`. Persisting them would bloat the
//! snapshot and create a second source of truth that could drift from
//! the code that derives them. [`ConvergedSnapshot`] therefore stores
//! only the inputs plus the *verdict record*: on restore the state is
//! rebuilt cold with [`ConvergedState::build_ef`] — which the warm ≡
//! cold bit-identity contract (DESIGN.md §10) guarantees reproduces the
//! live state integer-for-integer — and the rebuilt verdicts are
//! checked against the recorded ones. A mismatch means the snapshot was
//! produced by a different code version (or corrupted) and restoring it
//! silently would hand out stale guarantees; it is a typed error, never
//! a best-effort acceptance.

use serde::{Deserialize, Serialize};
use traj_model::{FlowId, FlowSet};

use crate::config::AnalysisConfig;
use crate::incremental::ConvergedState;
use crate::report::{SetReport, Verdict};

/// Serializable image of a [`ConvergedState`]: the analysis inputs and
/// the per-flow verdict record they converged to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergedSnapshot {
    set: FlowSet,
    cfg: AnalysisConfig,
    report: SetReport,
}

/// Why [`ConvergedSnapshot::restore`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The snapshot's flow set does not validate as a model (duplicate
    /// ids, broken paths, …): the file is corrupt or hand-edited.
    InvalidSet(String),
    /// The rebuild could not bound the set — a snapshot can only have
    /// been captured from a bounded analysis, so the inputs and the
    /// record disagree.
    Unbounded(Verdict),
    /// The rebuilt verdicts differ from the recorded ones for these
    /// flows: the snapshot comes from a different analysis version (or
    /// was tampered with) and must not be trusted.
    Diverged(Vec<FlowId>),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::InvalidSet(e) => {
                write!(f, "snapshot flow set does not validate: {e}")
            }
            SnapshotError::Unbounded(v) => {
                write!(f, "snapshot set no longer bounds: {v:?}")
            }
            SnapshotError::Diverged(ids) => {
                write!(f, "rebuilt verdicts diverge from the record for {ids:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl ConvergedSnapshot {
    /// Captures the state's inputs and verdict record.
    pub fn capture(state: &ConvergedState) -> Self {
        ConvergedSnapshot {
            set: state.set().clone(),
            cfg: state.cfg().clone(),
            report: state.report().clone(),
        }
    }

    /// The captured flow set.
    pub fn set(&self) -> &FlowSet {
        &self.set
    }

    /// The captured analysis configuration.
    pub fn cfg(&self) -> &AnalysisConfig {
        &self.cfg
    }

    /// The captured verdict record.
    pub fn report(&self) -> &SetReport {
        &self.report
    }

    /// Rebuilds the converged state and verifies it against the record.
    ///
    /// The flow set is re-validated through [`FlowSet::new`] first (a
    /// deserialized set bypasses the model constructor, so a corrupt
    /// snapshot could otherwise smuggle duplicate ids or broken paths
    /// into the analysis), then rebuilt cold; per-flow `wcrt` and
    /// jitter must match the record exactly. Fixed-point telemetry is
    /// deliberately *not* compared — a warm-maintained live state
    /// legitimately converges in a different number of rounds than the
    /// cold rebuild; only the verdicts carry the guarantee.
    pub fn restore(&self) -> Result<ConvergedState, SnapshotError> {
        let set = FlowSet::new(self.set.network().clone(), self.set.flows().to_vec())
            .map_err(|e| SnapshotError::InvalidSet(format!("{e:?}")))?;
        let rebuilt =
            ConvergedState::build_ef(&set, &self.cfg).map_err(SnapshotError::Unbounded)?;
        let recorded = self.report.per_flow();
        let got = rebuilt.report().per_flow();
        if recorded.len() != got.len() {
            return Err(SnapshotError::Diverged(
                recorded.iter().map(|r| r.flow).collect(),
            ));
        }
        let diverged: Vec<FlowId> = recorded
            .iter()
            .zip(got)
            .filter(|(r, g)| r.flow != g.flow || r.wcrt != g.wcrt || r.jitter != g.jitter)
            .map(|(r, _)| r.flow)
            .collect();
        if !diverged.is_empty() {
            return Err(SnapshotError::Diverged(diverged));
        }
        Ok(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn capture_restore_round_trip_is_bit_identical() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let live = ConvergedState::build_ef(&set, &cfg).unwrap();
        let snap = ConvergedSnapshot::capture(&live);
        let restored = snap.restore().unwrap();
        for (a, b) in live
            .report()
            .per_flow()
            .iter()
            .zip(restored.report().per_flow())
        {
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.wcrt, b.wcrt);
            assert_eq!(a.jitter, b.jitter);
        }
        assert!(restored.verify_bit_identity().passed());
    }

    #[test]
    fn tampered_record_is_rejected() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let live = ConvergedState::build_ef(&set, &cfg).unwrap();
        let snap = ConvergedSnapshot::capture(&live);
        // Forge a record claiming a different bound for the first flow.
        let mut forged_flows = snap.report().per_flow().to_vec();
        forged_flows[0].wcrt = Verdict::Bounded(1);
        let forged = ConvergedSnapshot {
            set: snap.set().clone(),
            cfg: snap.cfg().clone(),
            report: SetReport::new(forged_flows),
        };
        match forged.restore() {
            Err(SnapshotError::Diverged(ids)) => assert_eq!(ids.len(), 1),
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
