//! Analysis results: per-flow verdicts and whole-set reports.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId, NodeId};

use crate::telemetry::FixpointTelemetry;

/// Outcome of a bound computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// A finite worst-case bound (ticks).
    Bounded(Duration),
    /// The analysis diverged (overloaded node or busy period beyond the
    /// configured guard).
    Unbounded {
        /// Human-readable cause.
        reason: String,
    },
    /// The `Smax` fixed point did not converge within the configured
    /// round limit. Structured (unlike [`Verdict::Unbounded`]) so
    /// callers — the admission controller, sensitivity analysis — can
    /// react programmatically instead of string-matching.
    Diverged {
        /// Rounds executed before giving up.
        rounds: usize,
        /// The `(flow, node)` cell still changing in the last round.
        worst_cell: (FlowId, NodeId),
    },
    /// An i64 time computation overflowed; the bound is unknown rather
    /// than wrapped.
    Overflow {
        /// Which quantity overflowed.
        what: String,
    },
}

impl Verdict {
    /// The bound, if finite.
    pub fn value(&self) -> Option<Duration> {
        match self {
            Verdict::Bounded(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether a finite bound was obtained.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Verdict::Bounded(_))
    }

    /// Builds an unbounded verdict.
    pub fn unbounded(reason: impl Into<String>) -> Self {
        Verdict::Unbounded {
            reason: reason.into(),
        }
    }

    /// Builds an overflow verdict.
    pub fn overflow(what: impl Into<String>) -> Self {
        Verdict::Overflow { what: what.into() }
    }
}

/// Per-flow analysis result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// Analysed flow.
    pub flow: FlowId,
    /// Its display name.
    pub name: String,
    /// Worst-case end-to-end response-time bound (Property 2 / 3).
    pub wcrt: Verdict,
    /// End-to-end jitter bound (Definition 2), when the WCRT is finite.
    pub jitter: Option<Duration>,
    /// The flow's deadline `Dᵢ`.
    pub deadline: Duration,
}

impl FlowReport {
    /// `Some(true)` when the bound is finite and within the deadline,
    /// `Some(false)` when finite but late, `None` when unbounded.
    pub fn meets_deadline(&self) -> Option<bool> {
        self.wcrt.value().map(|r| r <= self.deadline)
    }
}

/// Whole-set analysis result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetReport {
    per_flow: Vec<FlowReport>,
    /// Convergence record of the `Smax` fixed point behind the bounds
    /// (absent on error paths where no analyzer was built, and in
    /// reports serialised before the field existed).
    #[serde(default)]
    telemetry: Option<FixpointTelemetry>,
}

impl SetReport {
    /// Assembles a report.
    pub fn new(per_flow: Vec<FlowReport>) -> Self {
        SetReport {
            per_flow,
            telemetry: None,
        }
    }

    /// Attaches the fixed point's convergence record (builder style).
    pub fn with_telemetry(mut self, t: FixpointTelemetry) -> Self {
        self.telemetry = Some(t);
        self
    }

    /// The fixed point's convergence record, when one was collected.
    pub fn telemetry(&self) -> Option<&FixpointTelemetry> {
        self.telemetry.as_ref()
    }

    /// Per-flow results in flow-set order.
    pub fn per_flow(&self) -> &[FlowReport] {
        &self.per_flow
    }

    /// Result for one flow.
    pub fn for_flow(&self, id: FlowId) -> Option<&FlowReport> {
        self.per_flow.iter().find(|r| r.flow == id)
    }

    /// True when every flow has a finite bound within its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.per_flow
            .iter()
            .all(|r| r.meets_deadline() == Some(true))
    }

    /// Number of flows with a finite bound exceeding their deadline or no
    /// bound at all.
    pub fn misses(&self) -> usize {
        self.per_flow
            .iter()
            .filter(|r| r.meets_deadline() != Some(true))
            .count()
    }

    /// The finite bounds as a vector aligned with the flow order
    /// (`None` entries for unbounded flows).
    pub fn bounds(&self) -> Vec<Option<Duration>> {
        self.per_flow.iter().map(|r| r.wcrt.value()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(wcrt: Verdict, deadline: Duration) -> FlowReport {
        FlowReport {
            flow: FlowId(1),
            name: "f".into(),
            wcrt,
            jitter: None,
            deadline,
        }
    }

    #[test]
    fn verdict_helpers() {
        assert_eq!(Verdict::Bounded(5).value(), Some(5));
        assert!(Verdict::Bounded(5).is_bounded());
        let u = Verdict::unbounded("overload");
        assert_eq!(u.value(), None);
        assert!(!u.is_bounded());
    }

    #[test]
    fn deadline_verdicts() {
        assert_eq!(rep(Verdict::Bounded(10), 10).meets_deadline(), Some(true));
        assert_eq!(rep(Verdict::Bounded(11), 10).meets_deadline(), Some(false));
        assert_eq!(rep(Verdict::unbounded("x"), 10).meets_deadline(), None);
    }

    #[test]
    fn set_aggregation() {
        let r = SetReport::new(vec![
            rep(Verdict::Bounded(5), 10),
            rep(Verdict::unbounded("x"), 10),
        ]);
        assert!(!r.all_schedulable());
        assert_eq!(r.misses(), 1);
        assert_eq!(r.bounds(), vec![Some(5), None]);
    }
}
