//! Analysis configuration: the knobs covering the paper's under-specified
//! choices, plus divergence guards.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, MinConvention, SminMode};

/// How `Smaxᵢʰ` (maximum source-to-node traversal time) is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmaxMode {
    /// Global fixed point over path prefixes:
    /// `Smaxᵢʰ = R(prefix through preᵢ(h)) + Lmax`, iterated to
    /// convergence from transit-only seeds. Sound and self-consistent
    /// (default).
    #[default]
    RecursivePrefix,
    /// Transit-only `Σ (Cᵢ + Lmax)`: ignores queueing, *optimistic* —
    /// provided for ablation only; the resulting bound is not sound in
    /// loaded networks.
    TransitOnly,
}

/// How reverse-direction crossing flows are counted in the interference
/// term of Property 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReverseCounting {
    /// One interference window per crossing flow, anchored at
    /// `first_{j,i}` / `first_{i,j}` — the literal Property 2 (default).
    #[default]
    PerFlow,
    /// One window per shared node: a reverse-direction flow contributes
    /// `C_j^{slow_{j,i}}` once per node where it crosses `Pᵢ`. More
    /// pessimistic; this is the accounting the paper's published Table 2
    /// appears to use (see EXPERIMENTS.md).
    PerCrossingNode,
}

/// Below this flow count [`FixpointStrategy::Auto`] picks the sequential
/// Gauss–Seidel sweep: E12 (`BENCH_fixpoint.json`) measured Jacobi *3.6×
/// slower* than even the pre-cache reference at 5 flows (`speedup:
/// 0.28`) — the parallel round's fork/join and double-buffering overhead
/// dwarfs the work when the table is small. At and above the threshold
/// the parallel Jacobi round wins on scaling (and its dirty-cell
/// skipping is what makes the survivability warm start incremental).
pub const AUTO_JACOBI_MIN_FLOWS: usize = 16;

/// Below this flow count [`FixpointStrategy::Auto`] routes
/// [`crate::analyze_all`] to the retained pre-cache reference engine:
/// E12 (`BENCH_fixpoint.json`) measured the reference ~2.3–3.5× faster
/// than both cached strategies at 5 flows (0.022 ms vs 0.050/0.075 ms) —
/// building the interference skeletons costs more than they save when
/// the whole fixed point is a handful of cells — while at 10 flows the
/// reference is already ~2.5× *slower* (0.232 ms vs 0.093 ms). The
/// threshold sits between those two measured points. Engines that
/// require the interference cache (warm starts, the EF universe) run
/// the [`FixpointStrategy::cached_equivalent`] instead.
pub const AUTO_REFERENCE_MAX_FLOWS: usize = 8;

/// Minimum dirty-worklist size (cells due for evaluation this round)
/// for which an intra-component Jacobi round fans out across the rayon
/// pool under [`IntraParallel::Auto`]. Below it the per-round fork/join
/// costs more than the evaluations it spreads — the same economics as
/// [`AUTO_JACOBI_MIN_FLOWS`], one level down.
pub const INTRA_PARALLEL_MIN_CELLS: usize = 512;

/// Whether the Jacobi rounds *inside* one crossing-graph component fan
/// their cell evaluations out across the rayon pool.
///
/// A Jacobi round evaluates every due cell against the frozen previous
/// table, so the evaluations are independent; the parallel round writes
/// them into a buffer indexed by worklist position and applies them in
/// ascending arena order — the exact sequence the serial sweep produces,
/// hence bit-identical values, telemetry counts, and error selection
/// (the first erroring cell in arena order wins, evaluated results are
/// discarded). Orthogonal to the across-component parallelism of
/// [`ShardMode::Components`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IntraParallel {
    /// Parallelise a round only when the pool has more than one thread
    /// and the round's worklist holds at least
    /// [`INTRA_PARALLEL_MIN_CELLS`] cells; stay serial otherwise
    /// (default).
    #[default]
    Auto,
    /// Never fan a round out (serial oracle).
    Never,
    /// Fan every Jacobi round out regardless of worklist size or pool
    /// width — the differential suites force the parallel code path
    /// with this even on small examples.
    Always,
}

/// Iteration scheme of the global `Smax` fixed point.
///
/// All schemes iterate the same monotone operator from the same
/// transit-only seed, so they converge to the same *least* fixed point
/// and yield bit-identical bounds; they differ only in evaluation order
/// (see DESIGN.md, "Jacobi vs Gauss–Seidel").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FixpointStrategy {
    /// Size-based selection (default): the pre-cache reference engine
    /// below [`AUTO_REFERENCE_MAX_FLOWS`] flows, Gauss–Seidel below
    /// [`AUTO_JACOBI_MIN_FLOWS`], Jacobi at or above it. The strategy
    /// actually chosen is recorded in the run's
    /// [`crate::telemetry::FixpointTelemetry`].
    #[default]
    Auto,
    /// Each round reads the previous round's full table and writes a new
    /// one; the per-flow updates of a round are independent and run in
    /// parallel.
    Jacobi,
    /// Updates are applied in place as they are computed, each one
    /// immediately visible to the next (the historical sequential
    /// scheme; usually fewer rounds, but inherently serial).
    GaussSeidel,
    /// The retained pre-cache engine ([`crate::analyze_all_reference`]):
    /// no interference skeletons, every round reassembled from scratch.
    /// Fastest on very small sets, where skeleton construction costs
    /// more than it saves. Only [`crate::analyze_all`] can honour it
    /// verbatim (plain FIFO universe, `δ = 0`); cache-based engines run
    /// [`Self::cached_equivalent`] instead.
    Reference,
}

impl FixpointStrategy {
    /// The concrete scheme to run for a set of `n_flows` flows: `Auto`
    /// resolves by size, the explicit variants are returned unchanged.
    /// Never returns `Auto`.
    pub fn resolve(self, n_flows: usize) -> FixpointStrategy {
        match self {
            FixpointStrategy::Auto => {
                if n_flows < AUTO_REFERENCE_MAX_FLOWS {
                    FixpointStrategy::Reference
                } else if n_flows < AUTO_JACOBI_MIN_FLOWS {
                    FixpointStrategy::GaussSeidel
                } else {
                    FixpointStrategy::Jacobi
                }
            }
            explicit => explicit,
        }
    }

    /// [`Self::resolve`] refined with run-shape context: whether the run
    /// is *cold* (every row seeded for recomputation) and how many
    /// workers the rayon pool offers. Jacobi's two structural advantages
    /// are its parallelisable rounds (worthless on a one-thread pool) and
    /// its dirty-cell worklist (worthless on a cold start, where round 1
    /// touches everything and later rounds shrink for Gauss–Seidel too —
    /// in-place propagation converges in roughly half the rounds, E19).
    /// So `Auto` demotes a would-be Jacobi pick to Gauss–Seidel exactly
    /// when both advantages are absent: a cold run on a single-thread
    /// pool. Warm starts keep Jacobi regardless of pool width — the
    /// seeded-skip worklist is what makes re-analysis incremental — and
    /// explicit choices are never overridden.
    pub fn resolve_for_run(self, n_flows: usize, cold: bool, pool_threads: usize) -> Self {
        match self.resolve(n_flows) {
            FixpointStrategy::Jacobi
                if self == FixpointStrategy::Auto && cold && pool_threads <= 1 =>
            {
                FixpointStrategy::GaussSeidel
            }
            resolved => resolved,
        }
    }

    /// The nearest strategy an engine that *requires* the interference
    /// cache can run: [`FixpointStrategy::Reference`] maps to
    /// Gauss–Seidel (the same sequential in-place sweep the reference
    /// engine iterates, minus the from-scratch reassembly), everything
    /// else is unchanged. Warm starts, restricted universes, and `δ`
    /// providers go through here so telemetry records the scheme that
    /// actually ran.
    pub fn cached_equivalent(self) -> FixpointStrategy {
        match self {
            FixpointStrategy::Reference => FixpointStrategy::GaussSeidel,
            other => other,
        }
    }

    /// Stable lower-case label for telemetry and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            FixpointStrategy::Auto => "auto",
            FixpointStrategy::Jacobi => "jacobi",
            FixpointStrategy::GaussSeidel => "gauss_seidel",
            FixpointStrategy::Reference => "reference",
        }
    }
}

/// Whether the `Smax` fixed point decomposes the crossing graph into
/// connected components and solves each one independently.
///
/// Crossing is the only coupling between rows of the fixed point: a
/// window of flow `i`'s skeleton reads `Smax` of `i` itself and of a
/// flow crossing `i`'s path, never anything further away. Rows in
/// different connected components of the crossing graph therefore never
/// read each other, the equation system is block-diagonal, and each
/// block's Kleene iteration is an exact projection of the monolithic
/// one — the per-component solutions are bit-identical to the global
/// solve (asserted by the sharded differential suite in
/// `tests/equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardMode {
    /// Decompose (default): each component is solved independently over
    /// a struct-of-arrays arena — components run in parallel (largest
    /// estimated cost first), converged components stop doing *any*
    /// work, and warm starts skip components containing no re-seeded
    /// row entirely. A single-component graph still runs the arena
    /// kernel: its allocation-free dirty-cell worklist beats the
    /// monolithic loop even without cross-shard parallelism.
    #[default]
    Components,
    /// Always run the monolithic loop over the whole universe (the
    /// pre-sharding engine; kept as the differential baseline and for
    /// the `scale_perf` benchmark's speedup denominator).
    Monolithic,
}

/// Full analysis configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// `Smax` computation mode.
    pub smax_mode: SmaxMode,
    /// Candidate set for the `min` in `Mᵢʰ`.
    pub min_convention: MinConvention,
    /// What `Smin` accumulates per upstream hop.
    pub smin_mode: SminMode,
    /// Counting of reverse-direction flows.
    pub reverse_counting: ReverseCounting,
    /// Divergence guard: busy periods (`Bᵢ^{slow}`) above this value make
    /// the analysis return [`crate::Verdict::Unbounded`] instead of
    /// iterating forever on overloaded nodes.
    pub max_busy_period: Duration,
    /// Maximum rounds of the global `Smax` fixed point before giving up
    /// (each round is monotone; non-convergence indicates an unschedulable
    /// or overloaded set).
    pub max_smax_rounds: usize,
    /// Iteration scheme of the `Smax` fixed point; all resolve to the
    /// same least fixed point. Defaults to [`FixpointStrategy::Auto`],
    /// which picks by flow count.
    #[serde(default)]
    pub fixpoint: FixpointStrategy,
    /// Component decomposition of the fixed point (see [`ShardMode`]);
    /// orthogonal to `fixpoint` — the chosen strategy runs per component.
    #[serde(default)]
    pub shard_mode: ShardMode,
    /// Intra-component round parallelism (see [`IntraParallel`]); only
    /// meaningful for Jacobi rounds under [`ShardMode::Components`].
    #[serde(default)]
    pub intra_parallel: IntraParallel,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            smax_mode: SmaxMode::RecursivePrefix,
            min_convention: MinConvention::Visiting,
            smin_mode: SminMode::ProcessingAndLink,
            reverse_counting: ReverseCounting::PerFlow,
            max_busy_period: 10_000_000,
            max_smax_rounds: 256,
            fixpoint: FixpointStrategy::default(),
            shard_mode: ShardMode::default(),
            intra_parallel: IntraParallel::default(),
        }
    }
}

impl AnalysisConfig {
    /// The configuration closest to the accounting behind the paper's
    /// published Table 2 (more pessimistic than the default; see
    /// EXPERIMENTS.md for the calibration discussion).
    pub fn paper_calibrated() -> Self {
        AnalysisConfig {
            reverse_counting: ReverseCounting::PerCrossingNode,
            min_convention: MinConvention::ZeroConvention,
            ..Default::default()
        }
    }
}

/// Every combination of the discrete analysis knobs (`SmaxMode` ×
/// `MinConvention` × `SminMode` × `ReverseCounting`), with default
/// guards. Used by the differential test suites to sweep configuration
/// corners.
pub fn config_grid() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for smax_mode in [SmaxMode::RecursivePrefix, SmaxMode::TransitOnly] {
        for min_convention in [
            MinConvention::Visiting,
            MinConvention::ZeroConvention,
            MinConvention::EdgeTraversing,
        ] {
            for smin_mode in [SminMode::ProcessingAndLink, SminMode::LinkOnly] {
                for reverse_counting in [ReverseCounting::PerFlow, ReverseCounting::PerCrossingNode]
                {
                    out.push(AnalysisConfig {
                        smax_mode,
                        min_convention,
                        smin_mode,
                        reverse_counting,
                        ..Default::default()
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_knob_combinations() {
        assert_eq!(config_grid().len(), 2 * 3 * 2 * 2);
    }

    #[test]
    fn default_is_literal_property_2() {
        let c = AnalysisConfig::default();
        assert_eq!(c.smax_mode, SmaxMode::RecursivePrefix);
        assert_eq!(c.reverse_counting, ReverseCounting::PerFlow);
        assert_eq!(c.min_convention, MinConvention::Visiting);
    }

    #[test]
    fn paper_calibrated_differs() {
        let c = AnalysisConfig::paper_calibrated();
        assert_eq!(c.reverse_counting, ReverseCounting::PerCrossingNode);
        assert_eq!(c.min_convention, MinConvention::ZeroConvention);
    }

    #[test]
    fn serde_roundtrip() {
        let c = AnalysisConfig {
            fixpoint: FixpointStrategy::GaussSeidel,
            ..AnalysisConfig::paper_calibrated()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reverse_counting, c.reverse_counting);
        assert_eq!(back.max_busy_period, c.max_busy_period);
        assert_eq!(back.fixpoint, FixpointStrategy::GaussSeidel);
    }

    #[test]
    fn fixpoint_field_defaults_when_absent() {
        // Configs serialised before the `fixpoint` knob existed must keep
        // deserialising (the field carries `#[serde(default)]`).
        let json = r#"{"smax_mode":"RecursivePrefix","min_convention":"Visiting","smin_mode":"ProcessingAndLink","reverse_counting":"PerFlow","max_busy_period":10000000,"max_smax_rounds":256}"#;
        let back: AnalysisConfig = serde_json::from_str(json).unwrap();
        assert_eq!(back.fixpoint, FixpointStrategy::Auto);
        assert_eq!(back.shard_mode, ShardMode::Components);
        assert_eq!(back.intra_parallel, IntraParallel::Auto);
    }

    #[test]
    fn intra_parallel_roundtrips_and_defaults_to_auto() {
        assert_eq!(
            AnalysisConfig::default().intra_parallel,
            IntraParallel::Auto
        );
        let c = AnalysisConfig {
            intra_parallel: IntraParallel::Always,
            ..AnalysisConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.intra_parallel, IntraParallel::Always);
    }

    #[test]
    fn shard_mode_roundtrips_and_defaults_to_components() {
        assert_eq!(AnalysisConfig::default().shard_mode, ShardMode::Components);
        let c = AnalysisConfig {
            shard_mode: ShardMode::Monolithic,
            ..AnalysisConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard_mode, ShardMode::Monolithic);
    }

    #[test]
    fn auto_resolves_by_size_and_explicit_choices_stick() {
        use FixpointStrategy::*;
        assert_eq!(Auto.resolve(AUTO_REFERENCE_MAX_FLOWS - 1), Reference);
        assert_eq!(Auto.resolve(AUTO_REFERENCE_MAX_FLOWS), GaussSeidel);
        assert_eq!(Auto.resolve(AUTO_JACOBI_MIN_FLOWS - 1), GaussSeidel);
        assert_eq!(Auto.resolve(AUTO_JACOBI_MIN_FLOWS), Jacobi);
        assert_eq!(Auto.resolve(0), Reference);
        for n in [0, 1, AUTO_REFERENCE_MAX_FLOWS, AUTO_JACOBI_MIN_FLOWS, 1000] {
            assert_eq!(Jacobi.resolve(n), Jacobi);
            assert_eq!(GaussSeidel.resolve(n), GaussSeidel);
            assert_eq!(Reference.resolve(n), Reference);
            assert_ne!(Auto.resolve(n), Auto, "resolve must never return Auto");
        }
    }

    #[test]
    fn cached_equivalent_never_yields_reference() {
        use FixpointStrategy::*;
        assert_eq!(Reference.cached_equivalent(), GaussSeidel);
        assert_eq!(Jacobi.cached_equivalent(), Jacobi);
        assert_eq!(GaussSeidel.cached_equivalent(), GaussSeidel);
        assert_eq!(Auto.cached_equivalent(), Auto);
        for n in [0, 1, AUTO_REFERENCE_MAX_FLOWS, 1000] {
            assert_ne!(
                Auto.resolve(n).cached_equivalent(),
                Reference,
                "cache-based engines must never claim to run the reference"
            );
        }
    }
}
