//! Analysis configuration: the knobs covering the paper's under-specified
//! choices, plus divergence guards.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, MinConvention, SminMode};

/// How `Smaxᵢʰ` (maximum source-to-node traversal time) is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmaxMode {
    /// Global fixed point over path prefixes:
    /// `Smaxᵢʰ = R(prefix through preᵢ(h)) + Lmax`, iterated to
    /// convergence from transit-only seeds. Sound and self-consistent
    /// (default).
    #[default]
    RecursivePrefix,
    /// Transit-only `Σ (Cᵢ + Lmax)`: ignores queueing, *optimistic* —
    /// provided for ablation only; the resulting bound is not sound in
    /// loaded networks.
    TransitOnly,
}

/// How reverse-direction crossing flows are counted in the interference
/// term of Property 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReverseCounting {
    /// One interference window per crossing flow, anchored at
    /// `first_{j,i}` / `first_{i,j}` — the literal Property 2 (default).
    #[default]
    PerFlow,
    /// One window per shared node: a reverse-direction flow contributes
    /// `C_j^{slow_{j,i}}` once per node where it crosses `Pᵢ`. More
    /// pessimistic; this is the accounting the paper's published Table 2
    /// appears to use (see EXPERIMENTS.md).
    PerCrossingNode,
}

/// Iteration scheme of the global `Smax` fixed point.
///
/// Both schemes iterate the same monotone operator from the same
/// transit-only seed, so they converge to the same *least* fixed point
/// and yield bit-identical bounds; they differ only in evaluation order
/// (see DESIGN.md, "Jacobi vs Gauss–Seidel").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FixpointStrategy {
    /// Each round reads the previous round's full table and writes a new
    /// one; the per-flow updates of a round are independent and run in
    /// parallel (default).
    #[default]
    Jacobi,
    /// Updates are applied in place as they are computed, each one
    /// immediately visible to the next (the historical sequential
    /// scheme; usually fewer rounds, but inherently serial).
    GaussSeidel,
}

/// Full analysis configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// `Smax` computation mode.
    pub smax_mode: SmaxMode,
    /// Candidate set for the `min` in `Mᵢʰ`.
    pub min_convention: MinConvention,
    /// What `Smin` accumulates per upstream hop.
    pub smin_mode: SminMode,
    /// Counting of reverse-direction flows.
    pub reverse_counting: ReverseCounting,
    /// Divergence guard: busy periods (`Bᵢ^{slow}`) above this value make
    /// the analysis return [`crate::Verdict::Unbounded`] instead of
    /// iterating forever on overloaded nodes.
    pub max_busy_period: Duration,
    /// Maximum rounds of the global `Smax` fixed point before giving up
    /// (each round is monotone; non-convergence indicates an unschedulable
    /// or overloaded set).
    pub max_smax_rounds: usize,
    /// Iteration scheme of the `Smax` fixed point; both converge to the
    /// same least fixed point. Defaults to the parallel Jacobi sweep.
    #[serde(default)]
    pub fixpoint: FixpointStrategy,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            smax_mode: SmaxMode::RecursivePrefix,
            min_convention: MinConvention::Visiting,
            smin_mode: SminMode::ProcessingAndLink,
            reverse_counting: ReverseCounting::PerFlow,
            max_busy_period: 10_000_000,
            max_smax_rounds: 256,
            fixpoint: FixpointStrategy::default(),
        }
    }
}

impl AnalysisConfig {
    /// The configuration closest to the accounting behind the paper's
    /// published Table 2 (more pessimistic than the default; see
    /// EXPERIMENTS.md for the calibration discussion).
    pub fn paper_calibrated() -> Self {
        AnalysisConfig {
            reverse_counting: ReverseCounting::PerCrossingNode,
            min_convention: MinConvention::ZeroConvention,
            ..Default::default()
        }
    }
}

/// Every combination of the discrete analysis knobs (`SmaxMode` ×
/// `MinConvention` × `SminMode` × `ReverseCounting`), with default
/// guards. Used by the differential test suites to sweep configuration
/// corners.
pub fn config_grid() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for smax_mode in [SmaxMode::RecursivePrefix, SmaxMode::TransitOnly] {
        for min_convention in [
            MinConvention::Visiting,
            MinConvention::ZeroConvention,
            MinConvention::EdgeTraversing,
        ] {
            for smin_mode in [SminMode::ProcessingAndLink, SminMode::LinkOnly] {
                for reverse_counting in [ReverseCounting::PerFlow, ReverseCounting::PerCrossingNode]
                {
                    out.push(AnalysisConfig {
                        smax_mode,
                        min_convention,
                        smin_mode,
                        reverse_counting,
                        ..Default::default()
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_knob_combinations() {
        assert_eq!(config_grid().len(), 2 * 3 * 2 * 2);
    }

    #[test]
    fn default_is_literal_property_2() {
        let c = AnalysisConfig::default();
        assert_eq!(c.smax_mode, SmaxMode::RecursivePrefix);
        assert_eq!(c.reverse_counting, ReverseCounting::PerFlow);
        assert_eq!(c.min_convention, MinConvention::Visiting);
    }

    #[test]
    fn paper_calibrated_differs() {
        let c = AnalysisConfig::paper_calibrated();
        assert_eq!(c.reverse_counting, ReverseCounting::PerCrossingNode);
        assert_eq!(c.min_convention, MinConvention::ZeroConvention);
    }

    #[test]
    fn serde_roundtrip() {
        let c = AnalysisConfig {
            fixpoint: FixpointStrategy::GaussSeidel,
            ..AnalysisConfig::paper_calibrated()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reverse_counting, c.reverse_counting);
        assert_eq!(back.max_busy_period, c.max_busy_period);
        assert_eq!(back.fixpoint, FixpointStrategy::GaussSeidel);
    }

    #[test]
    fn fixpoint_field_defaults_when_absent() {
        // Configs serialised before the `fixpoint` knob existed must keep
        // deserialising (the field carries `#[serde(default)]`).
        let json = r#"{"smax_mode":"RecursivePrefix","min_convention":"Visiting","smin_mode":"ProcessingAndLink","reverse_counting":"PerFlow","max_busy_period":10000000,"max_smax_rounds":256}"#;
        let back: AnalysisConfig = serde_json::from_str(json).unwrap();
        assert_eq!(back.fixpoint, FixpointStrategy::Jacobi);
    }
}
