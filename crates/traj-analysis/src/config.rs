//! Analysis configuration: the knobs covering the paper's under-specified
//! choices, plus divergence guards.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, MinConvention, SminMode};

/// How `Smaxᵢʰ` (maximum source-to-node traversal time) is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SmaxMode {
    /// Global fixed point over path prefixes:
    /// `Smaxᵢʰ = R(prefix through preᵢ(h)) + Lmax`, iterated to
    /// convergence from transit-only seeds. Sound and self-consistent
    /// (default).
    #[default]
    RecursivePrefix,
    /// Transit-only `Σ (Cᵢ + Lmax)`: ignores queueing, *optimistic* —
    /// provided for ablation only; the resulting bound is not sound in
    /// loaded networks.
    TransitOnly,
}

/// How reverse-direction crossing flows are counted in the interference
/// term of Property 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReverseCounting {
    /// One interference window per crossing flow, anchored at
    /// `first_{j,i}` / `first_{i,j}` — the literal Property 2 (default).
    #[default]
    PerFlow,
    /// One window per shared node: a reverse-direction flow contributes
    /// `C_j^{slow_{j,i}}` once per node where it crosses `Pᵢ`. More
    /// pessimistic; this is the accounting the paper's published Table 2
    /// appears to use (see EXPERIMENTS.md).
    PerCrossingNode,
}

/// Full analysis configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// `Smax` computation mode.
    pub smax_mode: SmaxMode,
    /// Candidate set for the `min` in `Mᵢʰ`.
    pub min_convention: MinConvention,
    /// What `Smin` accumulates per upstream hop.
    pub smin_mode: SminMode,
    /// Counting of reverse-direction flows.
    pub reverse_counting: ReverseCounting,
    /// Divergence guard: busy periods (`Bᵢ^{slow}`) above this value make
    /// the analysis return [`crate::Verdict::Unbounded`] instead of
    /// iterating forever on overloaded nodes.
    pub max_busy_period: Duration,
    /// Maximum rounds of the global `Smax` fixed point before giving up
    /// (each round is monotone; non-convergence indicates an unschedulable
    /// or overloaded set).
    pub max_smax_rounds: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            smax_mode: SmaxMode::RecursivePrefix,
            min_convention: MinConvention::Visiting,
            smin_mode: SminMode::ProcessingAndLink,
            reverse_counting: ReverseCounting::PerFlow,
            max_busy_period: 10_000_000,
            max_smax_rounds: 256,
        }
    }
}

impl AnalysisConfig {
    /// The configuration closest to the accounting behind the paper's
    /// published Table 2 (more pessimistic than the default; see
    /// EXPERIMENTS.md for the calibration discussion).
    pub fn paper_calibrated() -> Self {
        AnalysisConfig {
            reverse_counting: ReverseCounting::PerCrossingNode,
            min_convention: MinConvention::ZeroConvention,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_literal_property_2() {
        let c = AnalysisConfig::default();
        assert_eq!(c.smax_mode, SmaxMode::RecursivePrefix);
        assert_eq!(c.reverse_counting, ReverseCounting::PerFlow);
        assert_eq!(c.min_convention, MinConvention::Visiting);
    }

    #[test]
    fn paper_calibrated_differs() {
        let c = AnalysisConfig::paper_calibrated();
        assert_eq!(c.reverse_counting, ReverseCounting::PerCrossingNode);
        assert_eq!(c.min_convention, MinConvention::ZeroConvention);
    }

    #[test]
    fn serde_roundtrip() {
        let c = AnalysisConfig::paper_calibrated();
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reverse_counting, c.reverse_counting);
        assert_eq!(back.max_busy_period, c.max_busy_period);
    }
}
