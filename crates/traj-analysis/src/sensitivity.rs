//! Sensitivity analysis on top of Property 2: slack, critical flows, and
//! capacity margins.
//!
//! Deterministic admission control and dimensioning need more than a
//! yes/no verdict: *how far* is each flow from its deadline, which flows
//! constrain the set, and how much additional load fits. All questions
//! reduce to re-running the (cheap) Property 2 bound under perturbed
//! parameters; monotonicity of the bound in costs and rates (verified by
//! the property tests) makes binary search valid.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId, FlowSet, SporadicFlow};

use crate::config::AnalysisConfig;
use crate::report::Verdict;
use crate::wcrt::analyze_all;

/// Slack of one flow: distance between its deadline and its bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSlack {
    /// The flow.
    pub flow: FlowId,
    /// Its Property 2 bound.
    pub wcrt: Verdict,
    /// `Dᵢ − Rᵢ` (negative = deadline miss), `None` when unbounded.
    pub slack: Option<Duration>,
}

/// Per-flow slacks, most constrained first.
pub fn slacks(set: &FlowSet, cfg: &AnalysisConfig) -> Vec<FlowSlack> {
    let rep = analyze_all(set, cfg);
    let mut out: Vec<FlowSlack> = rep
        .per_flow()
        .iter()
        .map(|r| FlowSlack {
            flow: r.flow,
            wcrt: r.wcrt.clone(),
            slack: r.wcrt.value().map(|w| r.deadline - w),
        })
        .collect();
    out.sort_by_key(|s| s.slack.unwrap_or(i64::MIN));
    out
}

/// The most constrained flow (smallest slack; unbounded flows first).
/// `None` only for an empty report, which a valid [`FlowSet`] never
/// produces.
pub fn critical_flow(set: &FlowSet, cfg: &AnalysisConfig) -> Option<FlowSlack> {
    slacks(set, cfg).into_iter().next()
}

/// Largest uniform cost `c` for `candidate` (its per-node costs all set
/// to `c`) such that the whole set stays schedulable with the candidate
/// added; `None` when even `c = 1` does not fit. Binary search over
/// `[1, c_max]`.
pub fn max_admissible_cost(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    candidate: &SporadicFlow,
    c_max: Duration,
) -> Option<Duration> {
    let fits = |c: Duration| -> bool {
        let trial = match SporadicFlow::uniform(
            candidate.id.0,
            candidate.path.clone(),
            candidate.period,
            c,
            candidate.jitter,
            candidate.deadline,
        ) {
            Ok(t) => t.with_class(candidate.class),
            Err(_) => return false,
        };
        let mut flows = set.flows().to_vec();
        flows.push(trial);
        match FlowSet::new(set.network().clone(), flows) {
            Ok(s) => analyze_all(&s, cfg).all_schedulable(),
            Err(_) => false,
        }
    };
    if !fits(1) {
        return None;
    }
    let (mut lo, mut hi) = (1, c_max.max(1));
    if fits(hi) {
        return Some(hi);
    }
    // Invariant: fits(lo), !fits(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// How much every deadline could uniformly shrink (in ticks) with the set
/// remaining schedulable — the set-wide robustness margin.
pub fn deadline_margin(set: &FlowSet, cfg: &AnalysisConfig) -> Option<Duration> {
    slacks(set, cfg)
        .into_iter()
        .map(|s| s.slack)
        .collect::<Option<Vec<_>>>()
        .map(|v| v.into_iter().min().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;
    use traj_model::Path;

    #[test]
    fn slacks_on_paper_example() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let s = slacks(&set, &cfg);
        assert_eq!(s.len(), 5);
        // Bounds {31,37,47,47,40} against deadlines {40,45,55,55,50}:
        // slacks {9,8,8,8,10}; most constrained first.
        let by_flow: Vec<(u32, i64)> = s.iter().map(|x| (x.flow.0, x.slack.unwrap())).collect();
        assert_eq!(by_flow.iter().map(|(_, s)| *s).min(), Some(8));
        assert_eq!(by_flow[0].1, 8);
        assert_eq!(by_flow.last().unwrap().1, 10);
    }

    #[test]
    fn critical_flow_is_minimal_slack() {
        let set = paper_example();
        let c = critical_flow(&set, &AnalysisConfig::default()).unwrap();
        assert_eq!(c.slack, Some(8));
    }

    #[test]
    fn deadline_margin_matches_min_slack() {
        let set = paper_example();
        assert_eq!(deadline_margin(&set, &AnalysisConfig::default()), Some(8));
    }

    #[test]
    fn max_admissible_cost_binary_search() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let cand =
            SporadicFlow::uniform(99, Path::from_ids([2, 3, 4]).unwrap(), 72, 1, 0, 1_000).unwrap();
        let c = max_admissible_cost(&set, &cfg, &cand, 64).expect("some load fits");
        assert!(c >= 1);
        // Boundary property: c fits, c+1 does not (or c == c_max).
        let fits = |cost: i64| {
            let mut flows = set.flows().to_vec();
            flows.push(SporadicFlow::uniform(99, cand.path.clone(), 72, cost, 0, 1_000).unwrap());
            let s = FlowSet::new(set.network().clone(), flows).unwrap();
            analyze_all(&s, &cfg).all_schedulable()
        };
        assert!(fits(c));
        if c < 64 {
            assert!(!fits(c + 1));
        }
    }

    #[test]
    fn impossible_candidate_yields_none() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        // Tiny deadline: even cost 1 cannot meet it through three nodes.
        let cand =
            SporadicFlow::uniform(99, Path::from_ids([2, 3, 4]).unwrap(), 72, 1, 0, 2).unwrap();
        assert_eq!(max_admissible_cost(&set, &cfg, &cand, 16), None);
    }
}
