//! Differential suite for the explain/provenance layer: on random
//! flowsets, under **both** `Smax` modes and **all three** min
//! conventions, the machine-readable [`BoundProvenance`] terms must sum
//! *exactly* to the bound `analyze_all` reports for the same flow, and
//! the human-oriented [`BoundBreakdown`] audit total must agree. Any
//! drift between the analyzer and its explanation layer — a term added
//! to one and forgotten in the other, a sign error in the activation
//! offset — fails the equality, not a tolerance.

use proptest::prelude::*;
use traj_analysis::{
    analyze_all, explain_flow, provenance_all, AnalysisConfig, BoundBreakdown, BoundProvenance,
    SmaxMode,
};
use traj_model::gen::{random_mesh, MeshParams};
use traj_model::{FlowSet, MinConvention};

/// Small meshes keep 64 cases x 6 configurations fast while still
/// producing multi-hop interference (the regime where the provenance
/// terms are non-trivial).
fn mesh(seed: u64, flows: u32) -> Option<FlowSet> {
    let params = MeshParams {
        nodes: 12,
        flows,
        path_len: (2, 4),
        max_utilisation: 0.5,
        ..Default::default()
    };
    random_mesh(seed, &params).ok()
}

/// Every discrete configuration the suite sweeps.
fn configs() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for smax_mode in [SmaxMode::RecursivePrefix, SmaxMode::TransitOnly] {
        for min_convention in [
            MinConvention::Visiting,
            MinConvention::ZeroConvention,
            MinConvention::EdgeTraversing,
        ] {
            out.push(AnalysisConfig {
                smax_mode,
                min_convention,
                ..Default::default()
            });
        }
    }
    out
}

proptest! {
    #[test]
    fn provenance_terms_sum_exactly_to_the_analyzer_bound(
        seed in 0u64..1_000_000,
        flows in 3u32..12,
    ) {
        let Some(set) = mesh(seed, flows) else {
            return Err(TestCaseError::reject());
        };
        for cfg in configs() {
            let report = analyze_all(&set, &cfg);
            let provs = provenance_all(&set, &cfg);
            prop_assert_eq!(provs.len(), report.per_flow().len());
            for (r, p) in report.per_flow().iter().zip(&provs) {
                match (r.wcrt.value(), p) {
                    (Some(bound), Ok(p)) => {
                        prop_assert_eq!(
                            p.bound, bound,
                            "provenance bound drifted from the analyzer ({:?})", cfg
                        );
                        let total: i64 = p.terms.iter().map(|t| t.amount).sum();
                        prop_assert_eq!(
                            total, bound,
                            "provenance terms do not sum to the bound ({:?})", cfg
                        );
                        prop_assert_eq!(p.total(), bound);
                        check_breakdown(&set, &cfg, p, bound)?;
                    }
                    // Divergence must be reported consistently by both.
                    (None, Err(_)) => {}
                    (bound, prov) => prop_assert!(
                        false,
                        "analyzer and provenance disagree on boundedness: \
                         bound {bound:?} vs provenance {prov:?} ({cfg:?})"
                    ),
                }
            }
        }
    }
}

/// The human-oriented breakdown must agree with the provenance and the
/// analyzer: same bound, and its audit re-sum reproduces it.
fn check_breakdown(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    p: &BoundProvenance,
    bound: i64,
) -> Result<(), TestCaseError> {
    let bd: BoundBreakdown = explain_flow(set, cfg, p.flow)
        .map_err(|v| TestCaseError::fail(format!("explain_flow diverged after analyze: {v:?}")))?;
    prop_assert_eq!(bd.bound, bound);
    prop_assert_eq!(bd.total(), bound);
    Ok(())
}
