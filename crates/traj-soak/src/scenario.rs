//! The seedable scenario DSL.
//!
//! A [`SoakScenario`] is a plain serde struct: everything the soak
//! engine does — topology, initial load, churn rate, storm schedule,
//! staged recovery, audit cadence and the pass/fail gates — is spelled
//! out here, so a run is reproducible from `(scenario JSON, seed)`
//! alone. Two presets cover the common cases: [`SoakScenario::smoke`]
//! (a CI-sized run of a couple of simulated minutes) and
//! [`SoakScenario::full_hour`] (one simulated hour, ≥100k churn events,
//! ≥20 storms — the BENCH_soak.json campaign).
//!
//! The clock is the analysis tick: by convention 1000 ticks = 1
//! simulated second, so `duration_ticks = 3_600_000` is one hour.

use serde::{Deserialize, Serialize};
use traj_diffserv::TieredPolicy;
use traj_model::gen::{BackboneParams, FatTreeParams};

/// Which generator builds the topology and samples candidate routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Three-layer fat-tree (edge → aggregation → core), see
    /// [`traj_model::gen::fat_tree`].
    FatTree {
        /// Number of pods.
        pods: u32,
        /// Edge switches per pod.
        edge_per_pod: u32,
        /// Aggregation switches per pod.
        agg_per_pod: u32,
        /// Shared core switches.
        core: u32,
        /// Probability that a flow stays inside its pod.
        locality: f64,
    },
    /// Backbone ring with chords and access stubs, see
    /// [`traj_model::gen::backbone_mesh`].
    Backbone {
        /// Core routers on the ring.
        core: u32,
        /// Extra random chords.
        chords: u32,
        /// Access routers per core node.
        access_per_core: u32,
    },
}

/// Parameter ranges for generated flows (initial set and churn
/// arrivals alike).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTemplate {
    /// Period range (inclusive).
    pub period: (i64, i64),
    /// Per-node cost range (inclusive).
    pub cost: (i64, i64),
    /// Release jitter range (inclusive).
    pub jitter: (i64, i64),
    /// Deadline = `deadline_factor × (cost + lmax) × path_len`, the
    /// same shape the topology generators use.
    pub deadline_factor: i64,
}

impl Default for FlowTemplate {
    fn default() -> Self {
        FlowTemplate {
            period: (200, 800),
            cost: (1, 4),
            jitter: (0, 4),
            deadline_factor: 5,
        }
    }
}

/// Arrival/departure churn process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Churn events per 1000 ticks (i.e. per simulated second),
    /// uniformly spread.
    pub events_per_kilotick: u32,
    /// Fraction of churn events that are arrivals (the rest are
    /// departures of a random admitted flow).
    pub arrival_fraction: f64,
}

/// Staged repair of one storm's faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySpec {
    /// Repair stages per storm (the storm's faults are partitioned
    /// round-robin across them, [`traj_model::RepairSchedule`]).
    pub stages: u32,
    /// Ticks between consecutive repair stages of one storm.
    pub stage_gap_ticks: u64,
}

/// Correlated fault-storm schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormSpec {
    /// Storms over the whole run, evenly spaced.
    pub count: u32,
    /// Directed links taken down per storm (within the blast radius).
    pub link_faults: u32,
    /// Nodes taken down per storm (within the blast radius).
    pub node_faults: u32,
    /// Blast radius in hops around the storm's epicenter.
    pub radius: u32,
    /// How the storm's faults are repaired.
    pub recovery: RecoverySpec,
}

/// Continuous audit cadence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSpec {
    /// Ticks between warm-vs-cold bit-identity spot checks of the
    /// standing converged state (plus controller invariants).
    pub bit_identity_every_ticks: u64,
    /// Ticks between windowed bound-domination checks
    /// ([`traj_sim::window_validate`]).
    pub window_every_ticks: u64,
    /// Simulation windows per domination check.
    pub windows: usize,
    /// Packets per flow in each window.
    pub window_packets: usize,
    /// Ticks between retry-queue drain attempts.
    pub retry_every_ticks: u64,
}

/// Regression gates asserted by the soak binary (and re-checked by CI
/// from the emitted JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateSpec {
    /// Minimum churn events the run must have executed.
    pub min_churn_events: u64,
    /// Minimum storms the run must have injected.
    pub min_storms: u32,
    /// Minimum writer-side screen hits (only meaningful for
    /// [`TieredPolicy::Screened`] scenarios; 0 disables the gate).
    #[serde(default)]
    pub min_screen_hits: u64,
}

/// One complete soak scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakScenario {
    /// Display name (lands in the report).
    pub name: String,
    /// Master seed; every random stream of the run derives from it.
    pub seed: u64,
    /// Run length in ticks (1000 ticks = 1 simulated second).
    pub duration_ticks: u64,
    /// Topology generator and layout.
    pub topology: TopologySpec,
    /// Flows the generator admits before the clock starts.
    pub initial_flows: u32,
    /// Parameter ranges for all generated flows.
    pub template: FlowTemplate,
    /// Churn process.
    pub churn: ChurnSpec,
    /// Storm schedule.
    pub storms: StormSpec,
    /// Audit cadence.
    pub audits: AuditSpec,
    /// Pass/fail gates.
    pub gates: GateSpec,
    /// Admission tier: [`TieredPolicy::Screened`] routes every admit
    /// through the O(path) network-calculus screen first, with the
    /// screening-consistency audit re-checking screened admits against
    /// the cold trajectory engine at the bit-identity cadence.
    #[serde(default)]
    pub tiered: TieredPolicy,
}

impl SoakScenario {
    /// CI-sized preset: two simulated minutes, three storms, a few
    /// thousand churn events — finishes in well under a minute of wall
    /// clock while exercising every phase (churn, storms, staged
    /// recovery, all three audit families).
    pub fn smoke(seed: u64) -> SoakScenario {
        SoakScenario {
            name: "smoke".to_string(),
            seed,
            duration_ticks: 120_000,
            topology: TopologySpec::FatTree {
                pods: 4,
                edge_per_pod: 4,
                agg_per_pod: 2,
                core: 2,
                locality: 0.7,
            },
            initial_flows: 48,
            template: FlowTemplate {
                // Generous deadlines keep a healthy share of the churn
                // inside the Charny screen's reach, so the tiered fast
                // path (and its consistency audit) actually exercises.
                deadline_factor: 25,
                ..FlowTemplate::default()
            },
            churn: ChurnSpec {
                events_per_kilotick: 25,
                arrival_fraction: 0.55,
            },
            storms: StormSpec {
                count: 3,
                link_faults: 2,
                node_faults: 1,
                radius: 2,
                recovery: RecoverySpec {
                    stages: 2,
                    stage_gap_ticks: 1_000,
                },
            },
            audits: AuditSpec {
                bit_identity_every_ticks: 15_000,
                window_every_ticks: 30_000,
                windows: 2,
                window_packets: 4,
                retry_every_ticks: 500,
            },
            gates: GateSpec {
                min_churn_events: 2_000,
                min_storms: 3,
                min_screen_hits: 1,
            },
            tiered: TieredPolicy::Screened,
        }
    }

    /// The full campaign: one simulated hour, 30 churn events per
    /// simulated second (≥100k total), 24 storms with two-stage
    /// recovery — the scenario behind the committed `BENCH_soak.json`.
    pub fn full_hour(seed: u64) -> SoakScenario {
        SoakScenario {
            name: "full-hour".to_string(),
            seed,
            duration_ticks: 3_600_000,
            topology: TopologySpec::FatTree {
                pods: 4,
                edge_per_pod: 4,
                agg_per_pod: 2,
                core: 2,
                locality: 0.7,
            },
            initial_flows: 48,
            template: FlowTemplate {
                deadline_factor: 25,
                ..FlowTemplate::default()
            },
            churn: ChurnSpec {
                events_per_kilotick: 30,
                arrival_fraction: 0.55,
            },
            storms: StormSpec {
                count: 24,
                link_faults: 2,
                node_faults: 1,
                radius: 2,
                recovery: RecoverySpec {
                    stages: 2,
                    stage_gap_ticks: 2_000,
                },
            },
            audits: AuditSpec {
                bit_identity_every_ticks: 100_000,
                window_every_ticks: 300_000,
                windows: 2,
                window_packets: 4,
                retry_every_ticks: 500,
            },
            gates: GateSpec {
                min_churn_events: 100_000,
                min_storms: 20,
                min_screen_hits: 1,
            },
            tiered: TieredPolicy::Screened,
        }
    }

    /// Parses a scenario from its JSON form.
    pub fn from_json(text: &str) -> Result<SoakScenario, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid scenario: {e:?}"))
    }

    /// The scenario's JSON form (pretty-printed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Fat-tree generator parameters for this scenario, when the
    /// topology is a fat-tree.
    pub fn fat_tree_params(&self) -> Option<FatTreeParams> {
        let TopologySpec::FatTree {
            pods,
            edge_per_pod,
            agg_per_pod,
            core,
            locality,
        } = self.topology
        else {
            return None;
        };
        Some(FatTreeParams {
            pods,
            edge_per_pod,
            agg_per_pod,
            core,
            flows: self.initial_flows,
            locality,
            period: self.template.period,
            cost: self.template.cost,
            jitter: self.template.jitter,
            ..FatTreeParams::default()
        })
    }

    /// Backbone generator parameters for this scenario, when the
    /// topology is a backbone mesh.
    pub fn backbone_params(&self) -> Option<BackboneParams> {
        let TopologySpec::Backbone {
            core,
            chords,
            access_per_core,
        } = self.topology
        else {
            return None;
        };
        Some(BackboneParams {
            core,
            chords,
            access_per_core,
            flows: self.initial_flows,
            period: self.template.period,
            cost: self.template.cost,
            jitter: self.template.jitter,
            ..BackboneParams::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_meet_their_own_gates_arithmetically() {
        let s = SoakScenario::full_hour(1);
        let churn = s.duration_ticks / 1000 * s.churn.events_per_kilotick as u64;
        assert!(churn >= s.gates.min_churn_events, "{churn}");
        assert!(s.storms.count >= s.gates.min_storms);
        let smoke = SoakScenario::smoke(1);
        let churn = smoke.duration_ticks / 1000 * smoke.churn.events_per_kilotick as u64;
        assert!(churn >= smoke.gates.min_churn_events);
    }

    #[test]
    fn json_round_trips() {
        let s = SoakScenario::smoke(42);
        let back = SoakScenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        let f = SoakScenario::full_hour(7);
        assert_eq!(SoakScenario::from_json(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn params_match_the_declared_topology() {
        let s = SoakScenario::smoke(1);
        assert!(s.fat_tree_params().is_some());
        assert!(s.backbone_params().is_none());
        let mut b = s.clone();
        b.topology = TopologySpec::Backbone {
            core: 8,
            chords: 3,
            access_per_core: 2,
        };
        assert!(b.fat_tree_params().is_none());
        let p = b.backbone_params().unwrap();
        assert_eq!(p.core, 8);
        assert_eq!(p.flows, b.initial_flows);
    }
}
