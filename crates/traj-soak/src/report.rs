//! The regression-gated soak report (`BENCH_soak.json`).
//!
//! Everything a run did — churn decisions, storms and their staged
//! recovery, every audit verdict, decision-latency percentiles and wall
//! throughput — serialised as one JSON document. The binary asserts
//! [`SoakReport::gate_violations`] is empty; CI re-checks the same
//! fields from the artifact so a regression cannot hide behind a stale
//! binary.

use serde::{Deserialize, Serialize};
use traj_diffserv::AdmissionMetrics;

use crate::scenario::SoakScenario;

/// Arrival/departure churn outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnCounters {
    /// Arrival events executed (admitted, rejected, invalid or blocked).
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected (some flow would miss its deadline).
    pub rejected: u64,
    /// Arrivals structurally invalid.
    pub invalid: u64,
    /// Arrivals skipped because the sampled route crossed an active
    /// fault (no admission attempt runs through a dead element).
    pub blocked_by_fault: u64,
    /// Departure events executed.
    pub departures: u64,
    /// Departures refused because the flow was the last one standing.
    pub departures_retained: u64,
}

impl ChurnCounters {
    /// Total churn events executed (the gate quantity).
    pub fn events(&self) -> u64 {
        self.arrivals + self.departures
    }
}

/// Fault-storm and staged-recovery outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormCounters {
    /// Storms injected (the gate quantity).
    pub storms: u32,
    /// Storms skipped (empty blast zone or the fault would have killed
    /// every flow — the controller state is untouched).
    pub storms_skipped: u32,
    /// Individual faults injected across all storms.
    pub faults_injected: u64,
    /// Flows whose route died.
    pub dropped: u64,
    /// Flows evicted to restore schedulability.
    pub evicted: u64,
    /// Flows rerouted around faults (detoured).
    pub rerouted: u64,
    /// Storms that ended with the last flow retained unguaranteed.
    pub last_flow_retained: u64,
    /// Repair stages executed.
    pub repair_stages: u64,
    /// Detoured flows moved back to their original route after repair.
    pub detours_restored: u64,
    /// Restorations where the original route no longer fit and the
    /// detour was re-admitted instead (guaranteed by monotonicity).
    pub detour_fallbacks: u64,
    /// Fallback re-admissions that failed — impossible by monotonicity,
    /// counted as an audit failure.
    pub detour_fallback_failures: u64,
}

/// Continuous-audit verdicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditCounters {
    /// Warm-vs-cold bit-identity spot checks run.
    pub bit_identity_checks: u64,
    /// Spot checks with at least one per-flow mismatch.
    pub bit_identity_failures: u64,
    /// Controller-invariant sweeps run.
    pub invariant_checks: u64,
    /// Sweeps that reported at least one violation.
    pub invariant_failures: u64,
    /// Per-storm warm fault-reanalysis audits run.
    pub reanalysis_checks: u64,
    /// Reanalysis audits with a warm/cold mismatch.
    pub reanalysis_failures: u64,
    /// Windowed bound-domination sweeps run.
    pub window_checks: u64,
    /// Flow observations compared across all windows.
    pub window_flows_checked: u64,
    /// Observations exceeding their analytic bound (soundness bugs).
    pub bound_violations: u64,
    /// Screening-consistency audits run (tiered scenarios: the settled
    /// standing set is re-checked against the cold trajectory engine
    /// and the screen's aggregates against a cold rebuild).
    #[serde(default)]
    pub screening_checks: u64,
    /// Screening audits where a screened admit did not survive the
    /// exact re-check, or the aggregate cache drifted.
    #[serde(default)]
    pub screening_failures: u64,
}

/// Decision-latency summary from the run's histogram (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub samples: u64,
    /// Median (bucketed upper edge).
    pub p50_us: u64,
    /// 99th percentile (bucketed upper edge).
    pub p99_us: u64,
    /// Exact maximum.
    pub max_us: u64,
}

/// One soak run, fully accounted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakReport {
    /// The scenario that produced this run (verbatim, for replay).
    pub scenario: SoakScenario,
    /// Simulated time covered (1000 ticks = 1 second).
    pub sim_seconds: f64,
    /// Churn outcomes.
    pub churn: ChurnCounters,
    /// Storm and recovery outcomes.
    pub storms: StormCounters,
    /// Audit verdicts.
    pub audits: AuditCounters,
    /// Admission decision latency over churn arrivals.
    pub admit_latency: LatencySummary,
    /// Admitted flows when the run ended.
    pub flows_final: usize,
    /// Largest admitted set ever observed.
    pub flows_peak: usize,
    /// Wall-clock duration of the run (seconds).
    pub wall_seconds: f64,
    /// Executed events (churn + storms + repairs + audits + retry
    /// ticks) per wall-clock second.
    pub events_per_sec_wall: f64,
    /// The controller's own monotone counters.
    pub admission: AdmissionMetrics,
    /// Fraction of admission attempts the screen served without the
    /// trajectory fixed point (`screen_hits / (screen_hits +
    /// screen_fallbacks)`, 0 when untiered or no attempts).
    #[serde(default)]
    pub screen_hit_rate: f64,
    /// traj-obs counter/gauge snapshot (empty when no sink installed).
    pub obs_metrics: Vec<(String, i64)>,
    /// First few human-readable audit failure messages, for debugging.
    pub failure_messages: Vec<String>,
}

impl SoakReport {
    /// Total audit failures of every family (the zero-tolerance gate).
    pub fn audit_failures(&self) -> u64 {
        self.audits.bit_identity_failures
            + self.audits.invariant_failures
            + self.audits.reanalysis_failures
            + self.audits.bound_violations
            + self.audits.screening_failures
            + self.storms.detour_fallback_failures
    }

    /// Gate check: empty means the run passed. Gates come from the
    /// scenario itself so smoke and full runs each enforce their own
    /// floors, plus the universal zero-audit-failure requirement.
    pub fn gate_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let churn = self.churn.events();
        if churn < self.scenario.gates.min_churn_events {
            v.push(format!(
                "churn events {churn} below the gate {}",
                self.scenario.gates.min_churn_events
            ));
        }
        if self.storms.storms < self.scenario.gates.min_storms {
            v.push(format!(
                "storms {} below the gate {}",
                self.storms.storms, self.scenario.gates.min_storms
            ));
        }
        let failures = self.audit_failures();
        if failures > 0 {
            v.push(format!("{failures} audit failures (zero tolerated)"));
        }
        if self.audits.bit_identity_checks == 0
            || self.audits.window_checks == 0
            || self.audits.invariant_checks == 0
        {
            v.push("an audit family never ran".to_string());
        }
        if self.scenario.tiered == traj_diffserv::TieredPolicy::Screened
            && self.audits.screening_checks == 0
        {
            v.push("the screening-consistency audit never ran".to_string());
        }
        if self.admission.screen_hits < self.scenario.gates.min_screen_hits {
            v.push(format!(
                "screen hits {} below the gate {}",
                self.admission.screen_hits, self.scenario.gates.min_screen_hits
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SoakScenario;

    fn empty_report() -> SoakReport {
        SoakReport {
            scenario: SoakScenario::smoke(1),
            sim_seconds: 0.0,
            churn: ChurnCounters::default(),
            storms: StormCounters::default(),
            audits: AuditCounters::default(),
            admit_latency: LatencySummary::default(),
            flows_final: 0,
            flows_peak: 0,
            wall_seconds: 0.0,
            events_per_sec_wall: 0.0,
            admission: AdmissionMetrics::default(),
            screen_hit_rate: 0.0,
            obs_metrics: Vec::new(),
            failure_messages: Vec::new(),
        }
    }

    #[test]
    fn gates_catch_missing_work_and_failures() {
        let r = empty_report();
        let v = r.gate_violations();
        assert!(v.iter().any(|m| m.contains("churn")));
        assert!(v.iter().any(|m| m.contains("storms")));
        assert!(v.iter().any(|m| m.contains("never ran")));

        let mut ok = empty_report();
        ok.churn.arrivals = 3_000;
        ok.churn.departures = 500;
        ok.storms.storms = 3;
        ok.audits.bit_identity_checks = 4;
        ok.audits.invariant_checks = 4;
        ok.audits.window_checks = 2;
        ok.audits.screening_checks = 4;
        ok.admission.screen_hits = 5;
        assert!(
            ok.gate_violations().is_empty(),
            "{:?}",
            ok.gate_violations()
        );

        ok.audits.bound_violations = 1;
        assert_eq!(ok.audit_failures(), 1);
        assert!(ok
            .gate_violations()
            .iter()
            .any(|m| m.contains("audit failures")));
    }

    #[test]
    fn tiered_gates_catch_silent_screens() {
        // The smoke preset is tiered: a run whose screen never fired,
        // or whose screening audit never ran, must not pass.
        let mut r = empty_report();
        r.churn.arrivals = 3_000;
        r.storms.storms = 3;
        r.audits.bit_identity_checks = 4;
        r.audits.invariant_checks = 4;
        r.audits.window_checks = 2;
        let v = r.gate_violations();
        assert!(
            v.iter().any(|m| m.contains("screening-consistency")),
            "{v:?}"
        );
        assert!(v.iter().any(|m| m.contains("screen hits")), "{v:?}");

        r.audits.screening_failures = 2;
        assert!(r
            .gate_violations()
            .iter()
            .any(|m| m.contains("audit failures")));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = empty_report();
        r.churn.admitted = 7;
        r.audits.bit_identity_checks = 2;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: SoakReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.churn, r.churn);
        assert_eq!(back.audits, r.audits);
        assert_eq!(back.scenario, r.scenario);
    }
}
