//! The soak engine: a deterministic event loop interleaving churn,
//! correlated fault storms, staged recovery and continuous audits
//! against one warm [`AdmissionController`].
//!
//! The whole run derives from the scenario's seed: the event schedule
//! is laid out up front (churn instants, storm instants, repair stages,
//! audit ticks, retry drains), sorted by tick, and executed in order.
//! Same scenario JSON → same decisions, same report — which is what
//! makes a soak failure replayable.
//!
//! Phase behaviour:
//!
//! * **churn** — arrivals sample a fresh route from the scenario's
//!   topology sampler (the *same* sampler the generator used, so churn
//!   traffic is statistically indistinguishable from the initial load);
//!   arrivals whose route crosses an active fault are counted and
//!   skipped, everything else runs warm admission. Departures release a
//!   random admitted flow.
//! * **storms** — [`FaultScenario::correlated_storm`] on the admitted
//!   set, handed to [`AdmissionController::on_fault`]; dropped and
//!   evicted flows join the retry queue, rerouted flows are recorded as
//!   *detours* with their original route.
//! * **recovery** — each storm's faults are partitioned into repair
//!   stages ([`RepairSchedule`]); when a stage repairs, detoured flows
//!   whose original route is clear again are moved back (release +
//!   re-admit; on failure the detour is re-admitted, which monotonicity
//!   guarantees to succeed), and queued flows become eligible for the
//!   gated retry drain.
//! * **audits** — see [`crate::audit`].

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_analysis::AnalysisConfig;
use traj_diffserv::{AdmissionController, AdmissionDecision, ReleaseOutcome};
use traj_model::gen::{
    backbone_core_adjacency, backbone_mesh, backbone_path, fat_tree, fat_tree_path, BackboneParams,
    FatTreeParams,
};
use traj_model::{Fault, FaultScenario, FlowId, FlowSet, Path, RepairSchedule, SporadicFlow};
use traj_obs::Histogram;

use crate::audit;
use crate::report::{AuditCounters, ChurnCounters, LatencySummary, SoakReport, StormCounters};
use crate::scenario::SoakScenario;

/// The topology handle: generator parameters plus whatever layout state
/// the route sampler needs.
enum Topo {
    FatTree(FatTreeParams),
    Backbone(BackboneParams, Vec<Vec<usize>>),
}

impl Topo {
    fn sample_route(&self, rng: &mut StdRng) -> Vec<u32> {
        match self {
            Topo::FatTree(p) => fat_tree_path(rng, p),
            Topo::Backbone(p, adj) => backbone_path(rng, p, adj),
        }
    }

    fn lmax(&self) -> i64 {
        match self {
            Topo::FatTree(p) => p.lmax,
            Topo::Backbone(p, _) => p.lmax,
        }
    }
}

/// One scheduled event. Variant order is the same-tick execution order:
/// storms hit before repairs and repairs before churn/audits at the
/// same instant, so an audit never observes a half-applied storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Storm(u32),
    Repair(u32, u32),
    RetryDrain,
    Churn(u64),
    BitIdentity,
    Window,
}

/// Does `path` avoid every active fault?
fn path_clear(path: &Path, faults: &[Fault]) -> bool {
    for f in faults {
        match f {
            Fault::NodeDown { node } => {
                if path.visits(*node) {
                    return false;
                }
            }
            Fault::LinkDown { from, to } => {
                if path.links().any(|(a, b)| a == *from && b == *to) {
                    return false;
                }
            }
        }
    }
    true
}

/// Builds the sorted event schedule for `s`.
fn schedule(s: &SoakScenario) -> Vec<(u64, Ev)> {
    let mut events: Vec<(u64, Ev)> = Vec::new();
    let dur = s.duration_ticks;

    let churn_events = dur / 1000 * s.churn.events_per_kilotick as u64;
    let epk = s.churn.events_per_kilotick.max(1) as u64;
    for k in 0..churn_events {
        let tick = ((k + 1) * 1000) / epk;
        events.push((tick.min(dur), Ev::Churn(k)));
    }

    for i in 0..s.storms.count {
        let storm_tick = (i as u64 + 1) * dur / (s.storms.count as u64 + 1);
        events.push((storm_tick, Ev::Storm(i)));
        for stage in 0..s.storms.recovery.stages.max(1) {
            let repair_tick =
                storm_tick + (stage as u64 + 1) * s.storms.recovery.stage_gap_ticks.max(1);
            events.push((repair_tick.min(dur), Ev::Repair(i, stage)));
        }
    }

    let mut periodic = |every: u64, ev: Ev| {
        if every == 0 {
            return;
        }
        let mut t = every;
        while t <= dur {
            events.push((t, ev));
            t += every;
        }
    };
    periodic(s.audits.retry_every_ticks, Ev::RetryDrain);
    periodic(s.audits.bit_identity_every_ticks, Ev::BitIdentity);
    periodic(s.audits.window_every_ticks, Ev::Window);

    events.sort();
    events
}

/// Runs `scenario` to completion and returns the fully-accounted
/// report. `Err` only for structural problems (the topology cannot be
/// generated) — audit failures are *reported*, not errors, so the
/// binary can still emit the JSON for forensics.
pub fn run_scenario(scenario: &SoakScenario) -> Result<SoakReport, String> {
    let wall_start = Instant::now();
    let cfg = AnalysisConfig::default();

    // Topology + initial admitted set, from the same seed and sampler.
    let (topo, initial) = match (scenario.fat_tree_params(), scenario.backbone_params()) {
        (Some(p), _) => {
            let set = fat_tree(scenario.seed, &p).map_err(|e| format!("fat-tree: {e}"))?;
            (Topo::FatTree(p), set)
        }
        (_, Some(p)) => {
            let set = backbone_mesh(scenario.seed, &p).map_err(|e| format!("backbone: {e}"))?;
            let mut layout_rng = StdRng::seed_from_u64(scenario.seed);
            let adj = backbone_core_adjacency(&mut layout_rng, &p);
            (Topo::Backbone(p, adj), set)
        }
        _ => return Err("scenario names no topology".to_string()),
    };
    if initial.is_empty() {
        return Err("topology generated no initial flows".to_string());
    }
    // Honour the template's deadline factor on the initial set too (the
    // generators hard-code factor 5, the template default — a no-op
    // there): churn arrivals and the initial load share one deadline
    // shape, so a feasible-heavy scenario is feasible-heavy throughout.
    let initial = {
        let t = &scenario.template;
        let network = initial.network().clone();
        let flows: Vec<SporadicFlow> = initial
            .flows()
            .iter()
            .cloned()
            .map(|mut f| {
                f.deadline = t.deadline_factor * (f.max_cost() + topo.lmax()) * f.path.len() as i64;
                f
            })
            .collect();
        FlowSet::new(network, flows).map_err(|e| format!("deadline reshape: {e}"))?
    };
    let mut next_id = initial.flows().iter().map(|f| f.id.0).max().unwrap_or(0) + 1000;
    let mut controller =
        AdmissionController::new(initial, cfg.clone()).with_tiered(scenario.tiered);

    let mut churn = ChurnCounters::default();
    let mut storms = StormCounters::default();
    let mut audits = AuditCounters::default();
    let mut messages: Vec<String> = Vec::new();
    let mut latency = Histogram::new();
    let mut flows_peak = controller.flows().len();

    // Candidate stream: separate from the generator's seed so churn
    // does not replay the initial flows.
    let mut cand_rng = StdRng::seed_from_u64(scenario.seed.wrapping_add(1));
    let mut active_faults: Vec<Fault> = Vec::new();
    let mut repair_plans: HashMap<u32, RepairSchedule> = HashMap::new();
    // Rerouted flows and the original they should return to. Ordered:
    // restoration walks this map, and each release + re-admit below
    // mutates the controller, so the walk order is observable — a
    // hash map's per-instance random order here made two same-seed
    // runs admit different flows (caught by the determinism test).
    let mut detours: BTreeMap<FlowId, SporadicFlow> = BTreeMap::new();

    let events = schedule(scenario);
    let total_events = events.len() as u64;
    traj_obs::gauge_set("soak.scheduled_events", total_events as i64);

    for (now, ev) in events {
        match ev {
            Ev::Churn(_) => {
                let arrival =
                    cand_rng.gen_range(0.0..1.0) < scenario.churn.arrival_fraction.clamp(0.0, 1.0);
                if arrival {
                    churn.arrivals += 1;
                    let t = &scenario.template;
                    let route = topo.sample_route(&mut cand_rng);
                    let period = cand_rng.gen_range(t.period.0..=t.period.1.max(t.period.0));
                    let cost = cand_rng.gen_range(t.cost.0..=t.cost.1.max(t.cost.0));
                    let jitter = cand_rng.gen_range(t.jitter.0..=t.jitter.1.max(t.jitter.0));
                    let deadline = t.deadline_factor * (cost + topo.lmax()) * route.len() as i64;
                    let Ok(path) = Path::from_ids(route) else {
                        churn.invalid += 1;
                        continue;
                    };
                    if !path_clear(&path, &active_faults) {
                        churn.blocked_by_fault += 1;
                        continue;
                    }
                    let Ok(flow) =
                        SporadicFlow::uniform(next_id, path, period, cost, jitter, deadline)
                    else {
                        churn.invalid += 1;
                        continue;
                    };
                    next_id += 1;
                    let t0 = Instant::now();
                    let decision = controller.try_admit(flow);
                    latency.record(t0.elapsed().as_micros() as u64);
                    match decision {
                        AdmissionDecision::Admitted { .. } => churn.admitted += 1,
                        AdmissionDecision::Rejected { .. } => churn.rejected += 1,
                        AdmissionDecision::Invalid(_) => churn.invalid += 1,
                    }
                    traj_obs::counter_add("soak.churn.arrivals", 1);
                } else {
                    churn.departures += 1;
                    let n = controller.flows().len();
                    let idx = cand_rng.gen_range(0..n);
                    let id = controller.flows().flows()[idx].id;
                    match controller.release(id) {
                        ReleaseOutcome::Released => {
                            detours.remove(&id);
                        }
                        ReleaseOutcome::LastFlowRetained => churn.departures_retained += 1,
                        ReleaseOutcome::NotFound => {}
                    }
                    traj_obs::counter_add("soak.churn.departures", 1);
                }
                flows_peak = flows_peak.max(controller.flows().len());
            }

            Ev::Storm(i) => {
                let _t = traj_obs::ScopedTimer::new("soak.storm").field("now", now);
                let storm_seed = scenario.seed.wrapping_add(storm_salt(i));
                let storm = FaultScenario::correlated_storm(
                    controller.flows(),
                    storm_seed,
                    scenario.storms.link_faults,
                    scenario.storms.node_faults,
                    scenario.storms.radius,
                );
                if storm.faults.is_empty() {
                    storms.storms_skipped += 1;
                    continue;
                }
                // Audit the warm survivability path on the pre-storm
                // set before the controller mutates anything.
                audit::storm_reanalysis(
                    controller.flows(),
                    &storm,
                    &cfg,
                    now,
                    &mut audits,
                    &mut messages,
                );
                // Snapshot originals so rerouted flows can return.
                let originals: HashMap<FlowId, SporadicFlow> = controller
                    .flows()
                    .flows()
                    .iter()
                    .map(|f| (f.id, f.clone()))
                    .collect();
                match controller.on_fault(&storm, now) {
                    Ok(resp) => {
                        storms.storms += 1;
                        storms.faults_injected += storm.faults.len() as u64;
                        storms.dropped += resp.dropped.len() as u64;
                        storms.evicted += resp.evicted.len() as u64;
                        storms.rerouted += resp.rerouted.len() as u64;
                        if resp.last_flow_retained {
                            storms.last_flow_retained += 1;
                        }
                        for id in &resp.rerouted {
                            if let Some(orig) = originals.get(id) {
                                detours.entry(*id).or_insert_with(|| orig.clone());
                            }
                        }
                        repair_plans.insert(
                            i,
                            RepairSchedule::staged(&storm, scenario.storms.recovery.stages),
                        );
                        active_faults.extend(storm.faults.iter().copied());
                        traj_obs::counter_add("soak.storms", 1);
                    }
                    Err(_) => {
                        // e.g. the storm would kill every flow: the
                        // controller state is untouched, skip it.
                        storms.storms_skipped += 1;
                    }
                }
                audit::invariants(&controller, now, &mut audits, &mut messages);
            }

            Ev::Repair(storm_idx, stage) => {
                let Some(plan) = repair_plans.get(&storm_idx) else {
                    continue; // the storm was skipped
                };
                let Some(stage_faults) = plan.stages.get(stage as usize).map(|s| s.faults.clone())
                else {
                    continue; // fewer stages than requested (few faults)
                };
                storms.repair_stages += 1;
                for f in &stage_faults {
                    if let Some(pos) = active_faults.iter().position(|a| a == f) {
                        active_faults.remove(pos);
                    }
                }
                traj_obs::counter_add("soak.repair_stages", 1);
                // Move detoured flows back onto repaired routes.
                let candidates: Vec<(FlowId, SporadicFlow)> = detours
                    .iter()
                    .filter(|(_, orig)| path_clear(&orig.path, &active_faults))
                    .map(|(id, orig)| (*id, orig.clone()))
                    .collect();
                for (id, orig) in candidates {
                    let Some(current) = controller.flows().flow(id).cloned() else {
                        // Departed or evicted since: nothing to restore.
                        detours.remove(&id);
                        continue;
                    };
                    if current.path == orig.path {
                        detours.remove(&id);
                        continue;
                    }
                    match controller.release(id) {
                        ReleaseOutcome::Released => {
                            if matches!(
                                controller.try_admit(orig),
                                AdmissionDecision::Admitted { .. }
                            ) {
                                storms.detours_restored += 1;
                                detours.remove(&id);
                            } else if matches!(
                                controller.try_admit(current),
                                AdmissionDecision::Admitted { .. }
                            ) {
                                // The original route no longer fits;
                                // keep the detour (guaranteed to go
                                // back in: we just released it).
                                storms.detour_fallbacks += 1;
                            } else {
                                storms.detour_fallback_failures += 1;
                                if messages.len() < 16 {
                                    messages.push(format!(
                                        "t={now}: detour fallback re-admission failed for {id}"
                                    ));
                                }
                            }
                        }
                        // Last flow standing: leave it on the detour.
                        ReleaseOutcome::LastFlowRetained => {}
                        ReleaseOutcome::NotFound => {
                            detours.remove(&id);
                        }
                    }
                }
            }

            Ev::RetryDrain => {
                let faults = active_faults.clone();
                controller.tick_gated(now, |f| path_clear(&f.path, &faults));
                flows_peak = flows_peak.max(controller.flows().len());
            }

            Ev::BitIdentity => {
                audit::bit_identity(&mut controller, now, &mut audits, &mut messages);
                audit::screening_consistency(&mut controller, now, &mut audits, &mut messages);
            }

            Ev::Window => {
                audit::bound_domination(
                    &mut controller,
                    &scenario.audits,
                    scenario.seed,
                    now,
                    &mut audits,
                    &mut messages,
                );
            }
        }
    }

    let wall = wall_start.elapsed().as_secs_f64();
    let metrics = *controller.metrics();
    let screen_attempts = metrics.screen_hits + metrics.screen_fallbacks;
    let screen_hit_rate = if screen_attempts > 0 {
        metrics.screen_hits as f64 / screen_attempts as f64
    } else {
        0.0
    };
    Ok(SoakReport {
        scenario: scenario.clone(),
        sim_seconds: scenario.duration_ticks as f64 / 1000.0,
        churn,
        storms,
        audits,
        admit_latency: LatencySummary {
            samples: latency.count(),
            p50_us: latency.percentile(0.5),
            p99_us: latency.percentile(0.99),
            max_us: latency.max(),
        },
        flows_final: controller.flows().len(),
        flows_peak,
        wall_seconds: wall,
        events_per_sec_wall: if wall > 0.0 {
            total_events as f64 / wall
        } else {
            0.0
        },
        admission: metrics,
        screen_hit_rate,
        obs_metrics: traj_obs::metrics_snapshot(),
        failure_messages: messages,
    })
}

/// Per-storm seed salt: SplitMix64-style spread so consecutive storm
/// indices land far apart in seed space.
fn storm_salt(i: u32) -> u64 {
    (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologySpec;

    fn tiny() -> SoakScenario {
        let mut s = SoakScenario::smoke(11);
        s.duration_ticks = 20_000;
        s.storms.count = 2;
        s.storms.recovery.stage_gap_ticks = 1_000;
        s.audits.bit_identity_every_ticks = 5_000;
        s.audits.window_every_ticks = 10_000;
        s.gates.min_churn_events = 300;
        s.gates.min_storms = 1;
        s
    }

    #[test]
    fn tiny_run_passes_every_gate() {
        let report = run_scenario(&tiny()).unwrap();
        assert_eq!(report.audit_failures(), 0, "{:?}", report.failure_messages);
        assert!(
            report.gate_violations().is_empty(),
            "{:?}",
            report.gate_violations()
        );
        assert!(report.churn.admitted > 0);
        assert!(report.storms.storms >= 1);
        assert!(report.audits.bit_identity_checks >= 3);
        assert!(report.admit_latency.samples > 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_scenario(&tiny()).unwrap();
        let b = run_scenario(&tiny()).unwrap();
        assert_eq!(a.churn, b.churn);
        assert_eq!(a.storms, b.storms);
        assert_eq!(a.audits, b.audits);
        assert_eq!(a.flows_final, b.flows_final);
        let mut c = tiny();
        c.seed = 12;
        let d = run_scenario(&c).unwrap();
        assert!(
            d.churn != a.churn || d.storms != a.storms,
            "different seeds should diverge"
        );
    }

    #[test]
    fn backbone_topology_runs_too() {
        let mut s = tiny();
        s.topology = TopologySpec::Backbone {
            core: 8,
            chords: 3,
            access_per_core: 2,
        };
        s.duration_ticks = 10_000;
        s.gates.min_churn_events = 150;
        let report = run_scenario(&s).unwrap();
        assert_eq!(report.audit_failures(), 0, "{:?}", report.failure_messages);
        assert!(report.churn.admitted > 0);
    }

    #[test]
    fn schedule_orders_storms_before_audits_at_the_same_tick() {
        let s = tiny();
        let evs = schedule(&s);
        assert!(evs.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by tick");
        let churn: usize = evs
            .iter()
            .filter(|(_, e)| matches!(e, Ev::Churn(_)))
            .count();
        assert_eq!(
            churn as u64,
            s.duration_ticks / 1000 * s.churn.events_per_kilotick as u64
        );
    }

    #[test]
    fn path_clear_sees_both_fault_kinds() {
        let p = Path::from_ids([1, 2, 3]).unwrap();
        assert!(path_clear(&p, &[]));
        assert!(!path_clear(
            &p,
            &[Fault::NodeDown {
                node: traj_model::NodeId(2)
            }]
        ));
        assert!(!path_clear(
            &p,
            &[Fault::LinkDown {
                from: traj_model::NodeId(1),
                to: traj_model::NodeId(2)
            }]
        ));
        // Reverse direction of a directed link fault does not block.
        assert!(path_clear(
            &p,
            &[Fault::LinkDown {
                from: traj_model::NodeId(2),
                to: traj_model::NodeId(1)
            }]
        ));
    }
}
