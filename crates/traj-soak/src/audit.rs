//! The continuous audit passes the driver interleaves with churn.
//!
//! Four independent families, each checking a different contract of
//! the warm incremental machinery while it is being churned:
//!
//! * **bit identity** — the standing
//!   [`traj_analysis::ConvergedState`] must equal a cold `analyze_ef`
//!   of the same set, integer for integer, plus the controller's
//!   bookkeeping invariants
//!   ([`AdmissionController::check_invariants`]);
//! * **fault reanalysis** — per storm, the warm survivability path
//!   ([`traj_analysis::reanalyze`]) must equal a cold
//!   `analyze_degraded` of the same degraded set;
//! * **bound domination** — observed simulated tail latency must stay
//!   at or below the analytic bound for every surviving flow
//!   ([`traj_sim::window_validate`]);
//! * **screening consistency** — on tiered scenarios, screen-served
//!   admits are re-checked against the cold trajectory engine (every
//!   settled flow must still meet its deadline) and the screen's
//!   incremental aggregates against a cold rebuild; zero mismatches
//!   tolerated.
//!
//! Every failure increments a counter in
//! [`crate::report::AuditCounters`] and (capped) pushes a readable
//! message; the report's gates tolerate zero.

use traj_analysis::{analyze_ef, reanalyze, AnalysisConfig, Analyzer};
use traj_diffserv::{AdmissionController, TieredPolicy};
use traj_model::{FaultScenario, FlowSet};
use traj_sim::{window_validate, SimConfig, WindowParams};

use crate::report::AuditCounters;
use crate::scenario::AuditSpec;

/// Keep only the first few failure messages — enough to debug, bounded
/// so a systematically failing run cannot balloon the report.
const MAX_MESSAGES: usize = 16;

fn push_message(messages: &mut Vec<String>, msg: String) {
    if messages.len() < MAX_MESSAGES {
        messages.push(msg);
    }
}

/// Warm-vs-cold spot check of the controller's standing state, plus the
/// bookkeeping invariant sweep. `now` only labels the messages.
pub fn bit_identity(
    controller: &mut AdmissionController,
    now: u64,
    counters: &mut AuditCounters,
    messages: &mut Vec<String>,
) {
    let _t = traj_obs::ScopedTimer::new("soak.audit.bit_identity").field("now", now);
    counters.bit_identity_checks += 1;
    if let Some(state) = controller.converged_state() {
        let audit = state.verify_bit_identity();
        if !audit.passed() {
            counters.bit_identity_failures += 1;
            push_message(
                messages,
                format!(
                    "t={now}: warm state diverged from cold analysis for flows {:?}",
                    audit.mismatches
                ),
            );
        }
    }
    invariants(controller, now, counters, messages);
}

/// The controller bookkeeping sweep on its own (run after every storm).
pub fn invariants(
    controller: &AdmissionController,
    now: u64,
    counters: &mut AuditCounters,
    messages: &mut Vec<String>,
) {
    counters.invariant_checks += 1;
    let violations = controller.check_invariants();
    if !violations.is_empty() {
        counters.invariant_failures += 1;
        for v in violations {
            push_message(messages, format!("t={now}: invariant: {v}"));
        }
    }
}

/// Per-storm audit of the warm survivability path: re-analyse the
/// pre-storm set under the storm warm (seeded from a converged healthy
/// analyzer) and cold, and compare. `healthy` is the admitted set
/// *before* the controller reacted to the storm.
pub fn storm_reanalysis(
    healthy: &FlowSet,
    storm: &FaultScenario,
    cfg: &AnalysisConfig,
    now: u64,
    counters: &mut AuditCounters,
    messages: &mut Vec<String>,
) {
    let _t = traj_obs::ScopedTimer::new("soak.audit.reanalysis").field("now", now);
    let Ok(degraded) = storm.apply(healthy) else {
        return; // the storm was skipped by the driver too
    };
    let Ok(analyzer) = Analyzer::new(healthy, cfg) else {
        return; // healthy set diverges: nothing to compare warm against
    };
    counters.reanalysis_checks += 1;
    let warm = reanalyze(&analyzer, &degraded, cfg);
    let audit = warm.verify_bit_identity(&degraded, cfg);
    if !audit.passed() {
        counters.reanalysis_failures += 1;
        push_message(
            messages,
            format!(
                "t={now}: warm fault reanalysis diverged for flows {:?}",
                audit.mismatches
            ),
        );
    }
}

/// Screening-consistency audit for tiered controllers: settles any
/// screen-admitted suffix, then re-checks the whole standing set with
/// the *exact* trajectory engine — a screen admit the cold engine would
/// have refused shows up as a deadline miss (or a divergent set). The
/// screen's incremental aggregates must also equal a cold rebuild.
///
/// The single-flow case is exempt from the deadline re-check: the
/// controller deliberately retains an unguaranteed last flow
/// (`LastFlowRetained`), which is not the screen's doing.
pub fn screening_consistency(
    controller: &mut AdmissionController,
    now: u64,
    counters: &mut AuditCounters,
    messages: &mut Vec<String>,
) {
    if controller.tiered() != TieredPolicy::Screened {
        return;
    }
    let _t = traj_obs::ScopedTimer::new("soak.audit.screening").field("now", now);
    counters.screening_checks += 1;
    let standing = controller.flows().len();
    match controller.converged_state() {
        Some(state) => {
            for r in state.report().per_flow() {
                if standing > 1 && r.meets_deadline() != Some(true) {
                    counters.screening_failures += 1;
                    push_message(
                        messages,
                        format!(
                            "t={now}: screened-set re-check: flow {} wcrt {:?} vs deadline {}",
                            r.flow,
                            r.wcrt.value(),
                            r.deadline
                        ),
                    );
                }
            }
        }
        None => {
            if standing > 1 {
                counters.screening_failures += 1;
                push_message(
                    messages,
                    format!("t={now}: screened-set re-check: standing analysis diverged"),
                );
            }
        }
    }
    if let Some(cache) = controller.screen_cache() {
        if !cache.verify_against(controller.flows()) {
            counters.screening_failures += 1;
            push_message(
                messages,
                format!("t={now}: screen aggregate cache drifted from a cold rebuild"),
            );
        }
    }
}

/// Windowed bound-domination sweep: simulate the standing set for a few
/// windows and require every observation at or below its analytic
/// bound. Uses the warm state's report when available (itself audited
/// by [`bit_identity`]), falling back to a cold analysis.
pub fn bound_domination(
    controller: &mut AdmissionController,
    spec: &AuditSpec,
    seed: u64,
    now: u64,
    counters: &mut AuditCounters,
    messages: &mut Vec<String>,
) {
    let _t = traj_obs::ScopedTimer::new("soak.audit.window").field("now", now);
    let (set, bounds) = match controller.converged_state() {
        Some(state) => (state.set().clone(), state.report().bounds()),
        None => {
            let set = controller.flows().clone();
            let bounds = analyze_ef(&set, &AnalysisConfig::default()).bounds();
            (set, bounds)
        }
    };
    counters.window_checks += 1;
    let params = WindowParams {
        windows: spec.windows.max(1),
        seed: seed ^ now,
        sim: SimConfig {
            packets_per_flow: spec.window_packets.max(1),
            ..SimConfig::default()
        },
    };
    let rows = window_validate(&set, &bounds, &params);
    counters.window_flows_checked += rows.len() as u64;
    for row in rows.iter().filter(|r| !r.sound) {
        counters.bound_violations += 1;
        push_message(
            messages,
            format!(
                "t={now}: flow {} observed {} above its bound {:?}",
                row.flow, row.observed, row.bound
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    #[test]
    fn clean_controller_audits_clean() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut counters = AuditCounters::default();
        let mut messages = Vec::new();
        bit_identity(&mut ac, 0, &mut counters, &mut messages);
        assert_eq!(counters.bit_identity_checks, 1);
        assert_eq!(counters.bit_identity_failures, 0);
        assert_eq!(counters.invariant_failures, 0);
        let spec = crate::scenario::SoakScenario::smoke(1).audits;
        bound_domination(&mut ac, &spec, 42, 0, &mut counters, &mut messages);
        assert_eq!(counters.window_checks, 1);
        assert_eq!(counters.bound_violations, 0, "{messages:?}");
        assert!(counters.window_flows_checked >= 5);
        assert!(messages.is_empty());
    }

    #[test]
    fn screening_audit_is_clean_on_a_screened_controller() {
        let set = traj_model::examples::line_topology(2, 3, 4000, 4, 0, 1).unwrap();
        let mut ac = AdmissionController::new(set, AnalysisConfig::default())
            .with_tiered(TieredPolicy::Screened);
        for id in 100..106 {
            let f = traj_model::SporadicFlow::uniform(
                id,
                traj_model::Path::from_ids([1, 2, 3]).unwrap(),
                4000,
                4,
                0,
                50_000,
            )
            .unwrap();
            ac.try_admit(f);
        }
        assert!(ac.metrics().screen_hits > 0);
        let mut counters = AuditCounters::default();
        let mut messages = Vec::new();
        screening_consistency(&mut ac, 5, &mut counters, &mut messages);
        assert_eq!(counters.screening_checks, 1);
        assert_eq!(counters.screening_failures, 0, "{messages:?}");
        // Everything pending was settled by the re-check itself.
        assert_eq!(ac.pending_settlement(), 0);
    }

    #[test]
    fn screening_audit_skips_untiered_controllers() {
        let mut ac = AdmissionController::new(paper_example(), AnalysisConfig::default());
        let mut counters = AuditCounters::default();
        let mut messages = Vec::new();
        screening_consistency(&mut ac, 0, &mut counters, &mut messages);
        assert_eq!(counters.screening_checks, 0);
    }

    #[test]
    fn storm_reanalysis_matches_cold_on_the_paper_example() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let storm = FaultScenario::node_down(traj_model::NodeId(9));
        let mut counters = AuditCounters::default();
        let mut messages = Vec::new();
        storm_reanalysis(&set, &storm, &cfg, 7, &mut counters, &mut messages);
        assert_eq!(counters.reanalysis_checks, 1);
        assert_eq!(counters.reanalysis_failures, 0, "{messages:?}");
    }

    #[test]
    fn message_list_is_capped() {
        let mut messages = Vec::new();
        for i in 0..100 {
            push_message(&mut messages, format!("m{i}"));
        }
        assert_eq!(messages.len(), MAX_MESSAGES);
    }
}
