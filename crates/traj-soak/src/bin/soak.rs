//! Soak campaign runner.
//!
//! ```text
//! soak [--smoke | --full | --scenario FILE] [--seed N] [--out FILE] [--print-scenario]
//! ```
//!
//! Runs the selected scenario (default `--smoke`), prints a phase
//! summary, writes the full [`SoakReport`] as JSON (default
//! `BENCH_soak.json`) and exits non-zero when any gate is violated —
//! including a single audit failure.

use std::process::ExitCode;

use traj_soak::{run_scenario, SoakReport, SoakScenario};

struct Args {
    scenario: SoakScenario,
    out: String,
    print_scenario: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut seed: Option<u64> = None;
    let mut out = "BENCH_soak.json".to_string();
    let mut preset = "smoke".to_string();
    let mut scenario_file: Option<String> = None;
    let mut print_scenario = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => preset = "smoke".to_string(),
            "--full" => preset = "full".to_string(),
            "--scenario" => {
                scenario_file = Some(it.next().ok_or("--scenario needs a file path")?);
            }
            "--seed" => {
                let raw = it.next().ok_or("--seed needs a value")?;
                seed = Some(raw.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?);
            }
            "--out" => out = it.next().ok_or("--out needs a file path")?,
            "--print-scenario" => print_scenario = true,
            "--help" | "-h" => {
                return Err(
                    "usage: soak [--smoke | --full | --scenario FILE] [--seed N] \
                     [--out FILE] [--print-scenario]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }

    let scenario = match scenario_file {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut s = SoakScenario::from_json(&text)?;
            if let Some(seed) = seed {
                s.seed = seed;
            }
            s
        }
        None if preset == "full" => SoakScenario::full_hour(seed.unwrap_or(2006)),
        None => SoakScenario::smoke(seed.unwrap_or(2006)),
    };
    Ok(Args {
        scenario,
        out,
        print_scenario,
    })
}

fn summary_table(report: &SoakReport) -> String {
    let rows: Vec<Vec<String>> = vec![
        vec![
            "sim time".to_string(),
            format!("{:.0} s", report.sim_seconds),
            format!("wall {:.1} s", report.wall_seconds),
        ],
        vec![
            "churn".to_string(),
            format!("{} events", report.churn.events()),
            format!(
                "{} admitted / {} rejected / {} blocked",
                report.churn.admitted, report.churn.rejected, report.churn.blocked_by_fault
            ),
        ],
        vec![
            "storms".to_string(),
            format!("{} injected", report.storms.storms),
            format!(
                "{} faults, {} dropped, {} evicted, {} rerouted",
                report.storms.faults_injected,
                report.storms.dropped,
                report.storms.evicted,
                report.storms.rerouted
            ),
        ],
        vec![
            "recovery".to_string(),
            format!("{} stages", report.storms.repair_stages),
            format!(
                "{} detours restored, {} kept",
                report.storms.detours_restored, report.storms.detour_fallbacks
            ),
        ],
        vec![
            "audits".to_string(),
            format!(
                "{} bit-identity, {} reanalysis, {} window, {} screening",
                report.audits.bit_identity_checks,
                report.audits.reanalysis_checks,
                report.audits.window_checks,
                report.audits.screening_checks
            ),
            format!("{} failures", report.audit_failures()),
        ],
        vec![
            "screen".to_string(),
            format!(
                "{} hits / {} fallbacks",
                report.admission.screen_hits, report.admission.screen_fallbacks
            ),
            format!(
                "hit rate {:.2}, {} settles",
                report.screen_hit_rate, report.admission.screen_settles
            ),
        ],
        vec![
            "admit latency".to_string(),
            format!(
                "p50 {} us / p99 {} us",
                report.admit_latency.p50_us, report.admit_latency.p99_us
            ),
            format!("max {} us", report.admit_latency.max_us),
        ],
        vec![
            "flows".to_string(),
            format!("{} final", report.flows_final),
            format!("{} peak", report.flows_peak),
        ],
    ];
    traj_bench::render_table(
        &format!(
            "soak: {} (seed {})",
            report.scenario.name, report.scenario.seed
        ),
        &["phase", "volume", "detail"],
        &rows,
    )
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.print_scenario {
        println!("{}", args.scenario.to_json());
        return Ok(());
    }

    let report = run_scenario(&args.scenario)?;
    println!("{}", summary_table(&report));

    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("report serialisation failed: {e:?}"))?;
    std::fs::write(&args.out, json).map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!("report written to {}", args.out);

    for msg in &report.failure_messages {
        eprintln!("audit failure: {msg}");
    }
    let violations = report.gate_violations();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("gate violation: {v}");
        }
        return Err(format!("{} gate violation(s)", violations.len()));
    }
    println!(
        "all gates passed: {} churn events, {} storms, 0 audit failures",
        report.churn.events(),
        report.storms.storms
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("soak: {msg}");
            ExitCode::FAILURE
        }
    }
}
