//! Churn + fault-storm soak engine for the trajectory-analysis stack.
//!
//! This crate drives the warm incremental admission machinery
//! ([`traj_diffserv::AdmissionController`]) through hours of simulated
//! time — flow arrival/departure churn, correlated fault storms with
//! spatial locality, staged repair with flows re-routed back — while
//! continuously auditing the warm state against cold re-analysis,
//! bit for bit, and the analytic bounds against simulation.
//!
//! * [`scenario`] — the seedable scenario DSL ([`SoakScenario`]);
//! * [`driver`] — the deterministic event loop ([`run_scenario`]);
//! * [`audit`] — the three continuous audit families;
//! * [`report`] — the regression-gated [`SoakReport`]
//!   (`BENCH_soak.json`).
//!
//! The `soak` binary wraps [`run_scenario`] with a small CLI; see
//! `EXPERIMENTS.md` E17 and `DESIGN.md` §12.

pub mod audit;
pub mod driver;
pub mod report;
pub mod scenario;

pub use driver::run_scenario;
pub use report::{AuditCounters, ChurnCounters, LatencySummary, SoakReport, StormCounters};
pub use scenario::{
    AuditSpec, ChurnSpec, FlowTemplate, GateSpec, RecoverySpec, SoakScenario, StormSpec,
    TopologySpec,
};
