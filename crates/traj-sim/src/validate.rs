//! Bound-validation harness: analytical upper bound vs observed worst
//! case, per flow.
//!
//! The soundness contract of every analysis in this workspace is
//! `observed ≤ bound` for any legal scenario. [`validate_bounds`] runs the
//! adversarial search and checks the contract, returning the margin
//! (`bound − observed`, the bracket on the bound's pessimism).

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId, FlowSet};

use crate::adversary::{adversarial_search, AdversaryParams};

/// One flow's validation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationRow {
    /// The flow.
    pub flow: FlowId,
    /// Analytical upper bound (`None` when the analysis diverged).
    pub bound: Option<Duration>,
    /// Worst response the adversary observed.
    pub observed: Duration,
    /// `bound − observed` when both exist.
    pub margin: Option<Duration>,
    /// The soundness contract: observed ≤ bound (vacuously true when the
    /// analysis declared the flow unbounded).
    pub sound: bool,
}

/// Validates a vector of per-flow bounds (flow-set order) against the
/// adversarial simulation.
pub fn validate_bounds(
    set: &FlowSet,
    bounds: &[Option<Duration>],
    params: &AdversaryParams,
) -> Vec<ValidationRow> {
    assert_eq!(bounds.len(), set.len());
    let adv = adversarial_search(set, params);
    set.flows()
        .iter()
        .zip(bounds)
        .zip(&adv.observed)
        .map(|((f, bound), &observed)| ValidationRow {
            flow: f.id,
            bound: *bound,
            observed,
            margin: bound.map(|b| b - observed),
            sound: bound.map(|b| observed <= b).unwrap_or(true),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::{analyze_all, AnalysisConfig};
    use traj_model::examples::paper_example;
    use traj_model::gen::{random_mesh, MeshParams};

    #[test]
    fn paper_example_bounds_validate() {
        let set = paper_example();
        let report = analyze_all(&set, &AnalysisConfig::default());
        let rows = validate_bounds(
            &set,
            &report.bounds(),
            &AdversaryParams {
                trials: 40,
                ..Default::default()
            },
        );
        for r in &rows {
            assert!(
                r.sound,
                "flow {}: observed {} > bound {:?}",
                r.flow, r.observed, r.bound
            );
            assert!(r.margin.unwrap() >= 0);
        }
    }

    #[test]
    fn random_meshes_validate() {
        // Randomised soak: for several seeds, the trajectory bound must
        // dominate everything the adversary can produce.
        for seed in [1u64, 2, 3] {
            let set = random_mesh(
                seed,
                &MeshParams {
                    flows: 6,
                    nodes: 8,
                    max_utilisation: 0.6,
                    ..Default::default()
                },
            )
            .unwrap();
            let report = analyze_all(&set, &AnalysisConfig::default());
            let rows = validate_bounds(
                &set,
                &report.bounds(),
                &AdversaryParams {
                    trials: 15,
                    ..Default::default()
                },
            );
            for r in rows {
                assert!(
                    r.sound,
                    "seed {seed} flow {}: observed {} > bound {:?}",
                    r.flow, r.observed, r.bound
                );
            }
        }
    }
}
