//! Packet release patterns.
//!
//! A sporadic flow of period `T` with release jitter `J` may release its
//! `k`-th packet at any `offset + k·T' + j` with `T' ≥ T` and `j ∈ [0, J]`.
//! The patterns here cover the deterministic corners used by the
//! adversarial search and randomised soak testing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_model::{SporadicFlow, Tick};

/// How a flow releases packets during a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReleasePattern {
    /// Strictly periodic from `offset` (the densest legal pattern).
    Periodic {
        /// Phase of the first release.
        offset: Tick,
    },
    /// Periodic base releases, each delayed by an independent random
    /// jitter in `[0, Jᵢ]`.
    JitteredPeriodic {
        /// Phase of the first release.
        offset: Tick,
        /// RNG seed for the per-packet jitters.
        seed: u64,
    },
    /// Sporadic: inter-arrival `Tᵢ + gap`, gaps uniform in `[0, max_gap]`.
    Sporadic {
        /// Phase of the first release.
        offset: Tick,
        /// Largest extra gap.
        max_gap: i64,
        /// RNG seed for the gaps.
        seed: u64,
    },
    /// Explicit release instants (must be non-decreasing and respect the
    /// period; validated by [`ReleasePattern::releases`] in debug builds).
    Explicit(Vec<Tick>),
}

impl ReleasePattern {
    /// The first `n` release instants of `flow` under this pattern.
    pub fn releases(&self, flow: &SporadicFlow, n: usize) -> Vec<Tick> {
        match self {
            ReleasePattern::Periodic { offset } => {
                (0..n as i64).map(|k| offset + k * flow.period).collect()
            }
            ReleasePattern::JitteredPeriodic { offset, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..n as i64)
                    .map(|k| {
                        let j = if flow.jitter > 0 {
                            rng.gen_range(0..=flow.jitter)
                        } else {
                            0
                        };
                        offset + k * flow.period + j
                    })
                    .collect()
            }
            ReleasePattern::Sporadic {
                offset,
                max_gap,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = *offset;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(t);
                    let gap = if *max_gap > 0 {
                        rng.gen_range(0..=*max_gap)
                    } else {
                        0
                    };
                    t += flow.period + gap;
                }
                out
            }
            ReleasePattern::Explicit(v) => {
                let out: Vec<Tick> = v.iter().copied().take(n).collect();
                debug_assert!(
                    out.windows(2).all(|w| w[1] - w[0] >= flow.period),
                    "explicit releases violate the minimum inter-arrival time"
                );
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::Path;

    fn flow(period: i64, jitter: i64) -> SporadicFlow {
        SporadicFlow::uniform(1, Path::from_ids([1, 2]).unwrap(), period, 2, jitter, 99).unwrap()
    }

    #[test]
    fn periodic_releases() {
        let f = flow(10, 0);
        let r = ReleasePattern::Periodic { offset: 3 }.releases(&f, 4);
        assert_eq!(r, vec![3, 13, 23, 33]);
    }

    #[test]
    fn jittered_releases_stay_in_window_and_are_deterministic() {
        let f = flow(10, 4);
        let p = ReleasePattern::JitteredPeriodic { offset: 0, seed: 5 };
        let a = p.releases(&f, 50);
        let b = p.releases(&f, 50);
        assert_eq!(a, b);
        for (k, t) in a.iter().enumerate() {
            let base = k as i64 * 10;
            assert!(*t >= base && *t <= base + 4, "release {k} at {t}");
        }
    }

    #[test]
    fn sporadic_respects_min_interarrival() {
        let f = flow(10, 0);
        let r = ReleasePattern::Sporadic {
            offset: 0,
            max_gap: 7,
            seed: 1,
        }
        .releases(&f, 30);
        for w in r.windows(2) {
            assert!(w[1] - w[0] >= 10);
            assert!(w[1] - w[0] <= 17);
        }
    }

    #[test]
    fn explicit_passthrough() {
        let f = flow(5, 0);
        let r = ReleasePattern::Explicit(vec![0, 5, 11]).releases(&f, 2);
        assert_eq!(r, vec![0, 5]);
    }
}
