//! Per-packet event traces and busy-period reconstruction.
//!
//! The paper's Figure 2 illustrates the worst-case trajectory as a chain
//! of busy periods linked backwards from the last node to the ingress.
//! [`TraceRecorder`] captures every queueing/service event of a run so
//! that exactly this structure can be *observed*: for a delivered packet,
//! [`Trace::trajectory`] extracts its per-hop timeline, and
//! [`Trace::busy_periods`] reconstructs the maximal busy intervals of a
//! node's server — the empirical counterpart of the `bp_h` chains in the
//! analysis.

use serde::{Deserialize, Serialize};
use traj_model::{FlowId, NodeId, Tick};

/// One recorded event in a packet's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Entered a node's queue.
    Enqueued,
    /// Started service at a node.
    ServiceStart,
    /// Completed service at a node.
    ServiceEnd,
}

/// A single trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event time.
    pub time: Tick,
    /// Node where it happened.
    pub node: NodeId,
    /// The packet's flow.
    pub flow: FlowId,
    /// The packet's sequence number within the flow.
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Collects events during a simulation run.
#[derive(Debug, Default, Clone)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records one event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Finalises into an immutable, time-sorted [`Trace`].
    pub fn finish(mut self) -> Trace {
        self.events.sort_by_key(|e| (e.time, e.node, e.flow, e.seq));
        Trace {
            events: self.events,
        }
    }
}

/// An immutable, queryable event trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// One hop of a packet's observed trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopTimeline {
    /// The node.
    pub node: NodeId,
    /// Arrival (enqueue) time.
    pub arrival: Tick,
    /// Service start.
    pub start: Tick,
    /// Service completion.
    pub end: Tick,
}

impl HopTimeline {
    /// Queueing delay at this hop.
    pub fn queueing(&self) -> Tick {
        self.start - self.arrival
    }
}

/// A maximal busy interval of one node's server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyPeriod {
    /// The node.
    pub node: NodeId,
    /// First service start of the interval.
    pub start: Tick,
    /// Last service end of the interval.
    pub end: Tick,
    /// Packets served, in service order.
    pub packets: Vec<(FlowId, u64)>,
}

impl BusyPeriod {
    /// Length of the interval.
    pub fn len(&self) -> Tick {
        self.end - self.start
    }

    /// Busy periods are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Trace {
    /// All events, time-sorted.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The per-hop timeline of one packet, in path order; empty when the
    /// packet never appears.
    pub fn trajectory(&self, flow: FlowId, seq: u64) -> Vec<HopTimeline> {
        let mut hops: Vec<HopTimeline> = Vec::new();
        let mut pending: Option<(NodeId, Tick, Option<Tick>)> = None;
        for e in self
            .events
            .iter()
            .filter(|e| e.flow == flow && e.seq == seq)
        {
            match e.kind {
                TraceEventKind::Enqueued => {
                    pending = Some((e.node, e.time, None));
                }
                TraceEventKind::ServiceStart => {
                    if let Some((n, _, start)) = &mut pending {
                        if *n == e.node {
                            *start = Some(e.time);
                        }
                    }
                }
                TraceEventKind::ServiceEnd => {
                    if let Some((n, arrival, Some(start))) = pending {
                        if n == e.node {
                            hops.push(HopTimeline {
                                node: n,
                                arrival,
                                start,
                                end: e.time,
                            });
                            pending = None;
                        }
                    }
                }
            }
        }
        hops
    }

    /// Reconstructs the maximal busy periods of one node: consecutive
    /// services with no idle gap between a completion and the next start.
    pub fn busy_periods(&self, node: NodeId) -> Vec<BusyPeriod> {
        let mut services: Vec<(Tick, Tick, FlowId, u64)> = Vec::new();
        let mut open: std::collections::HashMap<(FlowId, u64), Tick> = Default::default();
        for e in self.events.iter().filter(|e| e.node == node) {
            match e.kind {
                TraceEventKind::ServiceStart => {
                    open.insert((e.flow, e.seq), e.time);
                }
                TraceEventKind::ServiceEnd => {
                    if let Some(start) = open.remove(&(e.flow, e.seq)) {
                        services.push((start, e.time, e.flow, e.seq));
                    }
                }
                TraceEventKind::Enqueued => {}
            }
        }
        services.sort_unstable();
        let mut out: Vec<BusyPeriod> = Vec::new();
        for (start, end, flow, seq) in services {
            match out.last_mut() {
                Some(bp) if bp.end == start => {
                    bp.end = end;
                    bp.packets.push((flow, seq));
                }
                _ => out.push(BusyPeriod {
                    node,
                    start,
                    end,
                    packets: vec![(flow, seq)],
                }),
            }
        }
        out
    }

    /// Renders a packet's trajectory as a human-readable timeline
    /// (used by the walkthrough example).
    pub fn render_trajectory(&self, flow: FlowId, seq: u64) -> String {
        let hops = self.trajectory(flow, seq);
        if hops.is_empty() {
            return format!("packet ({flow}, {seq}): not observed");
        }
        let mut s = format!("packet ({flow}, {seq}):\n");
        for h in &hops {
            s.push_str(&format!(
                "  node {:>3}: arrive {:>5}, wait {:>3}, serve [{:>5}, {:>5})\n",
                h.node,
                h.arrival,
                h.queueing(),
                h.start,
                h.end
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: Tick, node: u32, flow: u32, seq: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            time,
            node: NodeId(node),
            flow: FlowId(flow),
            seq,
            kind,
        }
    }

    fn sample() -> Trace {
        let mut r = TraceRecorder::new();
        use TraceEventKind::*;
        // Packet (1,0): node 1 [0,4), node 2 arrives 5, waits 3, [8,12).
        r.record(ev(0, 1, 1, 0, Enqueued));
        r.record(ev(0, 1, 1, 0, ServiceStart));
        r.record(ev(4, 1, 1, 0, ServiceEnd));
        r.record(ev(5, 2, 1, 0, Enqueued));
        r.record(ev(8, 2, 1, 0, ServiceStart));
        r.record(ev(12, 2, 1, 0, ServiceEnd));
        // Rival packet (2,0) on node 2: [4,8) - makes [4,12) one busy period.
        r.record(ev(4, 2, 2, 0, Enqueued));
        r.record(ev(4, 2, 2, 0, ServiceStart));
        r.record(ev(8, 2, 2, 0, ServiceEnd));
        r.finish()
    }

    #[test]
    fn trajectory_extraction() {
        let t = sample();
        let hops = t.trajectory(FlowId(1), 0);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].node, NodeId(1));
        assert_eq!(hops[0].queueing(), 0);
        assert_eq!(hops[1].queueing(), 3);
        assert_eq!(hops[1].end, 12);
        assert!(t.trajectory(FlowId(9), 0).is_empty());
    }

    #[test]
    fn busy_period_reconstruction() {
        let t = sample();
        let bps = t.busy_periods(NodeId(2));
        assert_eq!(
            bps.len(),
            1,
            "contiguous services merge into one busy period"
        );
        assert_eq!(bps[0].start, 4);
        assert_eq!(bps[0].end, 12);
        assert_eq!(bps[0].packets, vec![(FlowId(2), 0), (FlowId(1), 0)]);
        assert_eq!(bps[0].len(), 8);

        let bps1 = t.busy_periods(NodeId(1));
        assert_eq!(bps1.len(), 1);
        assert_eq!(bps1[0].len(), 4);
    }

    #[test]
    fn idle_gaps_split_busy_periods() {
        let mut r = TraceRecorder::new();
        use TraceEventKind::*;
        r.record(ev(0, 1, 1, 0, ServiceStart));
        r.record(ev(4, 1, 1, 0, ServiceEnd));
        r.record(ev(6, 1, 1, 1, ServiceStart));
        r.record(ev(10, 1, 1, 1, ServiceEnd));
        let t = r.finish();
        assert_eq!(t.busy_periods(NodeId(1)).len(), 2);
    }

    #[test]
    fn render_is_stable() {
        let t = sample();
        let s = t.render_trajectory(FlowId(1), 0);
        assert!(s.contains("node"), "render: {s}");
        assert!(s.contains("wait"), "render: {s}");
        assert!(
            s.contains(", wait   3,") || s.contains("wait   3"),
            "render: {s}"
        );
        assert!(t.render_trajectory(FlowId(7), 3).contains("not observed"));
    }
}
