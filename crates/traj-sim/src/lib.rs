//! Discrete-event network simulator for FIFO / DiffServ store-and-forward
//! networks.
//!
//! The paper's evaluation is purely analytical; this crate supplies the
//! missing empirical substrate (DESIGN.md §3): it realises exactly the
//! paper's network model — per-node non-preemptive servers, FIFO links
//! with delays in `[Lmin, Lmax]`, sporadic sources with release jitter —
//! and measures actual end-to-end response times, so that every analytical
//! bound can be checked against observed behaviour (`observed ≤ bound`).
//!
//! * [`engine`] — the event-driven simulator core;
//! * [`scheduler`] — queue disciplines: FIFO, and the paper's Figure 3
//!   DiffServ router (fixed priority for EF, start-time fair queueing
//!   among AF/best-effort);
//! * [`source`] — release patterns (periodic with offsets, bounded release
//!   jitter, sporadic gaps);
//! * [`adversary`] — randomised offset search for near-worst-case
//!   scenarios;
//! * [`fault_adversary`] — link/node-failure trials validating the
//!   survivors against the recomputed degraded bounds;
//! * [`validate`] — the harness comparing observed worst cases against
//!   analytical bounds;
//! * [`window`] — cheap whole-set simulation windows checking bound
//!   domination inside long-running soak loops.

pub mod adversary;
pub mod engine;
pub mod fault_adversary;
pub mod scheduler;
pub mod source;
pub mod stats;
pub mod trace;
pub mod validate;
pub mod window;

pub use adversary::{adversarial_search, AdversaryParams};
pub use engine::{DelayPolicy, SimConfig, Simulator, TieBreak};
pub use fault_adversary::{
    fault_adversary, fault_trial, random_link_scenarios, used_links, FaultTrialOutcome,
};
pub use scheduler::SchedulerKind;
pub use source::ReleasePattern;
pub use stats::{FlowStats, SimOutcome};
pub use trace::{BusyPeriod, HopTimeline, Trace, TraceRecorder};
pub use validate::{validate_bounds, ValidationRow};
pub use window::{window_validate, WindowParams};
