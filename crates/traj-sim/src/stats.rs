//! Simulation outcome: per-flow response-time statistics.

use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowId};

/// Response-time statistics of one flow over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowStats {
    /// The flow.
    pub flow: FlowId,
    /// Delivered packets.
    pub delivered: u64,
    /// Worst observed end-to-end response time.
    pub max_response: Duration,
    /// Best observed end-to-end response time.
    pub min_response: Duration,
    /// Sum of response times (for the mean).
    pub total_response: i64,
}

impl FlowStats {
    pub(crate) fn empty(flow: FlowId) -> Self {
        FlowStats {
            flow,
            delivered: 0,
            max_response: 0,
            min_response: i64::MAX,
            total_response: 0,
        }
    }

    pub(crate) fn record(&mut self, response: Duration) {
        self.delivered += 1;
        self.max_response = self.max_response.max(response);
        self.min_response = self.min_response.min(response);
        self.total_response += response;
    }

    /// Mean response time, `None` before any delivery.
    pub fn mean_response(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_response as f64 / self.delivered as f64)
    }

    /// Observed end-to-end jitter (max − min response).
    pub fn observed_jitter(&self) -> Duration {
        if self.delivered == 0 {
            0
        } else {
            self.max_response - self.min_response
        }
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Per-flow statistics, in flow-set order.
    pub flows: Vec<FlowStats>,
    /// Total simulated ticks.
    pub horizon: i64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Largest observed backlog per node (queued work in ticks, including
    /// the packet in service), keyed by node id. Cross-validated against
    /// the network-calculus backlog bound in the integration tests.
    pub max_backlog: std::collections::HashMap<u32, i64>,
}

impl SimOutcome {
    /// Stats of one flow.
    pub fn for_flow(&self, flow: FlowId) -> Option<&FlowStats> {
        self.flows.iter().find(|s| s.flow == flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_extrema() {
        let mut s = FlowStats::empty(FlowId(1));
        assert_eq!(s.mean_response(), None);
        s.record(10);
        s.record(4);
        s.record(7);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.max_response, 10);
        assert_eq!(s.min_response, 4);
        assert_eq!(s.mean_response(), Some(7.0));
        assert_eq!(s.observed_jitter(), 6);
    }
}
