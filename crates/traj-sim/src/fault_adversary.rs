//! Fault-injection adversary: kill links or nodes, re-derive the
//! degraded analytical bounds, and verify that everything the simulator
//! can observe from the survivors stays under them.
//!
//! A trial has two regimes. Before the fault the healthy bounds govern;
//! after it, packets in flight through the failed element are lost and
//! the network settles into the degraded steady state, where the
//! *recomputed* bounds of [`analyze_degraded`] govern the survivors
//! (rerouted flows included). The adversarial offset search runs against
//! each regime independently — the post-fault regime is where a stale
//! healthy bound would silently under-promise, which is exactly the
//! soundness hole this module exists to catch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_analysis::{analyze_degraded, AnalysisConfig};
use traj_model::{Duration, FaultScenario, FlowId, FlowSet, NodeId};

use crate::adversary::AdversaryParams;
use crate::validate::{validate_bounds, ValidationRow};

/// Outcome of one fault-injection trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultTrialOutcome {
    /// The injected scenario.
    pub scenario: FaultScenario,
    /// Flows the fault disconnected (no surviving route).
    pub dropped: Vec<FlowId>,
    /// Flows rerouted around the fault.
    pub rerouted: Vec<FlowId>,
    /// Per-survivor validation against the *degraded* bounds.
    pub rows: Vec<ValidationRow>,
    /// Whether every survivor honoured its recomputed bound.
    pub sound: bool,
}

/// Runs one fault trial: applies `scenario` to `set`, recomputes the
/// degraded bounds, and turns the adversary loose on the surviving
/// (possibly rerouted) flows. Returns `None` when the scenario cannot be
/// simulated — e.g. it disconnects every flow.
pub fn fault_trial(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    scenario: &FaultScenario,
    params: &AdversaryParams,
) -> Option<FaultTrialOutcome> {
    let degraded = scenario.apply(set).ok()?;
    let survivors = degraded.surviving_set().ok()?;
    let report = analyze_degraded(&degraded, cfg);
    let bounds: Vec<Option<Duration>> = survivors
        .flows()
        .iter()
        .map(|f| report.for_flow(f.id).and_then(|r| r.wcrt.value()))
        .collect();
    let rows = validate_bounds(&survivors, &bounds, params);
    let sound = rows.iter().all(|r| r.sound);
    let dropped = degraded
        .dropped()
        .into_iter()
        .map(|i| degraded.set.flows()[i].id)
        .collect();
    let rerouted = degraded
        .rerouted()
        .into_iter()
        .map(|i| degraded.set.flows()[i].id)
        .collect();
    Some(FaultTrialOutcome {
        scenario: scenario.clone(),
        dropped,
        rerouted,
        rows,
        sound,
    })
}

/// Runs a batch of fault trials; scenarios that disconnect everything
/// are skipped.
pub fn fault_adversary(
    set: &FlowSet,
    cfg: &AnalysisConfig,
    scenarios: &[FaultScenario],
    params: &AdversaryParams,
) -> Vec<FaultTrialOutcome> {
    scenarios
        .iter()
        .filter_map(|sc| fault_trial(set, cfg, sc, params))
        .collect()
}

/// Every directed link actually traversed by some flow, deduplicated in
/// first-use order — the interesting targets for link-failure trials.
pub fn used_links(set: &FlowSet) -> Vec<(NodeId, NodeId)> {
    let mut seen = Vec::new();
    for f in set.flows() {
        for link in f.path.links() {
            if !seen.contains(&link) {
                seen.push(link);
            }
        }
    }
    seen
}

/// Samples `count` single-link failure scenarios among the links flows
/// actually use. Deterministic in `seed`.
pub fn random_link_scenarios(set: &FlowSet, count: usize, seed: u64) -> Vec<FaultScenario> {
    let links = used_links(set);
    if links.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let (from, to) = links[rng.gen_range(0..links.len())];
            FaultScenario::link_down(from, to)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::paper_example;

    fn quick_params() -> AdversaryParams {
        AdversaryParams {
            trials: 25,
            ..Default::default()
        }
    }

    #[test]
    fn survivors_stay_under_recomputed_bounds_for_every_link() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        for (from, to) in used_links(&set) {
            let sc = FaultScenario::link_down(from, to);
            let Some(out) = fault_trial(&set, &cfg, &sc, &quick_params()) else {
                continue;
            };
            assert!(
                out.sound,
                "link {from}->{to}: a survivor exceeded its degraded bound: {:?}",
                out.rows
            );
        }
    }

    #[test]
    fn node_failure_drops_disconnected_flows_and_validates_the_rest() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let out = fault_trial(
            &set,
            &cfg,
            &FaultScenario::node_down(NodeId(9)),
            &quick_params(),
        )
        .unwrap();
        assert!(out.dropped.contains(&FlowId(2)));
        assert!(out.sound);
        assert!(out.rows.iter().all(|r| r.flow != FlowId(2)));
    }

    #[test]
    fn degraded_bounds_differ_from_healthy_where_reroutes_add_load() {
        // The fault-adversary contract is only meaningful if the degraded
        // bounds actually move; otherwise we would be re-validating the
        // healthy analysis.
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let healthy = traj_analysis::analyze_all(&set, &cfg);
        let mut moved = false;
        for (from, to) in used_links(&set) {
            let sc = FaultScenario::link_down(from, to);
            let Ok(degraded) = sc.apply(&set) else {
                continue;
            };
            let report = analyze_degraded(&degraded, &cfg);
            for (h, d) in healthy.per_flow().iter().zip(report.per_flow()) {
                if h.wcrt != d.wcrt {
                    moved = true;
                }
            }
        }
        assert!(moved, "no link failure perturbed any bound");
    }

    #[test]
    fn random_scenarios_are_deterministic_in_the_seed() {
        let set = paper_example();
        let a = random_link_scenarios(&set, 6, 7);
        let b = random_link_scenarios(&set, 6, 7);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn batch_runner_covers_all_trials() {
        let set = paper_example();
        let cfg = AnalysisConfig::default();
        let scenarios = random_link_scenarios(&set, 4, 11);
        let outs = fault_adversary(&set, &cfg, &scenarios, &quick_params());
        assert!(!outs.is_empty());
        assert!(outs.iter().all(|o| o.sound));
    }
}
