//! Randomised adversarial search for near-worst-case scenarios.
//!
//! The analytical bounds are *upper* bounds; the adversary produces
//! *lower* bounds on the true worst case by searching over release
//! offsets and tie-breaking policies. The gap between the two brackets
//! the bound's pessimism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowSet, Tick};

use traj_model::SminMode;

use crate::engine::{SimConfig, Simulator, TieBreak};

/// Search parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversaryParams {
    /// Random offset vectors tried.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Base simulation configuration (tie-break is overridden per victim).
    pub sim: SimConfig,
}

impl Default for AdversaryParams {
    fn default() -> Self {
        AdversaryParams {
            trials: 200,
            seed: 0xFEED,
            sim: SimConfig::default(),
        }
    }
}

/// Result of the adversarial search for one flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversaryResult {
    /// Worst response observed for each flow (flow-set order).
    pub observed: Vec<Duration>,
    /// The offset vector achieving each flow's worst case.
    pub witness_offsets: Vec<Vec<Tick>>,
}

/// Structured offset candidates for a victim flow: align each
/// interfering flow's release so that its packet reaches the node where
/// it first meets the victim's path at the same instant as the victim's
/// packet (computed from the minimum traversal times `Smin`), plus small
/// perturbations. These are the release patterns the trajectory proof's
/// worst case is built from.
pub fn guided_candidates(set: &FlowSet, victim: usize) -> Vec<Vec<Tick>> {
    let n = set.len();
    let vf = &set.flows()[victim];
    let mut base = vec![0i64; n];
    for (j, fj) in set.flows().iter().enumerate() {
        if j == victim || !set.crosses(fj, &vf.path) {
            continue;
        }
        let merge = set.first_on(fj, &vf.path).expect("crossing checked");
        let v_arr = set
            .smin(vf, merge, SminMode::ProcessingAndLink)
            .unwrap_or(0);
        let j_arr = set
            .smin(fj, merge, SminMode::ProcessingAndLink)
            .unwrap_or(0);
        base[j] = (v_arr - j_arr).rem_euclid(fj.period);
    }
    let mut out = vec![base.clone()];
    for delta in [-2i64, -1, 1, 2] {
        let mut v = base.clone();
        for (j, fj) in set.flows().iter().enumerate() {
            if j != victim {
                v[j] = (v[j] + delta).rem_euclid(fj.period);
            }
        }
        out.push(v);
    }
    out
}

/// Searches release-offset vectors — the all-zeros corner, the
/// analysis-guided alignments of [`guided_candidates`], and random
/// vectors — for the worst observed response time of every flow, trying
/// victim-last tie-breaking for each flow in turn. Trials run in
/// parallel.
pub fn adversarial_search(set: &FlowSet, p: &AdversaryParams) -> AdversaryResult {
    let n = set.len();
    let max_period = set.flows().iter().map(|f| f.period).max().unwrap_or(1);

    // Offset candidates: all-zeros, guided alignments, random vectors.
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut candidates: Vec<Vec<Tick>> = vec![vec![0; n]];
    for victim in 0..n {
        candidates.extend(guided_candidates(set, victim));
    }
    for _ in 0..p.trials {
        candidates.push((0..n).map(|_| rng.gen_range(0..max_period)).collect());
    }

    let per_candidate: Vec<Vec<Duration>> = candidates
        .par_iter()
        .map(|offsets| {
            (0..n)
                .map(|victim| {
                    let cfg = SimConfig {
                        tie_break: TieBreak::VictimLast(victim),
                        ..p.sim.clone()
                    };
                    let out = Simulator::new(set, cfg).run_periodic(offsets);
                    out.flows[victim].max_response
                })
                .collect::<Vec<Duration>>()
        })
        .collect();

    let mut observed = vec![0; n];
    let mut witness_offsets = vec![vec![0; n]; n];
    for (ci, worst) in per_candidate.iter().enumerate() {
        for v in 0..n {
            if worst[v] > observed[v] {
                observed[v] = worst[v];
                witness_offsets[v] = candidates[ci].clone();
            }
        }
    }
    AdversaryResult {
        observed,
        witness_offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn adversary_finds_the_single_node_worst_case() {
        // 3 flows, 1 node: true worst case is 3*C = 21 (simultaneous
        // release, victim last) and the all-zeros corner finds it.
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let r = adversarial_search(
            &set,
            &AdversaryParams {
                trials: 10,
                ..Default::default()
            },
        );
        assert_eq!(r.observed, vec![21, 21, 21]);
    }

    #[test]
    fn observed_never_exceeds_trajectory_bound() {
        let set = paper_example();
        let p = AdversaryParams {
            trials: 60,
            ..Default::default()
        };
        let r = adversarial_search(&set, &p);
        let bounds = [31, 37, 47, 47, 40];
        for (i, (o, b)) in r.observed.iter().zip(bounds).enumerate() {
            assert!(*o <= b, "flow {i}: observed {o} > bound {b}");
            assert!(*o > 0);
        }
    }

    #[test]
    fn guided_candidates_align_at_merge_points() {
        let set = paper_example();
        // Victim tau_1 merges with tau_3/4/5 at node 3; the victim reaches
        // it at Smin = 5, the interferers at their offset + 5: aligned
        // offsets are 0.
        let g = guided_candidates(&set, 0);
        assert!(!g.is_empty());
        assert_eq!(g[0][2], 0);
        // Guided search is at least as good as pure random with the same
        // budget on the paper example.
        let guided = adversarial_search(
            &set,
            &AdversaryParams {
                trials: 0,
                ..Default::default()
            },
        );
        for (i, o) in guided.observed.iter().enumerate() {
            assert!(*o > 0, "flow {i} never measured");
        }
    }

    #[test]
    fn witnesses_reproduce_the_observation() {
        let set = paper_example();
        let p = AdversaryParams {
            trials: 30,
            ..Default::default()
        };
        let r = adversarial_search(&set, &p);
        for victim in 0..set.len() {
            let cfg = SimConfig {
                tie_break: TieBreak::VictimLast(victim),
                ..p.sim.clone()
            };
            let out = Simulator::new(&set, cfg).run_periodic(&r.witness_offsets[victim]);
            assert_eq!(out.flows[victim].max_response, r.observed[victim]);
        }
    }
}
