//! Queue disciplines for the node servers.
//!
//! Two disciplines cover the paper:
//!
//! * [`SchedulerKind::Fifo`] — the §4 model: one queue ordered by arrival
//!   time (ties broken by an explicit key so adversarial tie-breaking is
//!   reproducible);
//! * [`SchedulerKind::DiffServ`] — the §6 / Figure 3 router: the EF class
//!   is served at fixed priority (FIFO within the class); AF and
//!   best-effort packets share the remaining capacity under start-time
//!   fair queueing (a standard practical WFQ approximation), and service
//!   is non-preemptive: an EF arrival waits for the residual transmission.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use traj_model::Tick;

/// A packet waiting in a node queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Index of the flow in the flow set.
    pub flow_idx: usize,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Arrival time at this node.
    pub arrival: Tick,
    /// Tie-breaking key for simultaneous arrivals (smaller first).
    pub tie_key: u64,
    /// Remaining hops (index into the path).
    pub hop: usize,
    /// Service demand at this node.
    pub cost: i64,
    /// Scheduling band: 0 = EF (or everything for plain FIFO), 1 = lower.
    pub band: u8,
    /// WFQ weight of the packet's class (used in band 1).
    pub weight: u32,
}

/// Which discipline a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Single FIFO queue for all packets (paper §4).
    #[default]
    Fifo,
    /// EF at fixed priority over a fair-queued lower band (paper §6).
    DiffServ,
}

/// Node queue state.
#[derive(Debug)]
pub struct NodeQueue {
    kind: SchedulerKind,
    fifo: VecDeque<QueuedPacket>,
    /// Lower band under start-time fair queueing: (start_tag, packet).
    lower: Vec<(u64, QueuedPacket)>,
    /// SFQ virtual time: start tag of the last dequeued lower packet.
    virtual_time: u64,
    /// Per-weight-class last finish tag (indexed by band-1 class weight).
    last_finish: std::collections::HashMap<u32, u64>,
}

impl NodeQueue {
    /// An empty queue of the given discipline.
    pub fn new(kind: SchedulerKind) -> Self {
        NodeQueue {
            kind,
            fifo: VecDeque::new(),
            lower: Vec::new(),
            virtual_time: 0,
            last_finish: std::collections::HashMap::new(),
        }
    }

    /// Whether no packet waits.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.lower.is_empty()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.fifo.len() + self.lower.len()
    }

    /// Enqueues a packet.
    pub fn push(&mut self, p: QueuedPacket) {
        match (self.kind, p.band) {
            (SchedulerKind::Fifo, _) | (SchedulerKind::DiffServ, 0) => {
                // FIFO insertion ordered by (arrival, tie_key); packets
                // arrive mostly in order so scan from the back.
                let pos = self
                    .fifo
                    .iter()
                    .rposition(|q| (q.arrival, q.tie_key) <= (p.arrival, p.tie_key))
                    .map(|i| i + 1)
                    .unwrap_or(0);
                self.fifo.insert(pos, p);
            }
            (SchedulerKind::DiffServ, _) => {
                // SFQ: start tag = max(virtual time, class's last finish).
                let lf = self.last_finish.entry(p.weight).or_insert(0);
                let start = (*lf).max(self.virtual_time);
                let finish = start + (p.cost as u64 * 1000) / p.weight.max(1) as u64;
                *lf = finish;
                self.lower.push((start, p));
            }
        }
    }

    /// Dequeues the next packet to serve (non-preemptive: the engine only
    /// calls this when the server is idle).
    pub fn pop(&mut self) -> Option<QueuedPacket> {
        if let Some(p) = self.fifo.pop_front() {
            return Some(p);
        }
        if self.lower.is_empty() {
            return None;
        }
        // Smallest start tag; ties by (arrival, tie_key) for determinism.
        let (idx, _) = self
            .lower
            .iter()
            .enumerate()
            .min_by_key(|(_, (tag, p))| (*tag, p.arrival, p.tie_key))
            .expect("non-empty");
        let (tag, p) = self.lower.remove(idx);
        self.virtual_time = self.virtual_time.max(tag);
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize, arrival: Tick, tie: u64, band: u8, weight: u32) -> QueuedPacket {
        QueuedPacket {
            flow_idx: flow,
            seq: 0,
            arrival,
            tie_key: tie,
            hop: 0,
            cost: 4,
            band,
            weight,
        }
    }

    #[test]
    fn fifo_orders_by_arrival_then_tie_key() {
        let mut q = NodeQueue::new(SchedulerKind::Fifo);
        q.push(pkt(1, 10, 0, 0, 1));
        q.push(pkt(2, 5, 9, 0, 1));
        q.push(pkt(3, 5, 1, 0, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().flow_idx, 3);
        assert_eq!(q.pop().unwrap().flow_idx, 2);
        assert_eq!(q.pop().unwrap().flow_idx, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn diffserv_ef_preempts_queueing_order_not_service() {
        let mut q = NodeQueue::new(SchedulerKind::DiffServ);
        q.push(pkt(1, 0, 0, 1, 10)); // best effort, arrived first
        q.push(pkt(2, 3, 0, 0, 1)); // EF, arrived later
        assert_eq!(q.pop().unwrap().flow_idx, 2, "EF band served first");
        assert_eq!(q.pop().unwrap().flow_idx, 1);
    }

    #[test]
    fn sfq_shares_by_weight() {
        let mut q = NodeQueue::new(SchedulerKind::DiffServ);
        // Two classes, weight 2 vs 1, three packets each, same arrivals.
        for s in 0..3 {
            q.push(QueuedPacket {
                seq: s,
                ..pkt(1, 0, 1, 1, 2)
            });
            q.push(QueuedPacket {
                seq: s,
                ..pkt(2, 0, 2, 1, 1)
            });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|p| p.flow_idx)).collect();
        // Weight-2 flow must get 2 of the first 3 services.
        let heavy_early = order[..3].iter().filter(|&&f| f == 1).count();
        assert!(heavy_early >= 2, "order was {order:?}");
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn fifo_tie_key_is_total_order() {
        let mut q = NodeQueue::new(SchedulerKind::Fifo);
        for tie in [4u64, 2, 7, 0] {
            q.push(pkt(tie as usize, 0, tie, 0, 1));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|p| p.tie_key)).collect();
        assert_eq!(popped, vec![0, 2, 4, 7]);
    }
}
