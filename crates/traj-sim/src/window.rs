//! Cheap windowed bound-domination checks for long-running soak loops.
//!
//! [`crate::validate_bounds`] runs the full adversarial offset search —
//! one simulation per (trial, victim) pair, quadratic in the flow count.
//! That is the right tool for a one-shot validation campaign but far too
//! expensive to run every few simulated seconds inside a churn/fault
//! soak. [`window_validate`] trades adversarial sharpness for cost: a
//! handful of whole-set simulation *windows* with varied release
//! patterns and tie-breaks, one simulation each. The soundness contract
//! (`observed ≤ bound` for every legal scenario) must hold for these
//! windows exactly as for the adversarial ones, so any violation is a
//! real bug — the windows are merely less likely to approach the bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_model::{Duration, FlowSet};

use crate::engine::{SimConfig, Simulator, TieBreak};
use crate::source::ReleasePattern;
use crate::validate::ValidationRow;

/// Parameters of one windowed validation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowParams {
    /// Simulation windows to run (each is one whole-set simulation).
    pub windows: usize,
    /// Seed stream for offsets, jitters and sporadic gaps.
    pub seed: u64,
    /// Simulation parameters shared by every window (packets per flow,
    /// scheduler, delay policy, horizon). The tie-break is overridden
    /// per window.
    pub sim: SimConfig,
}

impl Default for WindowParams {
    fn default() -> Self {
        WindowParams {
            windows: 3,
            seed: 0,
            sim: SimConfig {
                packets_per_flow: 8,
                ..SimConfig::default()
            },
        }
    }
}

/// Release patterns for window `w`: synchronous periodic first (the
/// classical critical-instant candidate), then jittered and sporadic
/// mixes with per-flow random offsets.
fn window_patterns(set: &FlowSet, w: usize, rng: &mut StdRng) -> Vec<ReleasePattern> {
    set.flows()
        .iter()
        .map(|f| match w % 3 {
            0 => ReleasePattern::Periodic { offset: 0 },
            1 => ReleasePattern::JitteredPeriodic {
                offset: rng.gen_range(0..f.period.max(1)),
                seed: rng.next_u64(),
            },
            _ => ReleasePattern::Sporadic {
                offset: rng.gen_range(0..f.period.max(1)),
                max_gap: f.period / 2,
                seed: rng.next_u64(),
            },
        })
        .collect()
}

/// Runs `params.windows` whole-set simulations and checks every flow's
/// observed worst response against its analytical bound (flow-set
/// order, `None` = the analysis declared the flow unbounded, which
/// validates vacuously). Returns one row per flow with the worst
/// observation across all windows.
pub fn window_validate(
    set: &FlowSet,
    bounds: &[Option<Duration>],
    params: &WindowParams,
) -> Vec<ValidationRow> {
    assert_eq!(bounds.len(), set.len(), "one bound per flow");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut worst: Vec<Duration> = vec![0; set.len()];
    for w in 0..params.windows.max(1) {
        let patterns = window_patterns(set, w, &mut rng);
        let mut cfg = params.sim.clone();
        cfg.tie_break = match w % 2 {
            0 => TieBreak::ByFlowId,
            _ => TieBreak::Seeded(rng.next_u64()),
        };
        let outcome = Simulator::new(set, cfg).run(&patterns);
        for (acc, stats) in worst.iter_mut().zip(&outcome.flows) {
            if stats.delivered > 0 {
                *acc = (*acc).max(stats.max_response);
            }
        }
    }
    set.flows()
        .iter()
        .zip(bounds)
        .zip(&worst)
        .map(|((f, bound), &observed)| ValidationRow {
            flow: f.id,
            bound: *bound,
            observed,
            margin: bound.map(|b| b - observed),
            sound: bound.map(|b| observed <= b).unwrap_or(true),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::{analyze_ef, AnalysisConfig};
    use traj_model::examples::paper_example;

    #[test]
    fn paper_example_windows_respect_the_bounds() {
        let set = paper_example();
        let report = analyze_ef(&set, &AnalysisConfig::default());
        let rows = window_validate(
            &set,
            &report.bounds(),
            &WindowParams {
                windows: 6,
                seed: 42,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), set.len());
        for r in &rows {
            assert!(
                r.sound,
                "flow {}: observed {} > bound {:?}",
                r.flow, r.observed, r.bound
            );
            assert!(r.observed > 0, "flow {} delivered nothing", r.flow);
        }
    }

    #[test]
    fn windows_are_deterministic_per_seed() {
        let set = paper_example();
        let report = analyze_ef(&set, &AnalysisConfig::default());
        let p = WindowParams {
            windows: 4,
            seed: 7,
            ..Default::default()
        };
        let a = window_validate(&set, &report.bounds(), &p);
        let b = window_validate(&set, &report.bounds(), &p);
        let obs = |rows: &[ValidationRow]| rows.iter().map(|r| r.observed).collect::<Vec<_>>();
        assert_eq!(obs(&a), obs(&b));
    }
}
