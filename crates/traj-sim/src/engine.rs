//! The event-driven simulator core.
//!
//! Realises exactly the paper's model:
//!
//! * each node is one non-preemptive server: a packet of `τᵢ` occupies it
//!   for `Cᵢʰ` ticks;
//! * links are FIFO with delays in `[Lmin, Lmax]` chosen by a
//!   [`DelayPolicy`];
//! * packets are released by [`crate::ReleasePattern`]s, enter their
//!   flow's ingress queue, and traverse the fixed path;
//! * simultaneous arrivals are ordered by an explicit [`TieBreak`] so
//!   adversarial tie-breaking is reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use traj_model::{FlowSet, NodeId, Tick};

use crate::scheduler::{NodeQueue, QueuedPacket, SchedulerKind};
use crate::source::ReleasePattern;
use crate::stats::{FlowStats, SimOutcome};
use crate::trace::{Trace, TraceEvent, TraceEventKind, TraceRecorder};

/// Link delay selection within `[Lmin, Lmax]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DelayPolicy {
    /// Always `Lmax` (the adversarial corner used for bound validation).
    #[default]
    AlwaysMax,
    /// Always `Lmin`.
    AlwaysMin,
    /// Uniform in `[Lmin, Lmax]`, seeded.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Ordering of simultaneous arrivals into a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Lower flow index first.
    #[default]
    ByFlowId,
    /// Higher flow index first.
    ReverseFlowId,
    /// The given flow (by index) loses every tie — the adversarial choice
    /// when measuring that flow.
    VictimLast(usize),
    /// Pseudo-random, seeded per (flow, seq, node).
    Seeded(u64),
}

impl TieBreak {
    fn key(&self, flow_idx: usize, seq: u64, node: NodeId, n_flows: usize) -> u64 {
        match self {
            TieBreak::ByFlowId => flow_idx as u64,
            TieBreak::ReverseFlowId => (n_flows - flow_idx) as u64,
            TieBreak::VictimLast(victim) => {
                if flow_idx == *victim {
                    u64::MAX
                } else {
                    flow_idx as u64
                }
            }
            TieBreak::Seeded(seed) => {
                // SplitMix64-style hash for a deterministic pseudo-random
                // total order.
                let mut z = seed
                    .wrapping_add(flow_idx as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seq)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    .wrapping_add(node.0 as u64);
                z ^= z >> 31;
                z
            }
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Packets released per flow.
    pub packets_per_flow: usize,
    /// Queue discipline on every node.
    pub scheduler: SchedulerKind,
    /// Link delay policy.
    pub delay_policy: DelayPolicy,
    /// Tie-break for simultaneous arrivals.
    pub tie_break: TieBreak,
    /// Hard stop (ticks) to bound runaway scenarios; generous default.
    pub horizon: Tick,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packets_per_flow: 32,
            scheduler: SchedulerKind::Fifo,
            delay_policy: DelayPolicy::AlwaysMax,
            tie_break: TieBreak::ByFlowId,
            horizon: 10_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Packet becomes available in a node's queue.
    Arrival { node: NodeId, pkt: QueuedPacket },
    /// The server of `node` completes its current packet.
    Completion { node: NodeId },
}

/// The simulator: immutable set + config, consumed by [`Simulator::run`].
pub struct Simulator<'a> {
    set: &'a FlowSet,
    cfg: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a flow set.
    pub fn new(set: &'a FlowSet, cfg: SimConfig) -> Self {
        Simulator { set, cfg }
    }

    /// Runs one simulation with the given release pattern per flow
    /// (aligned with the flow-set order).
    pub fn run(&self, patterns: &[ReleasePattern]) -> SimOutcome {
        self.run_inner(patterns, None)
    }

    /// Like [`Simulator::run`], also recording a full per-packet event
    /// [`Trace`] (Figure-2-style busy-period reconstruction).
    pub fn run_traced(&self, patterns: &[ReleasePattern]) -> (SimOutcome, Trace) {
        let mut rec = TraceRecorder::new();
        let out = self.run_inner(patterns, Some(&mut rec));
        (out, rec.finish())
    }

    fn run_inner(
        &self,
        patterns: &[ReleasePattern],
        mut trace: Option<&mut TraceRecorder>,
    ) -> SimOutcome {
        assert_eq!(patterns.len(), self.set.len(), "one pattern per flow");
        let _span = traj_obs::ScopedTimer::new("sim.run")
            .field("flows", self.set.len())
            .field("packets_per_flow", self.cfg.packets_per_flow);
        let mut processed_events: u64 = 0;
        let n_flows = self.set.len();
        let mut rng = match self.cfg.delay_policy {
            DelayPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
            _ => None,
        };

        // Release table: (time, flow_idx, seq).
        let mut heap: BinaryHeap<Reverse<(Tick, u64, usize)>> = BinaryHeap::new();
        let mut events: Vec<Event> = Vec::new();
        let push = |heap: &mut BinaryHeap<Reverse<(Tick, u64, usize)>>,
                    events: &mut Vec<Event>,
                    t: Tick,
                    e: Event| {
            let idx = events.len();
            events.push(e);
            // Second key: completions before arrivals at the same tick so
            // a packet arriving exactly at a completion sees a free server
            // only after queue insertion order is resolved; we use event
            // insertion order as the final tiebreaker for determinism.
            let kind = match e {
                Event::Completion { .. } => 0u64,
                Event::Arrival { .. } => 1u64,
            };
            heap.push(Reverse((t, kind << 32 | idx as u64, idx)));
        };

        let mut releases: HashMap<(usize, u64), Tick> = HashMap::new();
        for (fi, (f, pat)) in self.set.flows().iter().zip(patterns).enumerate() {
            for (seq, t) in pat
                .releases(f, self.cfg.packets_per_flow)
                .into_iter()
                .enumerate()
            {
                let seq = seq as u64;
                releases.insert((fi, seq), t);
                let ingress = f.path.first();
                let pkt = QueuedPacket {
                    flow_idx: fi,
                    seq,
                    arrival: t,
                    tie_key: self.cfg.tie_break.key(fi, seq, ingress, n_flows),
                    hop: 0,
                    cost: f.cost_at_index(0),
                    band: if f.class.is_ef() { 0 } else { 1 },
                    weight: class_weight(f),
                };
                push(
                    &mut heap,
                    &mut events,
                    t,
                    Event::Arrival { node: ingress, pkt },
                );
            }
        }

        let mut queues: HashMap<NodeId, NodeQueue> = self
            .set
            .network()
            .nodes()
            .iter()
            .map(|&n| (n, NodeQueue::new(self.cfg.scheduler)))
            .collect();
        let mut in_service: HashMap<NodeId, Option<QueuedPacket>> = self
            .set
            .network()
            .nodes()
            .iter()
            .map(|&n| (n, None))
            .collect();

        let mut stats: Vec<FlowStats> = self
            .set
            .flows()
            .iter()
            .map(|f| FlowStats::empty(f.id))
            .collect();
        let mut delivered = 0u64;
        let mut last_t = 0;
        // Work backlog per node: queued service demand plus the residual
        // of the packet in service (tracked coarsely at event boundaries).
        let mut backlog: HashMap<NodeId, i64> = HashMap::new();
        let mut max_backlog: HashMap<u32, i64> = HashMap::new();

        // Two-phase processing per tick: drain *all* events at time `t`
        // (completions free servers, arrivals enqueue), then start
        // services on idle nodes. This makes simultaneous arrivals
        // compete purely on their tie-break key, independent of event
        // insertion order.
        let mut touched: Vec<NodeId> = Vec::new();
        while let Some(&Reverse((t, _, _))) = heap.peek() {
            if t > self.cfg.horizon {
                break;
            }
            last_t = t;
            touched.clear();
            while let Some(&Reverse((tt, _, _))) = heap.peek() {
                if tt != t {
                    break;
                }
                let Reverse((_, _, idx)) = heap.pop().expect("peeked");
                processed_events += 1;
                match events[idx] {
                    Event::Arrival { node, pkt } => {
                        if let Some(rec) = trace.as_deref_mut() {
                            rec.record(TraceEvent {
                                time: t,
                                node,
                                flow: self.set.flows()[pkt.flow_idx].id,
                                seq: pkt.seq,
                                kind: TraceEventKind::Enqueued,
                            });
                        }
                        queues.get_mut(&node).expect("node exists").push(pkt);
                        let b = backlog.entry(node).or_insert(0);
                        *b += pkt.cost;
                        let m = max_backlog.entry(node.0).or_insert(0);
                        *m = (*m).max(*b);
                        touched.push(node);
                    }
                    Event::Completion { node } => {
                        let done = in_service
                            .get_mut(&node)
                            .expect("node")
                            .take()
                            .expect("completion implies service");
                        *backlog.entry(node).or_insert(0) -= done.cost;
                        touched.push(node);
                        let f = &self.set.flows()[done.flow_idx];
                        if let Some(rec) = trace.as_deref_mut() {
                            rec.record(TraceEvent {
                                time: t,
                                node,
                                flow: f.id,
                                seq: done.seq,
                                kind: TraceEventKind::ServiceEnd,
                            });
                        }
                        if done.hop + 1 == f.path.len() {
                            let release = releases[&(done.flow_idx, done.seq)];
                            stats[done.flow_idx].record(t - release);
                            delivered += 1;
                        } else {
                            let here = f.path.nodes()[done.hop];
                            let next = f.path.nodes()[done.hop + 1];
                            let ld = self.set.network().link_delay(here, next);
                            let delay = match self.cfg.delay_policy {
                                DelayPolicy::AlwaysMax => ld.lmax,
                                DelayPolicy::AlwaysMin => ld.lmin,
                                DelayPolicy::Random { .. } => {
                                    let r = rng.as_mut().expect("random policy has rng");
                                    if ld.lmin == ld.lmax {
                                        ld.lmin
                                    } else {
                                        r.gen_range(ld.lmin..=ld.lmax)
                                    }
                                }
                            };
                            let arrival = t + delay;
                            let pkt = QueuedPacket {
                                arrival,
                                tie_key: self.cfg.tie_break.key(
                                    done.flow_idx,
                                    done.seq,
                                    next,
                                    n_flows,
                                ),
                                hop: done.hop + 1,
                                cost: f.cost_at_index(done.hop + 1),
                                ..done
                            };
                            push(
                                &mut heap,
                                &mut events,
                                arrival,
                                Event::Arrival { node: next, pkt },
                            );
                        }
                    }
                }
            }
            // Phase 2: dispatch idle servers.
            for &node in &touched {
                if in_service[&node].is_none() {
                    if let Some(next) = queues.get_mut(&node).expect("node").pop() {
                        if let Some(rec) = trace.as_deref_mut() {
                            rec.record(TraceEvent {
                                time: t,
                                node,
                                flow: self.set.flows()[next.flow_idx].id,
                                seq: next.seq,
                                kind: TraceEventKind::ServiceStart,
                            });
                        }
                        *in_service.get_mut(&node).expect("node") = Some(next);
                        push(
                            &mut heap,
                            &mut events,
                            t + next.cost,
                            Event::Completion { node },
                        );
                    }
                }
            }
        }

        if traj_obs::enabled() {
            traj_obs::counter_add("sim.events", processed_events);
            traj_obs::counter_add("sim.delivered", delivered);
            traj_obs::emit(
                traj_obs::Event::new("sim.complete")
                    .field("events", processed_events)
                    .field("delivered", delivered)
                    .field("horizon", last_t),
            );
        }
        SimOutcome {
            flows: stats,
            horizon: last_t,
            delivered,
            max_backlog,
        }
    }

    /// Convenience: all flows strictly periodic with the given offsets.
    pub fn run_periodic(&self, offsets: &[Tick]) -> SimOutcome {
        let patterns: Vec<ReleasePattern> = offsets
            .iter()
            .map(|&offset| ReleasePattern::Periodic { offset })
            .collect();
        self.run(&patterns)
    }
}

fn class_weight(f: &traj_model::SporadicFlow) -> u32 {
    match f.class {
        traj_model::flow::TrafficClass::Ef => 1,
        traj_model::flow::TrafficClass::Af(k) => 10 + (4 - k.min(4)) as u32 * 5,
        traj_model::flow::TrafficClass::BestEffort => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn lone_flow_sees_pure_transit() {
        let set = line_topology(1, 4, 100, 5, 1, 2).unwrap();
        let sim = Simulator::new(&set, SimConfig::default());
        let out = sim.run_periodic(&[0]);
        let s = &out.flows[0];
        assert_eq!(s.delivered, 32);
        // 4 nodes * 5 + 3 links * 2 (AlwaysMax)
        assert_eq!(s.max_response, 26);
        assert_eq!(s.min_response, 26);
        assert_eq!(s.observed_jitter(), 0);
    }

    #[test]
    fn min_delay_policy_gives_floor() {
        let set = line_topology(1, 4, 100, 5, 1, 2).unwrap();
        let sim = Simulator::new(
            &set,
            SimConfig {
                delay_policy: DelayPolicy::AlwaysMin,
                ..Default::default()
            },
        );
        let out = sim.run_periodic(&[0]);
        assert_eq!(out.flows[0].max_response, 23);
    }

    #[test]
    fn contention_delays_the_victim() {
        // Three flows share one node; simultaneous release, victim last.
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let sim = Simulator::new(
            &set,
            SimConfig {
                tie_break: TieBreak::VictimLast(0),
                ..Default::default()
            },
        );
        let out = sim.run_periodic(&[0, 0, 0]);
        // Victim waits for both rivals: 3 * 7.
        assert_eq!(out.flows[0].max_response, 21);
    }

    #[test]
    fn paper_example_observed_within_analytic_bounds() {
        let set = paper_example();
        let sim = Simulator::new(
            &set,
            SimConfig {
                tie_break: TieBreak::ReverseFlowId,
                ..Default::default()
            },
        );
        let out = sim.run_periodic(&[0, 0, 0, 0, 0]);
        let bounds = [31, 37, 47, 47, 40]; // default trajectory bounds
        for (s, b) in out.flows.iter().zip(bounds) {
            assert!(s.delivered > 0);
            assert!(
                s.max_response <= b,
                "flow {}: observed {} > bound {}",
                s.flow,
                s.max_response,
                b
            );
        }
    }

    #[test]
    fn deterministic_given_config() {
        let set = paper_example();
        let sim = Simulator::new(&set, SimConfig::default());
        let a = sim.run_periodic(&[0, 5, 10, 15, 20]);
        let b = sim.run_periodic(&[0, 5, 10, 15, 20]);
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn random_link_delays_stay_between_bounds() {
        let set = line_topology(1, 6, 50, 2, 1, 4).unwrap();
        let sim = Simulator::new(
            &set,
            SimConfig {
                delay_policy: DelayPolicy::Random { seed: 42 },
                ..Default::default()
            },
        );
        let out = sim.run_periodic(&[0]);
        let lo = 6 * 2 + 5;
        let hi = 6 * 2 + 5 * 4;
        assert!(out.flows[0].min_response >= lo);
        assert!(out.flows[0].max_response <= hi);
    }

    #[test]
    fn backlog_tracks_queued_work() {
        // 3 flows, C = 7, synchronous release on one node: peak backlog
        // is all three packets' work.
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let sim = Simulator::new(&set, SimConfig::default());
        let out = sim.run_periodic(&[0, 0, 0]);
        assert_eq!(out.max_backlog.get(&1).copied(), Some(21));
        // A lone flow never accumulates more than one packet.
        let solo = line_topology(1, 2, 100, 5, 1, 1).unwrap();
        let out = Simulator::new(&solo, SimConfig::default()).run_periodic(&[0]);
        assert_eq!(out.max_backlog.get(&1).copied(), Some(5));
    }

    #[test]
    fn traced_run_matches_stats() {
        let set = paper_example();
        let sim = Simulator::new(&set, SimConfig::default());
        let patterns: Vec<crate::source::ReleasePattern> = (0..5)
            .map(|i| crate::source::ReleasePattern::Periodic {
                offset: i as i64 * 3,
            })
            .collect();
        let (out, trace) = sim.run_traced(&patterns);
        // Every delivered packet's trace reconstructs its response time;
        // the per-flow max over traces equals the recorded statistic.
        for (fi, f) in set.flows().iter().enumerate() {
            let mut max_resp = 0;
            for seq in 0..out.flows[fi].delivered {
                let hops = trace.trajectory(f.id, seq);
                assert_eq!(hops.len(), f.path.len(), "packet crosses every hop");
                let release = patterns[fi].releases(f, seq as usize + 1)[seq as usize];
                max_resp = max_resp.max(hops.last().unwrap().end - release);
                // hop order follows the path
                for (h, &n) in hops.iter().zip(f.path.nodes()) {
                    assert_eq!(h.node, n);
                    assert!(h.start >= h.arrival);
                    assert!(h.end - h.start == f.cost_at(n));
                }
            }
            assert_eq!(max_resp, out.flows[fi].max_response, "flow {}", f.id);
        }
        // Busy periods on the hot node 3 contain packets from several flows.
        let bps = trace.busy_periods(traj_model::NodeId(3));
        assert!(!bps.is_empty());
        assert!(bps.iter().any(|bp| bp.packets.len() > 1));
    }

    #[test]
    fn sim_emits_span_and_completion_when_sink_installed() {
        let _g = traj_obs::test_guard();
        let ring = std::sync::Arc::new(traj_obs::RingSink::new(16));
        traj_obs::set_sink(ring.clone());
        traj_obs::reset_metrics();
        let set = line_topology(1, 2, 100, 5, 1, 1).unwrap();
        let out = Simulator::new(&set, SimConfig::default()).run_periodic(&[0]);
        traj_obs::disable();
        let events = ring.drain();
        let done = events
            .iter()
            .find(|e| e.name == "sim.complete")
            .expect("completion event");
        assert_eq!(
            done.get("delivered"),
            Some(&traj_obs::Value::U64(out.delivered))
        );
        assert!(events
            .iter()
            .any(|e| e.name == "span"
                && e.get("name") == Some(&traj_obs::Value::Str("sim.run".into()))));
        let snap = traj_obs::metrics_snapshot();
        assert!(snap.iter().any(|(k, v)| k == "sim.delivered" && *v > 0));
        traj_obs::reset_metrics();
    }

    #[test]
    fn diffserv_ef_unaffected_by_be_backlog_except_blocking() {
        use traj_model::examples::paper_example_with_best_effort;
        let set = paper_example_with_best_effort(9).unwrap();
        let sim = Simulator::new(
            &set,
            SimConfig {
                scheduler: SchedulerKind::DiffServ,
                ..Default::default()
            },
        );
        let offsets: Vec<i64> = vec![0; set.len()];
        let out = sim.run_periodic(&offsets);
        // EF flows must still be delivered and meet the Property 3 bounds
        // (checked precisely in the integration tests); here: sanity.
        for s in &out.flows[..5] {
            assert!(s.delivered > 0);
        }
    }
}
