//! Zero-dependency observability layer for the trajectory pipeline.
//!
//! The analysis engine, the admission controller and the simulator emit
//! structured [`Event`]s — named records with typed fields — through a
//! process-global, pluggable [`Sink`]. The default state is *disabled*:
//! every emission site first reads one relaxed [`AtomicBool`], so
//! instrumentation costs a single predictable branch when nobody is
//! listening (measured by the `metrics_export` benchmark, E14).
//!
//! Three sinks ship with the crate:
//!
//! * [`NoopSink`] — swallows events (useful to measure the cost of the
//!   emission sites themselves);
//! * [`RingSink`] — fixed-capacity in-memory ring buffer, oldest events
//!   evicted first; the default for tests and interactive inspection;
//! * [`JsonlSink`] — serialises each event as one JSON object per line
//!   into any `Write` target (the encoder is hand-rolled here so the
//!   crate stays dependency-free).
//!
//! Besides events, the crate keeps a global registry of named
//! **counters** (monotone, `add`) and **gauges** (last-write-wins,
//! `set`), snapshotted by [`metrics_snapshot`]. [`ScopedTimer`] measures
//! a lexical scope and emits a `span` event with the elapsed
//! microseconds on drop.
//!
//! # Concurrency and test isolation
//!
//! The sink and the metric registry are process-global. Library code
//! must therefore treat them as *best-effort* telemetry, never as a
//! correctness channel; tests that assert on captured events serialise
//! themselves with [`test_guard`].

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One typed field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer (durations in ticks, deltas).
    I64(i64),
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Floating point (ratios, milliseconds).
    F64(f64),
    /// Short string (strategy names, labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `fixpoint.round` or `admission.tick`.
    pub name: &'static str,
    /// Field list in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Builds an event with no fields.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Appends one field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The value of the first field with the given key, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serialises the event as one compact JSON object:
    /// `{"event":"name","k":v,...}`. Field order is preserved; a field
    /// whose key repeats is emitted repeatedly (JSON permits it, readers
    /// keep the last).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        json_string(&mut out, self.name);
        for (k, v) in &self.fields {
            out.push(',');
            json_string(&mut out, k);
            out.push(':');
            match v {
                Value::I64(x) => out.push_str(&x.to_string()),
                Value::U64(x) => out.push_str(&x.to_string()),
                Value::F64(x) => {
                    if x.is_finite() {
                        out.push_str(&format!("{x}"));
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => json_string(&mut out, s),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Receives emitted events. Implementations must be cheap and must not
/// panic: they run inside analysis hot paths.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Swallows everything (measures pure emission-site cost).
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Fixed-capacity in-memory ring buffer; the oldest events are evicted
/// once full.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<std::collections::VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap` 0 is clamped to 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        lock_ignore_poison(&self.buf).iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        lock_ignore_poison(&self.buf).drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.buf).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = lock_ignore_poison(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes one JSON object per line into any `Write` target.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Consumes the sink and returns the writer (flushing it first).
    pub fn into_inner(self) -> W {
        self.out
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut out = lock_ignore_poison(&self.out);
        // Telemetry is best-effort: a failed write must never take the
        // analysis down, so the io::Result is deliberately dropped.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = lock_ignore_poison(&self.out).flush();
    }
}

/// A mutex poisoned by a panicking holder still guards plain data; the
/// telemetry layer prefers serving slightly torn metrics over
/// propagating the panic.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Fast-path gate: emission sites read this before doing any work.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed sink (None while disabled).
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);
/// Counter registry (monotone adds).
static COUNTERS: Mutex<Option<BTreeMap<&'static str, u64>>> = Mutex::new(None);
/// Gauge registry (last write wins).
static GAUGES: Mutex<Option<BTreeMap<&'static str, i64>>> = Mutex::new(None);

/// Whether a sink is installed. One relaxed atomic load; emission sites
/// call this first so a disabled pipeline pays a single branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink and enables emission. Replaces any previous sink.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *lock_ignore_poison(&SINK) = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Uninstalls the sink and disables emission; the metric registries are
/// left intact (use [`reset_metrics`] to clear them).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
    *lock_ignore_poison(&SINK) = None;
}

/// Emits one event to the installed sink; no-op while disabled.
#[inline]
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    if let Some(sink) = lock_ignore_poison(&SINK).as_ref() {
        sink.record(&event);
    }
}

/// Flushes the installed sink, if any.
pub fn flush() {
    if let Some(sink) = lock_ignore_poison(&SINK).as_ref() {
        sink.flush();
    }
}

/// Adds to a named counter; no-op while disabled.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = lock_ignore_poison(&COUNTERS);
    *reg.get_or_insert_with(BTreeMap::new)
        .entry(name)
        .or_insert(0) += n;
}

/// Sets a named gauge; no-op while disabled.
#[inline]
pub fn gauge_set(name: &'static str, v: i64) {
    if !enabled() {
        return;
    }
    let mut reg = lock_ignore_poison(&GAUGES);
    reg.get_or_insert_with(BTreeMap::new).insert(name, v);
}

/// Snapshot of every counter and gauge: `(name, value)` pairs, counters
/// first, sorted by name within each kind. Gauges are widened to i64 in
/// place; counters are reported as i64 saturating at `i64::MAX`.
pub fn metrics_snapshot() -> Vec<(String, i64)> {
    let mut out = Vec::new();
    if let Some(reg) = lock_ignore_poison(&COUNTERS).as_ref() {
        for (k, v) in reg {
            out.push((k.to_string(), i64::try_from(*v).unwrap_or(i64::MAX)));
        }
    }
    if let Some(reg) = lock_ignore_poison(&GAUGES).as_ref() {
        for (k, v) in reg {
            out.push((k.to_string(), *v));
        }
    }
    out
}

/// Clears every counter and gauge.
pub fn reset_metrics() {
    *lock_ignore_poison(&COUNTERS) = None;
    *lock_ignore_poison(&GAUGES) = None;
}

/// Measures a lexical scope; on drop emits a `span` event
/// `{event:"span", name, elapsed_us, ...fields}`. Inert (no clock read)
/// while emission is disabled at construction time.
pub struct ScopedTimer {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Value)>,
}

impl ScopedTimer {
    /// Starts a timer for `name`; reads the clock only when a sink is
    /// installed.
    pub fn new(name: &'static str) -> Self {
        ScopedTimer {
            name,
            start: enabled().then(Instant::now),
            fields: Vec::new(),
        }
    }

    /// Attaches one field to the span event (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let mut ev = Event::new("span")
            .field("name", self.name)
            .field("elapsed_us", start.elapsed().as_micros() as u64);
        ev.fields.append(&mut self.fields);
        emit(ev);
    }
}

/// Fixed-bucket latency histogram for long-running loops.
///
/// Buckets are powers of two: bucket `k` counts samples in
/// `[2^k, 2^(k+1))` (bucket 0 additionally holds 0). Recording is O(1)
/// with no allocation after construction, so a soak loop can feed every
/// decision latency into one of these for hours without the unbounded
/// memory of keeping raw samples. Percentiles come back as the upper
/// edge of the selected bucket — conservative (never under-reports) and
/// within 2× of the true value, which is plenty for regression gating.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[k]` counts samples in `[2^k, 2^(k+1))`; 64 buckets cover
    /// the whole u64 range.
    buckets: [u64; 64],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let k = (64 - sample.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[k.min(63)] += 1;
        self.count += 1;
        self.max = self.max.max(sample);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bucket edge containing the `q`-quantile (`q` in `[0, 1]`,
    /// clamped), 0 on an empty histogram. `percentile(1.0)` returns the
    /// exact max.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q.max(0.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper edge of bucket k, capped by the observed max.
                let edge = if k >= 63 { u64::MAX } else { (2u64 << k) - 1 };
                return edge.min(self.max);
            }
        }
        self.max
    }
}

/// Serialises tests that install a global sink: hold the returned guard
/// for the test's whole body. (The sink and registries are process-wide;
/// parallel test threads would otherwise observe each other's events.)
pub fn test_guard() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pipeline_swallows_everything() {
        let _g = test_guard();
        disable();
        reset_metrics();
        emit(Event::new("x").field("k", 1i64));
        counter_add("c", 3);
        gauge_set("g", 7);
        assert!(!enabled());
        assert!(metrics_snapshot().is_empty());
    }

    #[test]
    fn ring_sink_captures_and_evicts() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(2));
        set_sink(ring.clone());
        emit(Event::new("a"));
        emit(Event::new("b"));
        emit(Event::new("c"));
        let names: Vec<_> = ring.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"], "oldest evicted at capacity");
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
        disable();
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _g = test_guard();
        set_sink(Arc::new(NoopSink));
        reset_metrics();
        counter_add("pkts", 2);
        counter_add("pkts", 3);
        gauge_set("depth", 9);
        gauge_set("depth", 4);
        let snap = metrics_snapshot();
        assert!(snap.contains(&("pkts".to_string(), 5)));
        assert!(snap.contains(&("depth".to_string(), 4)));
        reset_metrics();
        disable();
    }

    #[test]
    fn scoped_timer_emits_span_with_fields() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(8));
        set_sink(ring.clone());
        {
            let _t = ScopedTimer::new("work").field("items", 5usize);
        }
        let evs = ring.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "span");
        assert_eq!(evs[0].get("name"), Some(&Value::Str("work".into())));
        assert_eq!(evs[0].get("items"), Some(&Value::U64(5)));
        assert!(matches!(evs[0].get("elapsed_us"), Some(Value::U64(_))));
        disable();
    }

    #[test]
    fn scoped_timer_is_inert_when_disabled() {
        let _g = test_guard();
        disable();
        let t = ScopedTimer::new("idle").field("k", 1i64);
        assert!(t.start.is_none());
        assert!(t.fields.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let _g = test_guard();
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.record(&Event::new("a").field("n", 1i64).field("s", "x\"y"));
        sink.record(&Event::new("b").field("ok", true).field("r", 0.5f64));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event":"a","n":1,"s":"x\"y"}"#);
        assert_eq!(lines[1], r#"{"event":"b","ok":true,"r":0.5}"#);
    }

    #[test]
    fn json_escaping_covers_control_chars() {
        let e = Event::new("e").field("s", "tab\there\nnl\u{1}");
        let j = e.to_json();
        assert!(j.contains("tab\\there\\nnl\\u0001"), "{j}");
    }

    #[test]
    fn event_get_finds_first_field() {
        let e = Event::new("e").field("k", 1i64).field("k", 2i64);
        assert_eq!(e.get("k"), Some(&Value::I64(1)));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn histogram_percentiles_bracket_the_samples() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.percentile(1.0), 1000, "p100 is the exact max");
        let p50 = h.percentile(0.5);
        // Bucketed: upper edge of the bucket holding sample #500, so at
        // least the true value and within 2x of it.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.25), 1, "zero lands in the first bucket");
        assert_eq!(h.percentile(1.0), u64::MAX);
    }
}
