//! Fixed routes: ordered, loop-free sequences of nodes.
//!
//! The paper assumes each flow follows a fixed path `Pᵢ = [firstᵢ, ...,
//! lastᵢ]` (source routing or MPLS). [`Path`] provides the positional
//! queries used by the analysis: `preᵢ(h)`, `sucᵢ(h)`, prefixes, and
//! membership.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::network::NodeId;

/// An ordered, loop-free sequence of nodes visited by a flow.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Builds a path, rejecting empty sequences and repeated nodes.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyPath);
        }
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        for n in &nodes {
            if !seen.insert(*n) {
                return Err(ModelError::DuplicateNode { node: *n });
            }
        }
        Ok(Path { nodes })
    }

    /// Convenience constructor from raw node numbers.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Result<Self, ModelError> {
        Path::new(ids.into_iter().map(NodeId).collect())
    }

    /// The visited nodes in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `|Pᵢ|`: number of visited nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Paths are never empty, but clippy insists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `firstᵢ`: ingress node.
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// `lastᵢ`: egress node.
    pub fn last(&self) -> NodeId {
        self.nodes[self.nodes.len() - 1]
    }

    /// Position of `node` on the path, if visited.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Whether the path visits `node`.
    pub fn visits(&self, node: NodeId) -> bool {
        self.index_of(node).is_some()
    }

    /// `preᵢ(h)`: node visited just before `h`, if any.
    pub fn pre(&self, node: NodeId) -> Option<NodeId> {
        let i = self.index_of(node)?;
        if i == 0 {
            None
        } else {
            Some(self.nodes[i - 1])
        }
    }

    /// `sucᵢ(h)`: node visited just after `h`, if any.
    pub fn suc(&self, node: NodeId) -> Option<NodeId> {
        let i = self.index_of(node)?;
        self.nodes.get(i + 1).copied()
    }

    /// The prefix of the path ending at `node` (inclusive).
    pub fn prefix_through(&self, node: NodeId) -> Option<Path> {
        let i = self.index_of(node)?;
        Some(Path {
            nodes: self.nodes[..=i].to_vec(),
        })
    }

    /// The prefix consisting of the first `k` nodes (`1 <= k <= len`).
    pub fn prefix_len(&self, k: usize) -> Option<Path> {
        if k == 0 || k > self.nodes.len() {
            return None;
        }
        Some(Path {
            nodes: self.nodes[..k].to_vec(),
        })
    }

    /// Nodes shared with another path, in **this** path's visiting order.
    pub fn shared_with(&self, other: &Path) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|n| other.visits(*n))
            .collect()
    }

    /// Successive `(from, to)` links along the path.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> Path {
        Path::from_ids(ids.iter().copied()).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert_eq!(Path::new(vec![]).unwrap_err(), ModelError::EmptyPath);
        assert!(Path::from_ids([1, 2, 1]).is_err());
        assert_eq!(p(&[1, 2, 3]).len(), 3);
    }

    #[test]
    fn endpoints_and_neighbours() {
        let path = p(&[2, 3, 4, 7, 8]);
        assert_eq!(path.first(), NodeId(2));
        assert_eq!(path.last(), NodeId(8));
        assert_eq!(path.pre(NodeId(2)), None);
        assert_eq!(path.pre(NodeId(7)), Some(NodeId(4)));
        assert_eq!(path.suc(NodeId(7)), Some(NodeId(8)));
        assert_eq!(path.suc(NodeId(8)), None);
        assert_eq!(path.pre(NodeId(99)), None);
    }

    #[test]
    fn prefixes() {
        let path = p(&[1, 3, 4, 5]);
        assert_eq!(path.prefix_through(NodeId(4)).unwrap(), p(&[1, 3, 4]));
        assert_eq!(path.prefix_len(1).unwrap(), p(&[1]));
        assert_eq!(path.prefix_len(0), None);
        assert_eq!(path.prefix_len(5), None);
    }

    #[test]
    fn shared_nodes_keep_self_order() {
        // P2 = [9,10,7,6] crosses P3 = [2,3,4,7,10,11] at 10 then 7 (in
        // P2's order) - the reverse-direction case of the paper's Figure 1.
        let p2 = p(&[9, 10, 7, 6]);
        let p3 = p(&[2, 3, 4, 7, 10, 11]);
        assert_eq!(p2.shared_with(&p3), vec![NodeId(10), NodeId(7)]);
        assert_eq!(p3.shared_with(&p2), vec![NodeId(7), NodeId(10)]);
    }

    #[test]
    fn links_iterate_pairs() {
        let path = p(&[1, 3, 4]);
        let links: Vec<_> = path.links().collect();
        assert_eq!(links, vec![(NodeId(1), NodeId(3)), (NodeId(3), NodeId(4))]);
    }

    #[test]
    fn display_renders_arrows() {
        assert_eq!(p(&[1, 2]).to_string(), "[1 -> 2]");
    }
}
