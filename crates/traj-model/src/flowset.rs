//! A validated set of flows plus all the path relations of the paper.
//!
//! The trajectory analysis constantly asks questions such as "which node of
//! `Pᵢ` does `τⱼ` visit first?" (`first_{j,i}`), "is `τⱼ` crossing `Pᵢ` in
//! the same direction?" (the `first_{j,i} = first_{i,j}` criterion), "what
//! is `τⱼ`'s largest cost on `Pᵢ`?" (`C_j^{slow_{j,i}}`), and needs the
//! quantities `Sminⱼʰ` and `Mᵢʰ`. All of them are answered here, against an
//! arbitrary *reference path* so the same machinery serves full paths and
//! the prefixes used by the recursive `Smax` computation.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::flow::{FlowId, SporadicFlow};
use crate::network::{Network, NodeId};
use crate::path::Path;
use crate::time::Duration;

/// Direction in which a flow crosses a reference path (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossDirection {
    /// `first_{j,i} = first_{i,j}`: the crossing flow traverses the shared
    /// segment in the same direction as the path owner. A flow crossing at
    /// a single node is a degenerate same-direction crossing.
    Same,
    /// The crossing flow traverses the shared segment against the path
    /// owner's direction.
    Reverse,
}

/// A maximal contiguous crossing of a reference path by another flow.
///
/// Within a segment, consecutive shared nodes are adjacent in **both**
/// paths and walked in a consistent direction on the reference path. A
/// flow that leaves the path (via an off-path node or an off-path link)
/// and meets it again later crosses in **several** segments; the paper's
/// Assumption 1 handles that case by treating each re-entry "as a new
/// flow" — the analysis implements exactly that by accounting
/// interference per segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossingSegment {
    /// Shared nodes in the *crossing flow's* visiting order.
    pub nodes: Vec<NodeId>,
    /// Direction relative to the reference path (single-node segments are
    /// degenerate same-direction crossings).
    pub direction: CrossDirection,
}

impl CrossingSegment {
    /// The segment's first node in the crossing flow's order
    /// (`first_{j,i}` of the virtual flow).
    pub fn first_in_crosser_order(&self) -> NodeId {
        self.nodes[0]
    }

    /// The segment's entry node in the reference path's order
    /// (`first_{i,j}` of the virtual flow).
    pub fn entry_in_path_order(&self, path: &Path) -> NodeId {
        // Segment nodes lie on the path by construction; nodes off the
        // path (impossible) simply lose the min, and the first node is a
        // correct answer for the degenerate single-node segment.
        self.nodes
            .iter()
            .copied()
            .filter_map(|n| path.index_of(n).map(|i| (i, n)))
            .min_by_key(|&(i, _)| i)
            .map(|(_, n)| n)
            .unwrap_or(self.nodes[0])
    }

    /// Whether the segment contains `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// How the `min` inside `Mᵢʰ` selects candidate costs.
///
/// `Mᵢʰ = Σ_{h'=firstᵢ}^{preᵢ(h)} ( min_j C_j^{h'} + Lmin )` is a lower
/// bound on the arrival time, at node `h`, of the first packet of the busy
/// period that started on `firstᵢ` at time 0: the busy-period front must be
/// relayed hop by hop, paying at least one minimal packet processing plus
/// one minimal link delay per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MinConvention {
    /// Minimum over same-direction flows that actually visit `h'`
    /// (default; semantically justified: only a packet processed at `h'`
    /// can relay the front).
    #[default]
    Visiting,
    /// Literal reading of the paper with the `C_j^h = 0` convention: any
    /// same-direction flow that skips `h'` drives the minimum to zero.
    /// More pessimistic (smaller `M` ⇒ larger `A_{i,j}`), trivially sound.
    ZeroConvention,
    /// Minimum over same-direction flows that traverse the *link*
    /// `h' → suc(h')` of the reference path; tightest variant.
    EdgeTraversing,
}

/// What `Sminⱼʰ` accounts for on each upstream hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SminMode {
    /// `Σ (Cⱼ + Lmin)` per upstream hop: a packet must be fully processed
    /// on each node before being forwarded (default, the store-and-forward
    /// reading).
    #[default]
    ProcessingAndLink,
    /// `Σ Lmin` only: cut-through reading, more pessimistic
    /// (smaller `Smin` ⇒ larger interference window).
    LinkOnly,
}

/// Shared memo of crossing-segment decompositions.
///
/// The decomposition of a crossing depends *only* on the two path values
/// (crosser path, reference path) — not on costs, periods, or on which
/// other flows belong to the set — so entries stay valid across clones,
/// [`FlowSet::with_flows`] rebuilds, and the admission controller's
/// add/remove cycles, and the memo can be shared freely between them.
///
/// Cloning shares the underlying table; deserialisation starts empty
/// (the memo is a pure cache and is never serialised).
#[derive(Clone, Default)]
pub struct RelationCache {
    /// `crosser path -> reference path -> segments`. Nested maps let the
    /// hot path look entries up from two `&Path` borrows without
    /// materialising a tuple key.
    segments: Arc<RwLock<SegmentMemo>>,
}

/// Inner table of [`RelationCache`].
type SegmentMemo = HashMap<Path, HashMap<Path, Arc<Vec<CrossingSegment>>>>;

impl RelationCache {
    fn get(&self, crosser: &Path, reference: &Path) -> Option<Arc<Vec<CrossingSegment>>> {
        let map = self.segments.read().unwrap_or_else(|e| e.into_inner());
        map.get(crosser)
            .and_then(|inner| inner.get(reference))
            .cloned()
    }

    fn insert(&self, crosser: &Path, reference: &Path, segments: Arc<Vec<CrossingSegment>>) {
        let mut map = self.segments.write().unwrap_or_else(|e| e.into_inner());
        map.entry(crosser.clone())
            .or_default()
            .entry(reference.clone())
            .or_insert(segments);
    }

    /// Number of memoised (crosser, reference) pairs.
    pub fn len(&self) -> usize {
        let map = self.segments.read().unwrap_or_else(|e| e.into_inner());
        map.values().map(|inner| inner.len()).sum()
    }

    /// Whether the memo holds no entry yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for RelationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationCache")
            .field("entries", &self.len())
            .finish()
    }
}

/// A validated set of sporadic flows over a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSet {
    network: Network,
    flows: Vec<SporadicFlow>,
    /// Memo for [`Self::crossing_segments`]; shared across clones and
    /// derived sets, rebuilt lazily after deserialisation.
    #[serde(skip)]
    relations: RelationCache,
}

impl FlowSet {
    /// Validates and builds a flow set.
    pub fn new(network: Network, flows: Vec<SporadicFlow>) -> Result<Self, ModelError> {
        if flows.is_empty() {
            return Err(ModelError::EmptyFlowSet);
        }
        let mut ids = std::collections::HashSet::new();
        for f in &flows {
            if !ids.insert(f.id) {
                return Err(ModelError::DuplicateFlowId { id: f.id });
            }
            for &n in f.path.nodes() {
                if !network.contains(n) {
                    return Err(ModelError::UnknownNode {
                        flow: f.id,
                        node: n,
                    });
                }
            }
        }
        Ok(FlowSet {
            network,
            flows,
            relations: RelationCache::default(),
        })
    }

    /// Like [`Self::new`], but seeding the crossing-segment memo from an
    /// existing cache. Sound because the memo is keyed by path values
    /// only; use this to re-analyse variations of a set (added/removed
    /// flows) without recomputing the shared crossing structure.
    pub fn new_with_cache(
        network: Network,
        flows: Vec<SporadicFlow>,
        cache: RelationCache,
    ) -> Result<Self, ModelError> {
        let mut set = Self::new(network, flows)?;
        set.relations = cache;
        Ok(set)
    }

    /// The crossing-segment memo, for sharing with derived sets.
    pub fn relation_cache(&self) -> &RelationCache {
        &self.relations
    }

    /// A new set over the same network with `extra` appended, sharing
    /// this set's relation memo (admission "what-if" analysis).
    pub fn extended_with(&self, extra: SporadicFlow) -> Result<Self, ModelError> {
        // The standing flows and network were validated when `self` was
        // built, so only the appended flow needs checking — the full
        // `FlowSet::new` sweep is O(flows · hops · nodes) and would
        // dominate a warm-start admission decision.
        if self.index_of(extra.id).is_some() {
            return Err(ModelError::DuplicateFlowId { id: extra.id });
        }
        for &n in extra.path.nodes() {
            if !self.network.contains(n) {
                return Err(ModelError::UnknownNode {
                    flow: extra.id,
                    node: n,
                });
            }
        }
        let mut flows = self.flows.clone();
        flows.push(extra);
        Ok(FlowSet {
            network: self.network.clone(),
            flows,
            relations: self.relations.clone(),
        })
    }

    /// A new set with flow `id` removed, sharing this set's relation
    /// memo. Errors when removing `id` would empty the set.
    pub fn without_flow(&self, id: FlowId) -> Result<Self, ModelError> {
        let flows: Vec<SporadicFlow> = self.flows.iter().filter(|f| f.id != id).cloned().collect();
        if flows.is_empty() {
            return Err(ModelError::EmptyFlowSet);
        }
        // A subset of a validated set needs no re-validation.
        Ok(FlowSet {
            network: self.network.clone(),
            flows,
            relations: self.relations.clone(),
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// All flows, in insertion order.
    pub fn flows(&self) -> &[SporadicFlow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Flow sets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks a flow up by id.
    pub fn flow(&self, id: FlowId) -> Option<&SporadicFlow> {
        self.flows.iter().find(|f| f.id == id)
    }

    /// Index of a flow in [`Self::flows`].
    pub fn index_of(&self, id: FlowId) -> Option<usize> {
        self.flows.iter().position(|f| f.id == id)
    }

    /// Flows of the EF class.
    pub fn ef_flows(&self) -> impl Iterator<Item = &SporadicFlow> {
        self.flows.iter().filter(|f| f.class.is_ef())
    }

    /// Flows outside the EF class.
    pub fn non_ef_flows(&self) -> impl Iterator<Item = &SporadicFlow> {
        self.flows.iter().filter(|f| !f.class.is_ef())
    }

    /// Inverted index `node -> flows visiting it` (indices into
    /// [`Self::flows`], ascending). One linear pass over all paths; lets
    /// crossing queries visit only candidates sharing a node instead of
    /// scanning the whole set (classes are deliberately *not* filtered —
    /// callers prune, exactly like the `crosses` scans this replaces).
    pub fn node_flow_index(&self) -> HashMap<NodeId, Vec<usize>> {
        let mut index: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, f) in self.flows.iter().enumerate() {
            for &n in f.path.nodes() {
                index.entry(n).or_default().push(i);
            }
        }
        // Each flow's path is loop-free, so every per-node list is already
        // strictly ascending and duplicate-free.
        index
    }

    // ------------------------------------------------------------------
    // Path relations (paper §2.2, Figure 1)
    // ------------------------------------------------------------------

    /// Whether `τⱼ` crosses the reference path (`P_j ∩ path ≠ ∅`).
    pub fn crosses(&self, j: &SporadicFlow, path: &Path) -> bool {
        j.path.nodes().iter().any(|n| path.visits(*n))
    }

    /// `first_{j,path}`: first node of `path` visited by `τⱼ`, in `τⱼ`'s
    /// own visiting order.
    pub fn first_on(&self, j: &SporadicFlow, path: &Path) -> Option<NodeId> {
        j.path.nodes().iter().copied().find(|n| path.visits(*n))
    }

    /// `last_{j,path}`: last node of `path` visited by `τⱼ`, in `τⱼ`'s own
    /// visiting order.
    pub fn last_on(&self, j: &SporadicFlow, path: &Path) -> Option<NodeId> {
        j.path
            .nodes()
            .iter()
            .rev()
            .copied()
            .find(|n| path.visits(*n))
    }

    /// The node of `path` (in *path order*) where the crossing with `τⱼ`
    /// begins: `first_{owner,j}` when the owner follows `path`.
    pub fn entry_on_path(&self, j: &SporadicFlow, path: &Path) -> Option<NodeId> {
        path.nodes().iter().copied().find(|n| j.path.visits(*n))
    }

    /// Crossing direction of `τⱼ` over the reference path, `None` when the
    /// paths are disjoint. Implements the `first_{j,i} = first_{i,j}`
    /// criterion of the paper.
    pub fn direction(&self, j: &SporadicFlow, path: &Path) -> Option<CrossDirection> {
        let fji = self.first_on(j, path)?;
        let fij = self.entry_on_path(j, path)?;
        Some(if fji == fij {
            CrossDirection::Same
        } else {
            CrossDirection::Reverse
        })
    }

    /// Whether `τⱼ` satisfies the same-direction criterion over `path`.
    pub fn same_direction(&self, j: &SporadicFlow, path: &Path) -> bool {
        self.direction(j, path) == Some(CrossDirection::Same)
    }

    /// Shared nodes between `τⱼ` and the path, in `τⱼ`'s visiting order.
    pub fn shared_nodes(&self, j: &SporadicFlow, path: &Path) -> Vec<NodeId> {
        j.path.shared_with(path)
    }

    /// Decomposes `τⱼ`'s crossing of the reference path into maximal
    /// contiguous [`CrossingSegment`]s (empty when the paths are
    /// disjoint). A compliant (Assumption 1) crossing yields exactly one
    /// segment; leave-and-rejoin routes yield several.
    ///
    /// Memoised per (crosser path, reference path); see
    /// [`Self::crossing_segments_shared`] for the allocation-free variant.
    pub fn crossing_segments(&self, j: &SporadicFlow, path: &Path) -> Vec<CrossingSegment> {
        (*self.crossing_segments_shared(j, path)).clone()
    }

    /// Memoised crossing-segment decomposition, returned as a shared
    /// handle so hot loops avoid re-cloning the segment vector.
    pub fn crossing_segments_shared(
        &self,
        j: &SporadicFlow,
        path: &Path,
    ) -> Arc<Vec<CrossingSegment>> {
        if let Some(hit) = self.relations.get(&j.path, path) {
            return hit;
        }
        let computed = Arc::new(self.crossing_segments_uncached(j, path));
        self.relations.insert(&j.path, path, Arc::clone(&computed));
        computed
    }

    /// The direct (memo-bypassing) decomposition. Kept public as the
    /// reference implementation for differential tests and benchmarks.
    pub fn crossing_segments_uncached(
        &self,
        j: &SporadicFlow,
        path: &Path,
    ) -> Vec<CrossingSegment> {
        // (index in j's path, index in reference path) of shared nodes.
        let shared: Vec<(usize, usize)> = j
            .path
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(ci, n)| path.index_of(*n).map(|pi| (ci, pi)))
            .collect();
        let mut segments = Vec::new();
        let mut cur: Vec<(usize, usize)> = Vec::new();
        let mut dir: i64 = 0; // 0 unknown, +1 ascending, -1 descending
        for &(ci, pi) in &shared {
            let extend = match cur.last() {
                None => true,
                Some(&(pci, ppi)) => {
                    let step = pi as i64 - ppi as i64;
                    ci == pci + 1 && step.abs() == 1 && (dir == 0 || step == dir)
                }
            };
            if extend {
                if let Some(&(_, ppi)) = cur.last() {
                    dir = pi as i64 - ppi as i64;
                }
                cur.push((ci, pi));
            } else {
                segments.push(Self::finish_segment(j, &cur, dir));
                cur = vec![(ci, pi)];
                dir = 0;
            }
        }
        if !cur.is_empty() {
            segments.push(Self::finish_segment(j, &cur, dir));
        }
        segments
    }

    fn finish_segment(j: &SporadicFlow, items: &[(usize, usize)], dir: i64) -> CrossingSegment {
        CrossingSegment {
            nodes: items.iter().map(|&(ci, _)| j.path.nodes()[ci]).collect(),
            direction: if dir < 0 {
                CrossDirection::Reverse
            } else {
                CrossDirection::Same
            },
        }
    }

    /// Direction of the crossing segment of `τⱼ` containing `node`, if
    /// any. This is the segment-aware refinement of [`Self::direction`]:
    /// the two agree on Assumption-1-compliant crossings.
    pub fn segment_direction_at(
        &self,
        j: &SporadicFlow,
        path: &Path,
        node: NodeId,
    ) -> Option<CrossDirection> {
        self.crossing_segments_shared(j, path)
            .iter()
            .find(|s| s.contains(node))
            .map(|s| s.direction)
    }

    /// Memo-bypassing variant of [`Self::segment_direction_at`], matching
    /// the pre-cache cost profile (reference implementation).
    pub fn segment_direction_at_uncached(
        &self,
        j: &SporadicFlow,
        path: &Path,
        node: NodeId,
    ) -> Option<CrossDirection> {
        self.crossing_segments_uncached(j, path)
            .into_iter()
            .find(|s| s.contains(node))
            .map(|s| s.direction)
    }

    /// `C_j^{slow_{j,path}}`: largest processing time of `τⱼ` on the nodes
    /// it shares with the path (0 when disjoint).
    pub fn slow_cost_on(&self, j: &SporadicFlow, path: &Path) -> Duration {
        j.path
            .nodes()
            .iter()
            .filter(|n| path.visits(**n))
            .map(|n| j.cost_at(*n))
            .max()
            .unwrap_or(0)
    }

    /// `max_{j same-direction} C_j^h` over flows visiting `h`: the cost of
    /// the extra packet counted once per non-slow node in `W`. The path
    /// owner always participates, so the max is positive whenever the owner
    /// visits `h`.
    pub fn max_samedir_cost(&self, path: &Path, node: NodeId) -> Duration {
        self.max_samedir_cost_filtered(path, node, |_| true)
    }

    /// Like [`Self::max_samedir_cost`], restricted to a flow subset
    /// selected by `keep` (used by the EF analysis which partitions flows).
    pub fn max_samedir_cost_filtered(
        &self,
        path: &Path,
        node: NodeId,
        keep: impl Fn(&SporadicFlow) -> bool,
    ) -> Duration {
        self.flows
            .iter()
            .filter(|j| {
                keep(j) && self.segment_direction_at(j, path, node) == Some(CrossDirection::Same)
            })
            .map(|j| j.cost_at(node))
            .max()
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Smin and M
    // ------------------------------------------------------------------

    /// `Sminⱼʰ`: minimum time for a packet of `τⱼ` to go from its source
    /// node to (arrival at) node `h ∈ Pⱼ`.
    pub fn smin(&self, j: &SporadicFlow, node: NodeId, mode: SminMode) -> Option<Duration> {
        let idx = j.path.index_of(node)?;
        let mut s = 0;
        for k in 0..idx {
            let here = j.path.nodes()[k];
            let next = j.path.nodes()[k + 1];
            if mode == SminMode::ProcessingAndLink {
                s += j.cost_at_index(k);
            }
            s += self.network.link_delay(here, next).lmin;
        }
        Some(s)
    }

    /// Transit-only upper bound on the traversal time to `h ∈ Pⱼ`
    /// (`Σ (Cⱼ + Lmax)` upstream). This is *not* a sound `Smax` in loaded
    /// networks (it ignores queueing); the analysis crate computes the
    /// sound recursive variant. Exposed for seeding and for the
    /// `TransitOnly` ablation mode.
    ///
    /// `None` when the flow does not visit `node` **or** the sum
    /// overflows i64 — a wrapped (or zero-substituted) seed would be an
    /// *optimistic* under-approximation, capable of declaring an
    /// unschedulable set schedulable, so callers must treat `None` on a
    /// visited node as an overflow verdict, never as 0.
    pub fn transit_smax(&self, j: &SporadicFlow, node: NodeId) -> Option<Duration> {
        let idx = j.path.index_of(node)?;
        let mut s: Duration = 0;
        for k in 0..idx {
            let here = j.path.nodes()[k];
            let next = j.path.nodes()[k + 1];
            s = s
                .checked_add(j.cost_at_index(k))?
                .checked_add(self.network.link_delay(here, next).lmax)?;
        }
        Some(s)
    }

    /// `Mᵢʰ` along the reference path: minimum propagation time of a
    /// busy-period front from the path's first node up to (arrival at)
    /// `h ∈ path`.
    pub fn m_term(&self, path: &Path, node: NodeId, convention: MinConvention) -> Option<Duration> {
        self.m_term_filtered(path, node, convention, |_| true)
    }

    /// [`Self::m_term`] restricted to a flow subset selected by `keep`
    /// (the EF analysis only lets EF packets relay EF busy-period fronts).
    pub fn m_term_filtered(
        &self,
        path: &Path,
        node: NodeId,
        convention: MinConvention,
        keep: impl Fn(&SporadicFlow) -> bool + Copy,
    ) -> Option<Duration> {
        let idx = path.index_of(node)?;
        let mut s = 0;
        for k in 0..idx {
            let here = path.nodes()[k];
            let next = path.nodes()[k + 1];
            let min_cost = self.min_front_cost(path, here, next, convention, keep);
            s += min_cost + self.network.link_delay(here, next).lmin;
        }
        Some(s)
    }

    fn min_front_cost(
        &self,
        path: &Path,
        here: NodeId,
        next: NodeId,
        convention: MinConvention,
        keep: impl Fn(&SporadicFlow) -> bool + Copy,
    ) -> Duration {
        let samedir_here = |j: &&SporadicFlow| {
            self.segment_direction_at(j, path, here) == Some(CrossDirection::Same)
        };
        match convention {
            MinConvention::Visiting => self
                .flows
                .iter()
                .filter(|j| keep(j) && samedir_here(j))
                .map(|j| j.cost_at(here))
                .min()
                .unwrap_or(0),
            MinConvention::ZeroConvention => self
                .flows
                .iter()
                .filter(|j| keep(j) && self.crosses(j, path) && self.same_direction(j, path))
                .map(|j| j.cost_at(here))
                .min()
                .unwrap_or(0),
            MinConvention::EdgeTraversing => self
                .flows
                .iter()
                .filter(|j| keep(j) && samedir_here(j) && j.path.suc(here) == Some(next))
                .map(|j| j.cost_at(here))
                .min()
                .unwrap_or(0),
        }
    }

    // ------------------------------------------------------------------
    // Load metrics
    // ------------------------------------------------------------------

    /// Total utilisation at a node: `Σᵢ Cᵢʰ / Tᵢ`.
    pub fn utilisation_at(&self, node: NodeId) -> f64 {
        self.flows.iter().map(|f| f.utilisation_at(node)).sum()
    }

    /// The most loaded node's utilisation; `>= 1.0` means the analysis
    /// busy periods may diverge.
    pub fn max_utilisation(&self) -> f64 {
        self.network
            .nodes()
            .iter()
            .map(|&n| self.utilisation_at(n))
            .fold(0.0, f64::max)
    }

    /// Replaces the flow list (used by Assumption 1 splitting), keeping
    /// the relation memo: segment decompositions depend on path values
    /// only, so they remain valid for any flow list over this network.
    pub(crate) fn with_flows(&self, flows: Vec<SporadicFlow>) -> Result<Self, ModelError> {
        FlowSet::new_with_cache(self.network.clone(), flows, self.relations.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_example;

    fn set() -> FlowSet {
        paper_example()
    }

    fn flow(s: &FlowSet, id: u32) -> &SporadicFlow {
        s.flow(FlowId(id)).unwrap()
    }

    #[test]
    fn crossing_and_direction_on_paper_example() {
        let s = set();
        let p1 = &flow(&s, 1).path.clone();
        let p2 = &flow(&s, 2).path.clone();
        let p3 = &flow(&s, 3).path.clone();

        // tau_2 and tau_1 are disjoint
        assert!(!s.crosses(flow(&s, 2), p1));
        assert_eq!(s.direction(flow(&s, 2), p1), None);

        // tau_3 crosses P1 at nodes {3,4} in the same direction
        assert!(s.crosses(flow(&s, 3), p1));
        assert_eq!(s.first_on(flow(&s, 3), p1), Some(NodeId(3)));
        assert_eq!(s.last_on(flow(&s, 3), p1), Some(NodeId(4)));
        assert_eq!(s.direction(flow(&s, 3), p1), Some(CrossDirection::Same));

        // tau_3 crosses P2 = [9,10,7,6] in reverse: it visits 7 before 10
        assert_eq!(s.first_on(flow(&s, 3), p2), Some(NodeId(7)));
        assert_eq!(s.entry_on_path(flow(&s, 3), p2), Some(NodeId(10)));
        assert_eq!(s.direction(flow(&s, 3), p2), Some(CrossDirection::Reverse));

        // and symmetrically tau_2 crosses P3 in reverse
        assert_eq!(s.direction(flow(&s, 2), p3), Some(CrossDirection::Reverse));

        // tau_5 shares the single node 7 with P2: degenerate same direction
        assert_eq!(s.direction(flow(&s, 5), p2), Some(CrossDirection::Same));

        // a flow is same-direction with its own path
        assert_eq!(s.direction(flow(&s, 1), p1), Some(CrossDirection::Same));
    }

    #[test]
    fn slow_cost_is_restricted_to_shared_nodes() {
        let s = set();
        let p1 = flow(&s, 1).path.clone();
        assert_eq!(s.slow_cost_on(flow(&s, 3), &p1), 4);
        assert_eq!(s.slow_cost_on(flow(&s, 2), &p1), 0);
    }

    #[test]
    fn smin_accumulates_processing_and_links() {
        let s = set();
        let f3 = flow(&s, 3);
        // nodes 2,3,4 before 7: 3 * (4 + 1)
        assert_eq!(s.smin(f3, NodeId(7), SminMode::ProcessingAndLink), Some(15));
        assert_eq!(s.smin(f3, NodeId(7), SminMode::LinkOnly), Some(3));
        assert_eq!(s.smin(f3, NodeId(2), SminMode::ProcessingAndLink), Some(0));
        assert_eq!(s.smin(f3, NodeId(1), SminMode::ProcessingAndLink), None);
    }

    #[test]
    fn transit_smax_overflow_reports_none_instead_of_wrapping() {
        use crate::examples::line_topology;
        // Two upstream hops of ~ i64::MAX/2 each: the running sum leaves
        // i64 at the third node and must surface as None (the analysis
        // maps it to a typed overflow verdict), never as a wrapped value.
        let s = line_topology(1, 3, i64::MAX / 2, i64::MAX / 2, 1, 1).unwrap();
        let f = &s.flows()[0];
        assert_eq!(s.transit_smax(f, NodeId(1)), Some(0));
        assert_eq!(s.transit_smax(f, NodeId(3)), None);
    }

    #[test]
    fn transit_smax_uses_lmax() {
        let s = set();
        let f3 = flow(&s, 3);
        assert_eq!(s.transit_smax(f3, NodeId(10)), Some(20));
        assert_eq!(s.transit_smax(f3, NodeId(2)), Some(0));
    }

    #[test]
    fn m_term_conventions_differ_as_documented() {
        let s = set();
        let p2 = flow(&s, 2).path.clone();
        // Visiting: on nodes 9 and 10, the only same-direction flows
        // visiting them is tau_2 itself (tau_5's crossing is degenerate at
        // node 7, tau_3/tau_4 are reverse): min C = 4, so M = 2*(4+1).
        assert_eq!(s.m_term(&p2, NodeId(7), MinConvention::Visiting), Some(10));
        // ZeroConvention: tau_5 is same-direction but does not visit 9/10,
        // its conventional cost 0 drives the min down: M = 2*(0+1).
        assert_eq!(
            s.m_term(&p2, NodeId(7), MinConvention::ZeroConvention),
            Some(2)
        );
        // EdgeTraversing: only tau_2 traverses links 9->10 and 10->7.
        assert_eq!(
            s.m_term(&p2, NodeId(7), MinConvention::EdgeTraversing),
            Some(10)
        );
        assert_eq!(s.m_term(&p2, NodeId(9), MinConvention::Visiting), Some(0));
    }

    #[test]
    fn crossing_segments_on_compliant_flows() {
        let s = set();
        let p1 = flow(&s, 1).path.clone();
        // tau_3 crosses P1 contiguously at [3,4]: one same-direction
        // segment.
        let segs = s.crossing_segments(flow(&s, 3), &p1);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nodes, vec![NodeId(3), NodeId(4)]);
        assert_eq!(segs[0].direction, CrossDirection::Same);
        assert_eq!(segs[0].first_in_crosser_order(), NodeId(3));
        assert_eq!(segs[0].entry_in_path_order(&p1), NodeId(3));
        // tau_3 over P2 = [9,10,7,6]: one reverse segment [7,10].
        let p2 = flow(&s, 2).path.clone();
        let segs = s.crossing_segments(flow(&s, 3), &p2);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].direction, CrossDirection::Reverse);
        assert_eq!(segs[0].first_in_crosser_order(), NodeId(7));
        assert_eq!(segs[0].entry_in_path_order(&p2), NodeId(10));
        // disjoint flows have no segment
        assert!(s.crossing_segments(flow(&s, 2), &p1).is_empty());
    }

    #[test]
    fn crossing_segments_split_on_leave_and_rejoin() {
        // The soundness-regression topology: tau_b = [3,8,2] leaves
        // tau_a's path [3,2,7,6] after node 3 and re-enters at node 2.
        let net = Network::uniform(8, 1, 1).unwrap();
        let a =
            SporadicFlow::uniform(1, Path::from_ids([3, 2, 7, 6]).unwrap(), 92, 6, 0, 500).unwrap();
        let b =
            SporadicFlow::uniform(2, Path::from_ids([3, 8, 2]).unwrap(), 54, 8, 0, 500).unwrap();
        let s = FlowSet::new(net, vec![a, b]).unwrap();
        let pa = s.flows()[0].path.clone();
        let segs = s.crossing_segments(&s.flows()[1], &pa);
        assert_eq!(segs.len(), 2, "leave-and-rejoin must split");
        assert_eq!(segs[0].nodes, vec![NodeId(3)]);
        assert_eq!(segs[1].nodes, vec![NodeId(2)]);
        // Both single-node segments are degenerate same-direction.
        assert!(segs.iter().all(|x| x.direction == CrossDirection::Same));
        assert_eq!(
            s.segment_direction_at(&s.flows()[1], &pa, NodeId(2)),
            Some(CrossDirection::Same)
        );
        assert_eq!(s.segment_direction_at(&s.flows()[1], &pa, NodeId(7)), None);
    }

    #[test]
    fn crossing_segments_split_on_skipped_node() {
        // Crosser hops 1 -> 3 directly while the path goes 1 -> 2 -> 3:
        // adjacent in the crosser's path but not on the reference path.
        let net = Network::uniform(8, 1, 1).unwrap();
        let a =
            SporadicFlow::uniform(1, Path::from_ids([1, 2, 3]).unwrap(), 50, 2, 0, 500).unwrap();
        let b =
            SporadicFlow::uniform(2, Path::from_ids([1, 3, 8]).unwrap(), 50, 2, 0, 500).unwrap();
        let s = FlowSet::new(net, vec![a, b]).unwrap();
        let pa = s.flows()[0].path.clone();
        let segs = s.crossing_segments(&s.flows()[1], &pa);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn max_samedir_cost_excludes_reverse_flows() {
        let s = set();
        let p2 = flow(&s, 2).path.clone();
        // At node 10, tau_3/tau_4 cross P2 in reverse; only tau_2 counts.
        assert_eq!(s.max_samedir_cost(&p2, NodeId(10)), 4);
        // At node 7, tau_5's degenerate crossing counts.
        assert_eq!(s.max_samedir_cost(&p2, NodeId(7)), 4);
        // Filtered variant can exclude the owner's class entirely.
        assert_eq!(
            s.max_samedir_cost_filtered(&p2, NodeId(7), |f| f.id.0 > 90),
            0
        );
    }

    #[test]
    fn utilisation_metrics() {
        let s = set();
        // node 3 carries tau_1, tau_3, tau_4, tau_5: 4 * 4/36
        let u = s.utilisation_at(NodeId(3));
        assert!((u - 4.0 * 4.0 / 36.0).abs() < 1e-12);
        assert!(s.max_utilisation() < 1.0);
    }

    #[test]
    fn memoised_segments_match_uncached() {
        let s = set();
        for i in s.flows() {
            for j in s.flows() {
                assert_eq!(
                    s.crossing_segments(j, &i.path),
                    s.crossing_segments_uncached(j, &i.path),
                );
                for &n in i.path.nodes() {
                    assert_eq!(
                        s.segment_direction_at(j, &i.path, n),
                        s.segment_direction_at_uncached(j, &i.path, n),
                    );
                }
            }
        }
        assert!(!s.relation_cache().is_empty());
    }

    #[test]
    fn relation_cache_is_shared_with_derived_sets() {
        let s = set();
        // Warm the memo on the base set.
        for i in s.flows() {
            for j in s.flows() {
                s.crossing_segments_shared(j, &i.path);
            }
        }
        let warm = s.relation_cache().len();
        assert!(warm > 0);

        let extra = SporadicFlow::uniform(99, Path::from_ids([1, 2, 3, 4]).unwrap(), 50, 2, 0, 500)
            .unwrap();
        let bigger = s.extended_with(extra).unwrap();
        assert_eq!(bigger.len(), s.len() + 1);
        // The derived set sees the warm entries and adds its own to the
        // same shared table.
        assert_eq!(bigger.relation_cache().len(), warm);
        let p1 = bigger.flow(FlowId(1)).unwrap().path.clone();
        let f99 = bigger.flow(FlowId(99)).unwrap().clone();
        bigger.crossing_segments_shared(&f99, &p1);
        assert!(bigger.relation_cache().len() > warm);
        assert_eq!(s.relation_cache().len(), bigger.relation_cache().len());

        let smaller = bigger.without_flow(FlowId(99)).unwrap();
        assert_eq!(smaller.len(), s.len());
        assert_eq!(smaller.relation_cache().len(), s.relation_cache().len());
        assert!(bigger.without_flow(FlowId(42)).is_ok());
    }

    #[test]
    fn validation_rejects_bad_sets() {
        let net = Network::uniform(3, 1, 1).unwrap();
        let f = SporadicFlow::uniform(1, Path::from_ids([1, 9]).unwrap(), 10, 1, 0, 20).unwrap();
        assert!(matches!(
            FlowSet::new(net.clone(), vec![f]).unwrap_err(),
            ModelError::UnknownNode { .. }
        ));
        let f1 = SporadicFlow::uniform(1, Path::from_ids([1, 2]).unwrap(), 10, 1, 0, 20).unwrap();
        let f2 = SporadicFlow::uniform(1, Path::from_ids([2, 3]).unwrap(), 10, 1, 0, 20).unwrap();
        assert!(matches!(
            FlowSet::new(net.clone(), vec![f1, f2]).unwrap_err(),
            ModelError::DuplicateFlowId { .. }
        ));
        assert!(matches!(
            FlowSet::new(net, vec![]).unwrap_err(),
            ModelError::EmptyFlowSet
        ));
    }
}
