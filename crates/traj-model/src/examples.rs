//! Deterministic example flow sets, starting with the paper's §5 example.

use crate::error::ModelError;
use crate::flow::{SporadicFlow, TrafficClass};
use crate::flowset::FlowSet;
use crate::network::Network;
use crate::path::Path;

/// The paper's §5 example (Tables 1 and 2).
///
/// * 11 nodes, `Lmin = Lmax = 1`;
/// * five flows, all with period 36, cost 4 on every visited node, no
///   release jitter;
/// * deadlines `D = (40, 45, 55, 55, 50)`;
/// * paths
///   `P1 = [1,3,4,5]`, `P2 = [9,10,7,6]`, `P3 = P4 = [2,3,4,7,10,11]`,
///   `P5 = [2,3,4,7,8]`.
pub fn paper_example() -> FlowSet {
    // The parameters are compile-time constants satisfying every model
    // invariant, so the fallible constructors cannot fail here.
    match build_paper_example() {
        Ok(set) => set,
        Err(e) => unreachable!("static example invalid: {e}"),
    }
}

fn build_paper_example() -> Result<FlowSet, ModelError> {
    let network = Network::uniform(11, 1, 1)?;
    let spec: &[(u32, &[u32], i64)] = &[
        (1, &[1, 3, 4, 5], 40),
        (2, &[9, 10, 7, 6], 45),
        (3, &[2, 3, 4, 7, 10, 11], 55),
        (4, &[2, 3, 4, 7, 10, 11], 55),
        (5, &[2, 3, 4, 7, 8], 50),
    ];
    let mut flows = Vec::with_capacity(spec.len());
    for &(id, path, d) in spec {
        flows.push(SporadicFlow::uniform(
            id,
            Path::from_ids(path.iter().copied())?,
            36,
            4,
            0,
            d,
        )?);
    }
    FlowSet::new(network, flows)
}

/// The paper's end-to-end response times of Table 2 for reference
/// (trajectory row). See EXPERIMENTS.md: these are the *published* values;
/// the faithful implementation of Property 2 yields tighter bounds for
/// flows 2..5 (the paper's `Smax` bootstrap is unspecified).
pub const PAPER_TABLE2_TRAJECTORY: [i64; 5] = [31, 43, 53, 53, 44];

/// The paper's holistic row of Table 2.
pub const PAPER_TABLE2_HOLISTIC: [i64; 5] = [43, 63, 73, 73, 56];

/// The deadlines of Table 1.
pub const PAPER_TABLE1_DEADLINES: [i64; 5] = [40, 45, 55, 55, 50];

/// A DiffServ variant of the paper example: the five EF flows of
/// [`paper_example`] plus best-effort cross traffic with large packets on
/// every node, exercising the non-preemption term of Lemma 4.
///
/// `be_cost` is the transmission time of the largest non-EF packet; it
/// must be positive.
pub fn paper_example_with_best_effort(be_cost: i64) -> Result<FlowSet, ModelError> {
    let base = paper_example();
    let mut flows: Vec<SporadicFlow> = base.flows().to_vec();
    // One BE flow per EF path, same route, long period, large packets.
    for (next_id, ef) in (100..).zip(base.flows()) {
        let be = SporadicFlow::uniform(next_id, ef.path.clone(), 10_000, be_cost, 0, 1_000_000)?
            .with_class(TrafficClass::BestEffort)
            .named(format!("be_{}", next_id));
        flows.push(be);
    }
    FlowSet::new(base.network().clone(), flows)
}

/// A simple line topology: `n_flows` flows all traversing the same chain
/// of `hops` nodes, uniform period/cost — the canonical workload for
/// utilisation sweeps (`utilisation = n_flows * cost / period` per node).
pub fn line_topology(
    n_flows: u32,
    hops: u32,
    period: i64,
    cost: i64,
    lmin: i64,
    lmax: i64,
) -> Result<FlowSet, ModelError> {
    let network = Network::uniform(hops, lmin, lmax)?;
    let path = Path::from_ids(1..=hops)?;
    let mut flows = Vec::with_capacity(n_flows as usize);
    for id in 1..=n_flows {
        flows.push(SporadicFlow::uniform(
            id,
            path.clone(),
            period,
            cost,
            0,
            i64::MAX / 4,
        )?);
    }
    FlowSet::new(network, flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;

    #[test]
    fn paper_example_matches_table_1() {
        let s = paper_example();
        assert_eq!(s.len(), 5);
        for (i, f) in s.flows().iter().enumerate() {
            assert_eq!(f.period, 36);
            assert_eq!(f.jitter, 0);
            assert_eq!(f.max_cost(), 4);
            assert_eq!(f.deadline, PAPER_TABLE1_DEADLINES[i]);
        }
        assert_eq!(s.flow(FlowId(3)).unwrap().path.len(), 6);
        assert_eq!(s.network().lmax(), 1);
        assert_eq!(s.network().lmin(), 1);
    }

    #[test]
    fn best_effort_variant_partitions_classes() {
        let s = paper_example_with_best_effort(9).unwrap();
        assert_eq!(s.ef_flows().count(), 5);
        assert_eq!(s.non_ef_flows().count(), 5);
        for be in s.non_ef_flows() {
            assert_eq!(be.max_cost(), 9);
        }
    }

    #[test]
    fn line_topology_utilisation() {
        let s = line_topology(6, 4, 60, 5, 1, 2).unwrap();
        assert_eq!(s.len(), 6);
        assert!((s.max_utilisation() - 0.5).abs() < 1e-12);
    }
}
