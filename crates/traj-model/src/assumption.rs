//! Assumption 1: a flow never revisits another flow's path after leaving
//! it.
//!
//! The paper requires, for every pair `(τᵢ, τⱼ)` with intersecting paths,
//! that the nodes of `Pᵢ` visited by `τⱼ` form one *contiguous* segment of
//! `Pᵢ`, traversed either forward or backward. When a route violates this
//! ("leaves the path and crosses it again later"), the paper's fix is to
//! treat the flow's later crossing as a **new flow**, iterating until the
//! assumption holds. [`enforce_assumption1`] implements that iteration.
//!
//! Splitting semantics: a flow split at node `k` becomes a head flow over
//! `path[..k]` and a tail flow over `path[k..]`. The tail inherits the
//! period and class; its release jitter is the head's jitter plus the
//! head's *transit spread* (`Σ (Lmax − Lmin)` over the head), which is the
//! variability a lossless, otherwise idle network would add. Callers that
//! need a sound jitter under load should iterate with the analysis (see
//! `traj-analysis::ef` for how admission control does this); the split
//! machinery deliberately stays analysis-agnostic.

use crate::error::ModelError;
use crate::flow::SporadicFlow;
use crate::flowset::FlowSet;

/// A single detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The flow that leaves and re-enters.
    pub offender: crate::flow::FlowId,
    /// The flow whose path is re-entered.
    pub against: crate::flow::FlowId,
    /// Index (in the offender's path) of the first node of the re-entry.
    pub reentry_index: usize,
}

/// Checks Assumption 1 for the pair (`owner`, `crosser`): the positions in
/// `owner.path` of the shared nodes, listed in `crosser`'s visiting order,
/// must be consecutive and monotone (ascending = same direction,
/// descending = reverse). Returns the index in `crosser.path` where the
/// first re-entry happens, or `None` when the pair is compliant.
pub fn first_reentry(owner: &SporadicFlow, crosser: &SporadicFlow) -> Option<usize> {
    let mut positions: Vec<(usize, usize)> = Vec::new(); // (idx in crosser, idx in owner)
    for (ci, n) in crosser.path.nodes().iter().enumerate() {
        if let Some(oi) = owner.path.index_of(*n) {
            positions.push((ci, oi));
        }
    }
    if positions.len() < 2 {
        return None;
    }
    // Shared visits must be contiguous in the crosser's path: a gap means
    // the crosser left the owner's path and came back.
    for w in positions.windows(2) {
        let (c0, _) = w[0];
        let (c1, _) = w[1];
        if c1 != c0 + 1 {
            return Some(c1);
        }
    }
    // And their positions on the owner's path must be consecutive and
    // monotone: |P_i| positions form the interval [first, last] walked
    // forward or backward.
    let ascending = positions[1].1 > positions[0].1;
    for w in positions.windows(2) {
        let (_, o0) = w[0];
        let (c1, o1) = w[1];
        let ok = if ascending {
            o1 == o0 + 1
        } else {
            o0 == o1 + 1
        };
        if !ok {
            return Some(c1);
        }
    }
    None
}

/// Scans a flow set for Assumption 1 violations.
pub fn violations(set: &FlowSet) -> Vec<Violation> {
    let mut out = Vec::new();
    for owner in set.flows() {
        for crosser in set.flows() {
            if owner.id == crosser.id {
                continue;
            }
            if let Some(reentry_index) = first_reentry(owner, crosser) {
                out.push(Violation {
                    offender: crosser.id,
                    against: owner.id,
                    reentry_index,
                });
            }
        }
    }
    out
}

/// Iteratively splits offending flows until Assumption 1 holds.
///
/// Each split assigns the tail a fresh id (`base * 1000 + seq`) and a name
/// suffix `#k`; the process terminates because every split strictly
/// shortens some path. Returns the compliant set together with the number
/// of splits performed.
pub fn enforce_assumption1(set: &FlowSet) -> Result<(FlowSet, usize), ModelError> {
    let mut flows: Vec<SporadicFlow> = set.flows().to_vec();
    let mut splits = 0usize;
    let lspread = {
        let net = set.network();
        net.lmax() - net.lmin()
    };
    'outer: loop {
        for oi in 0..flows.len() {
            for ci in 0..flows.len() {
                if oi == ci {
                    continue;
                }
                if let Some(cut) = first_reentry(&flows[oi], &flows[ci]) {
                    let offender = flows[ci].clone();
                    let (head, tail) = split_flow(&offender, cut, lspread, splits)?;
                    flows[ci] = head;
                    flows.push(tail);
                    splits += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    let out = set.with_flows(flows)?;
    debug_assert!(violations(&out).is_empty());
    Ok((out, splits))
}

fn split_flow(
    f: &SporadicFlow,
    cut: usize,
    link_spread_per_hop: i64,
    seq: usize,
) -> Result<(SporadicFlow, SporadicFlow), ModelError> {
    let head_path = f.path.prefix_len(cut).ok_or(ModelError::Internal {
        what: "assumption-1 split cut must be interior to the path",
    })?;
    if cut >= f.path.len() {
        return Err(ModelError::Internal {
            what: "assumption-1 split cut must leave a non-empty tail",
        });
    }
    let tail_nodes = f.path.nodes()[cut..].to_vec();
    let tail_path = crate::path::Path::new(tail_nodes)?;
    let head_costs = f.costs()[..cut].to_vec();
    let tail_costs = f.costs()[cut..].to_vec();

    // Transit spread the head can add to the tail's release jitter.
    let head_hops = (cut - 1) as i64;
    let extra_jitter = head_hops.max(0) * link_spread_per_hop;

    let head = SporadicFlow::with_costs(
        f.id.0, head_path, f.period, head_costs, f.jitter, f.deadline,
    )?
    .named(format!("{}#head", f.name))
    .with_class(f.class);
    let tail = SporadicFlow::with_costs(
        f.id.0 * 1000 + seq as u32 + 1,
        tail_path,
        f.period,
        tail_costs,
        f.jitter + extra_jitter,
        f.deadline,
    )?
    .named(format!("{}#tail{}", f.name, seq + 1))
    .with_class(f.class);
    Ok((head, tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_example;
    use crate::network::Network;
    use crate::path::Path;

    fn f(id: u32, nodes: &[u32]) -> SporadicFlow {
        SporadicFlow::uniform(
            id,
            Path::from_ids(nodes.iter().copied()).unwrap(),
            36,
            4,
            0,
            100,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_is_compliant() {
        assert!(violations(&paper_example()).is_empty());
    }

    #[test]
    fn reverse_crossing_is_compliant() {
        // P2 = [9,10,7,6] vs P3 = [2,3,4,7,10,11]: consecutive descending.
        let owner = f(1, &[9, 10, 7, 6]);
        let crosser = f(2, &[2, 3, 4, 7, 10, 11]);
        assert_eq!(first_reentry(&owner, &crosser), None);
    }

    #[test]
    fn leave_and_rejoin_detected() {
        // Crosser visits node 1, leaves to node 9, re-enters at node 3.
        let owner = f(1, &[1, 2, 3, 4]);
        let crosser = f(2, &[1, 9, 3]);
        assert_eq!(first_reentry(&owner, &crosser), Some(2));
    }

    #[test]
    fn skipping_a_node_of_the_owner_is_a_violation() {
        // Crosser hops 1 -> 3 directly while the owner goes 1 -> 2 -> 3:
        // the shared positions on the owner's path are not consecutive.
        let owner = f(1, &[1, 2, 3]);
        let crosser = f(2, &[1, 3, 8]);
        assert_eq!(first_reentry(&owner, &crosser), Some(1));
    }

    #[test]
    fn enforcement_splits_until_compliant() {
        let net = Network::uniform(9, 1, 2).unwrap();
        let owner = f(1, &[1, 2, 3, 4]);
        let crosser = f(2, &[1, 9, 3]); // re-enters owner's path at 3
        let set = FlowSet::new(net, vec![owner, crosser]).unwrap();
        let (fixed, splits) = enforce_assumption1(&set).unwrap();
        assert_eq!(splits, 1);
        assert_eq!(fixed.len(), 3);
        assert!(violations(&fixed).is_empty());
        // The tail flow starts at the re-entry node and carries the head's
        // transit spread as extra jitter: head [1,9] has 1 hop * spread 1.
        let tail = fixed
            .flows()
            .iter()
            .find(|fl| fl.name.contains("#tail"))
            .unwrap();
        assert_eq!(tail.path.first(), crate::network::NodeId(3));
        assert_eq!(tail.jitter, 1);
    }

    #[test]
    fn enforcement_is_a_noop_on_compliant_sets() {
        let (fixed, splits) = enforce_assumption1(&paper_example()).unwrap();
        assert_eq!(splits, 0);
        assert_eq!(fixed.len(), 5);
    }
}
