//! Network model: nodes and links with bounded delays.
//!
//! The paper's network model is deliberately abstract: links are FIFO and
//! the network delay between two nodes has known bounds `Lmin` and `Lmax`;
//! there are no failures and no losses. [`Network`] captures exactly that:
//! a node universe plus global delay bounds, with optional per-link
//! overrides for experiments that need heterogeneous links.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::time::Duration;

/// Identifier of a store-and-forward node (router / switch output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Lower/upper bound on the delay of a link (the paper's `Lmin`/`Lmax`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDelay {
    /// Minimum network delay between two consecutive nodes.
    pub lmin: Duration,
    /// Maximum network delay between two consecutive nodes.
    pub lmax: Duration,
}

impl LinkDelay {
    /// Builds a delay bound pair, validating `0 <= lmin <= lmax`.
    pub fn new(lmin: Duration, lmax: Duration) -> Result<Self, ModelError> {
        if lmin < 0 {
            return Err(ModelError::Negative {
                what: "lmin",
                value: lmin,
            });
        }
        if lmin > lmax {
            return Err(ModelError::InvertedLinkDelay { lmin, lmax });
        }
        Ok(LinkDelay { lmin, lmax })
    }

    /// A deterministic link: `lmin == lmax == delay`.
    pub fn fixed(delay: Duration) -> Result<Self, ModelError> {
        Self::new(delay, delay)
    }

    /// Width of the delay interval (`lmax - lmin`), the per-hop jitter a
    /// link can introduce.
    pub fn spread(&self) -> Duration {
        self.lmax - self.lmin
    }
}

/// The network: a set of nodes and delay bounds for the links between them.
///
/// The paper uses a single global `(Lmin, Lmax)` pair; [`Network::uniform`]
/// models that. Per-link overrides can be registered with
/// [`Network::set_link_delay`] for heterogeneous scenarios; lookups fall
/// back to the global bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<NodeId>,
    default_delay: LinkDelay,
    #[serde(default)]
    overrides: HashMap<(NodeId, NodeId), LinkDelay>,
}

impl Network {
    /// A network of `n` nodes numbered `1..=n` with uniform link bounds.
    pub fn uniform(n: u32, lmin: Duration, lmax: Duration) -> Result<Self, ModelError> {
        let default_delay = LinkDelay::new(lmin, lmax)?;
        Ok(Network {
            nodes: (1..=n).map(NodeId).collect(),
            default_delay,
            overrides: HashMap::new(),
        })
    }

    /// A network over an explicit node list.
    pub fn with_nodes(nodes: Vec<NodeId>, delay: LinkDelay) -> Result<Self, ModelError> {
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != nodes.len() {
            // find one duplicate for the error message
            let mut seen = std::collections::HashSet::new();
            for n in &nodes {
                if !seen.insert(*n) {
                    return Err(ModelError::DuplicateNode { node: *n });
                }
            }
        }
        Ok(Network {
            nodes,
            default_delay: delay,
            overrides: HashMap::new(),
        })
    }

    /// All nodes of the network.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` belongs to the network.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Global default delay bounds.
    pub fn default_delay(&self) -> LinkDelay {
        self.default_delay
    }

    /// Registers heterogeneous bounds for the directed link `from -> to`.
    pub fn set_link_delay(&mut self, from: NodeId, to: NodeId, delay: LinkDelay) {
        self.overrides.insert((from, to), delay);
    }

    /// Delay bounds of the directed link `from -> to`.
    pub fn link_delay(&self, from: NodeId, to: NodeId) -> LinkDelay {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_delay)
    }

    /// The most pessimistic `Lmax` over the whole network (used by the
    /// closed-form bounds which assume a global constant).
    pub fn lmax(&self) -> Duration {
        self.overrides
            .values()
            .map(|d| d.lmax)
            .chain(std::iter::once(self.default_delay.lmax))
            .max()
            .unwrap_or(0)
    }

    /// The most optimistic `Lmin` over the whole network.
    pub fn lmin(&self) -> Duration {
        self.overrides
            .values()
            .map(|d| d.lmin)
            .chain(std::iter::once(self.default_delay.lmin))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_network_numbers_nodes_from_one() {
        let net = Network::uniform(4, 1, 2).unwrap();
        assert_eq!(net.nodes(), &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert!(net.contains(NodeId(4)));
        assert!(!net.contains(NodeId(5)));
    }

    #[test]
    fn link_delay_validation() {
        assert!(LinkDelay::new(2, 1).is_err());
        assert!(LinkDelay::new(-1, 1).is_err());
        let d = LinkDelay::new(1, 3).unwrap();
        assert_eq!(d.spread(), 2);
        assert_eq!(LinkDelay::fixed(5).unwrap().spread(), 0);
    }

    #[test]
    fn per_link_override_falls_back_to_default() {
        let mut net = Network::uniform(3, 1, 1).unwrap();
        net.set_link_delay(NodeId(1), NodeId(2), LinkDelay::new(2, 5).unwrap());
        assert_eq!(net.link_delay(NodeId(1), NodeId(2)).lmax, 5);
        assert_eq!(net.link_delay(NodeId(2), NodeId(3)).lmax, 1);
        assert_eq!(net.lmax(), 5);
        assert_eq!(net.lmin(), 1);
    }

    #[test]
    fn duplicate_nodes_rejected() {
        let err = Network::with_nodes(vec![NodeId(1), NodeId(1)], LinkDelay::fixed(1).unwrap());
        assert_eq!(
            err.unwrap_err(),
            ModelError::DuplicateNode { node: NodeId(1) }
        );
    }
}
