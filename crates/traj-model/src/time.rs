//! Discrete time and the integer arithmetic helpers of the paper.
//!
//! The analysis manipulates *signed* quantities (the activation instant `t`
//! ranges over `[-Jᵢ, -Jᵢ + B)` and the alignment terms `A_{i,j}` may be
//! negative), so ticks are `i64` throughout. Durations (periods, processing
//! times, link delays) are non-negative by construction and validated at
//! model-build time.

/// A point or offset on the discrete time axis (may be negative).
pub type Tick = i64;

/// A non-negative span of ticks (periods, costs, delays, bounds).
pub type Duration = i64;

/// Floor division that is correct for negative numerators.
///
/// Rust's `/` truncates towards zero; the paper's `⌊a/b⌋` requires
/// flooring. `b` must be positive.
///
/// ```
/// use traj_model::floor_div;
/// assert_eq!(floor_div(7, 2), 3);
/// assert_eq!(floor_div(-7, 2), -4);
/// assert_eq!(floor_div(-8, 2), -4);
/// ```
#[inline]
pub fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "floor_div requires a positive divisor");
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division, correct for negative numerators. `b` must be positive.
///
/// ```
/// use traj_model::ceil_div;
/// assert_eq!(ceil_div(7, 2), 4);
/// assert_eq!(ceil_div(8, 2), 4);
/// assert_eq!(ceil_div(-7, 2), -3);
/// ```
#[inline]
pub fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "ceil_div requires a positive divisor");
    let q = a / b;
    if a % b != 0 && (a > 0) == (b > 0) {
        q + 1
    } else {
        q
    }
}

/// The paper's `(1 + ⌊a/b⌋)⁺` operator: `max(0, 1 + ⌊a/b⌋)`.
///
/// This is the maximum number of packets of a sporadic flow of period `b`
/// that can be generated in a window of length `a` (closed at both ends),
/// zero when the window is empty.
///
/// ```
/// use traj_model::plus_one_floor;
/// assert_eq!(plus_one_floor(0, 36), 1);   // a single release fits
/// assert_eq!(plus_one_floor(35, 36), 1);
/// assert_eq!(plus_one_floor(36, 36), 2);
/// assert_eq!(plus_one_floor(-1, 36), 0);  // empty window
/// ```
#[inline]
pub fn plus_one_floor(a: i64, b: i64) -> i64 {
    (1 + floor_div(a, b)).max(0)
}

/// Checked variant of [`plus_one_floor`]: `None` when `1 + ⌊a/b⌋`
/// overflows (only possible for `a` close to `i64::MAX` with `b = 1`).
#[inline]
pub fn checked_plus_one_floor(a: i64, b: i64) -> Option<i64> {
    floor_div(a, b).checked_add(1).map(|v| v.max(0))
}

/// Checked variant of [`ceil_div`]: `None` when the rounding adjustment
/// overflows.
#[inline]
pub fn checked_ceil_div(a: i64, b: i64) -> Option<i64> {
    debug_assert!(b > 0, "ceil_div requires a positive divisor");
    let q = a / b;
    if a % b != 0 && (a > 0) == (b > 0) {
        q.checked_add(1)
    } else {
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_div_matches_mathematical_floor() {
        for a in -50..=50 {
            for b in 1..=7 {
                let expect = ((a as f64) / (b as f64)).floor() as i64;
                assert_eq!(floor_div(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn ceil_div_matches_mathematical_ceil() {
        for a in -50..=50 {
            for b in 1..=7 {
                let expect = ((a as f64) / (b as f64)).ceil() as i64;
                assert_eq!(ceil_div(a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn floor_plus_ceil_relation() {
        // ⌈a/b⌉ = ⌊(a + b - 1)/b⌋ for all integers a, positive b.
        for a in -100..=100 {
            for b in 1..=9 {
                assert_eq!(ceil_div(a, b), floor_div(a + b - 1, b));
            }
        }
    }

    #[test]
    fn plus_one_floor_is_window_packet_count() {
        // A sporadic flow of period T releases at most 1 + floor(len/T)
        // packets in a closed window of length len >= 0.
        assert_eq!(plus_one_floor(71, 36), 2);
        assert_eq!(plus_one_floor(72, 36), 3);
        assert_eq!(plus_one_floor(-36, 36), 0);
        assert_eq!(plus_one_floor(-37, 36), 0);
    }

    #[test]
    fn plus_one_floor_is_monotone_in_window() {
        let mut prev = 0;
        for a in -80..=200 {
            let v = plus_one_floor(a, 17);
            assert!(v >= prev);
            prev = v;
        }
    }
}
