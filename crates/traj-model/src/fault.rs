//! Fault scenarios: link/node failures with deterministic rerouting.
//!
//! The paper analyses a fixed, healthy topology; a production admission
//! system must also answer "which flows still meet their deadlines if
//! link `h → h'` fails?". This module supplies the model half of that
//! survivability story: a [`FaultScenario`] applied to a [`FlowSet`]
//! yields a [`DegradedSet`] — an **index-stable** copy of the set in
//! which every flow is classified ([`FlowFate`]) as untouched, rerouted
//! over the shortest surviving route, or dropped (disconnected), plus
//! the structured diff the incremental re-analysis consumes.
//!
//! ## Routable topology
//!
//! [`Network`](crate::Network) stores delay bounds, not adjacency; the
//! links that exist are exactly those traversed by some healthy flow
//! path (source routing over provisioned links). Rerouting therefore
//! searches the union of directed links of all healthy paths, minus the
//! failed elements.
//!
//! ## Determinism
//!
//! Rerouting is breadth-first by hop count with neighbours explored in
//! ascending [`NodeId`] order, so the replacement route is unique and
//! reproducible: the lexicographically-first shortest path.
//!
//! ## Index stability
//!
//! The degraded set keeps **all** flows of the healthy set, in the same
//! order and with the same ids; dropped flows keep their healthy path
//! and are excluded from analysis through the alive mask
//! ([`DegradedSet::universe`]). This is what lets the incremental
//! re-analysis reuse the healthy interference structure cell-for-cell.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::assumption::first_reentry;
use crate::error::ModelError;
use crate::flow::SporadicFlow;
use crate::flowset::FlowSet;
use crate::network::NodeId;
use crate::path::Path;

/// One failed network element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// The directed link `from → to` stops forwarding.
    LinkDown {
        /// Upstream endpoint.
        from: NodeId,
        /// Downstream endpoint.
        to: NodeId,
    },
    /// A node stops processing; all its incident links fail with it.
    NodeDown {
        /// The failed node.
        node: NodeId,
    },
}

/// A set of simultaneous failures.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// The failed elements (order-insensitive).
    pub faults: Vec<Fault>,
}

impl FaultScenario {
    /// A scenario from an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultScenario { faults }
    }

    /// Single-link-failure scenario.
    pub fn link_down(from: NodeId, to: NodeId) -> Self {
        FaultScenario {
            faults: vec![Fault::LinkDown { from, to }],
        }
    }

    /// Single-node-failure scenario.
    pub fn node_down(node: NodeId) -> Self {
        FaultScenario {
            faults: vec![Fault::NodeDown { node }],
        }
    }

    /// A correlated fault storm with spatial locality: faults cluster
    /// within `radius` hops (BFS over the undirected provisioned links)
    /// of a seeded epicenter node.
    ///
    /// `link_faults` directed links inside the blast zone go down, plus
    /// `node_faults` zone nodes (the epicenter's neighbourhood, never
    /// more than the zone offers). Deterministic per seed: the zone is
    /// explored in ascending `NodeId` order and victims are drawn from
    /// sorted candidate lists. An empty scenario results when the set
    /// provisions no links.
    pub fn correlated_storm(
        set: &FlowSet,
        seed: u64,
        link_faults: u32,
        node_faults: u32,
        radius: u32,
    ) -> FaultScenario {
        let mut rng = StdRng::seed_from_u64(seed);
        // Undirected adjacency over the provisioned links, plus the
        // sorted directed-link universe.
        let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut links: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for f in set.flows() {
            for (a, b) in f.path.links() {
                links.insert((a, b));
                adj.entry(a).or_default().insert(b);
                adj.entry(b).or_default().insert(a);
            }
        }
        let nodes: Vec<NodeId> = adj.keys().copied().collect();
        if nodes.is_empty() {
            return FaultScenario::default();
        }
        let epicenter = nodes[rng.gen_range(0..nodes.len())];

        // Blast zone: BFS to `radius` hops from the epicenter.
        let mut zone: BTreeSet<NodeId> = BTreeSet::new();
        let mut frontier = VecDeque::from([(epicenter, 0u32)]);
        zone.insert(epicenter);
        while let Some((u, d)) = frontier.pop_front() {
            if d >= radius {
                continue;
            }
            for &v in adj.get(&u).into_iter().flatten() {
                if zone.insert(v) {
                    frontier.push_back((v, d + 1));
                }
            }
        }

        let mut faults = Vec::new();
        let mut zone_links: Vec<(NodeId, NodeId)> = links
            .iter()
            .copied()
            .filter(|(a, b)| zone.contains(a) && zone.contains(b))
            .collect();
        for _ in 0..link_faults {
            if zone_links.is_empty() {
                break;
            }
            let (from, to) = zone_links.remove(rng.gen_range(0..zone_links.len()));
            faults.push(Fault::LinkDown { from, to });
        }
        // Node victims avoid the epicenter itself so a radius-1 storm
        // does not trivially sever its whole neighbourhood.
        let mut zone_nodes: Vec<NodeId> =
            zone.iter().copied().filter(|n| *n != epicenter).collect();
        for _ in 0..node_faults {
            if zone_nodes.is_empty() {
                break;
            }
            let node = zone_nodes.remove(rng.gen_range(0..zone_nodes.len()));
            faults.push(Fault::NodeDown { node });
        }
        FaultScenario { faults }
    }

    /// Whether `node` is failed by this scenario.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::NodeDown { node: n } if *n == node))
    }

    /// Whether the directed link `from → to` is failed (directly or via
    /// either endpoint).
    pub fn link_is_down(&self, from: NodeId, to: NodeId) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::LinkDown { from: a, to: b } => *a == from && *b == to,
            Fault::NodeDown { node } => *node == from || *node == to,
        })
    }

    /// Applies the scenario to a healthy flow set.
    pub fn apply(&self, healthy: &FlowSet) -> Result<DegradedSet, ModelError> {
        let topo = Topology::from_flow_paths(healthy);
        let mut flows: Vec<SporadicFlow> = healthy.flows().to_vec();
        let mut fates: Vec<FlowFate> = Vec::with_capacity(flows.len());

        for f in healthy.flows() {
            let affected = self.node_is_down(f.path.first())
                || self.node_is_down(f.path.last())
                || f.path.nodes().iter().any(|&n| self.node_is_down(n))
                || f.path.links().any(|(a, b)| self.link_is_down(a, b));
            if !affected {
                fates.push(FlowFate::Untouched);
                continue;
            }
            if self.node_is_down(f.path.first()) {
                fates.push(FlowFate::Dropped {
                    reason: DropReason::SourceFailed,
                });
                continue;
            }
            if self.node_is_down(f.path.last()) {
                fates.push(FlowFate::Dropped {
                    reason: DropReason::SinkFailed,
                });
                continue;
            }
            match topo.shortest_surviving_path(f.path.first(), f.path.last(), self) {
                Some(nodes) if nodes == f.path.nodes() => fates.push(FlowFate::Untouched),
                Some(nodes) => {
                    let new_path = Path::new(nodes)?;
                    fates.push(FlowFate::Rerouted { new_path });
                }
                None => fates.push(FlowFate::Dropped {
                    reason: DropReason::NoRoute,
                }),
            }
        }

        // Materialise rerouted flows: keep the healthy per-node cost on
        // nodes the flow already visited, charge the flow's largest cost
        // on newly visited nodes (conservative).
        for (f, fate) in flows.iter_mut().zip(&fates) {
            if let FlowFate::Rerouted { new_path } = fate {
                let costs: Vec<i64> = new_path
                    .nodes()
                    .iter()
                    .map(|&n| {
                        if f.path.visits(n) {
                            f.cost_at(n)
                        } else {
                            f.max_cost()
                        }
                    })
                    .collect();
                let rerouted = SporadicFlow::with_costs(
                    f.id.0,
                    new_path.clone(),
                    f.period,
                    costs,
                    f.jitter,
                    f.deadline,
                )?
                .named(f.name.clone())
                .with_class(f.class);
                *f = rerouted;
            }
        }

        // Rerouted paths can violate Assumption 1 against other live
        // flows (leave-and-rejoin). The analysis is only defined under
        // the assumption, so offending *rerouted* flows are dropped;
        // pairs of untouched flows were compliant in the healthy set and
        // are skipped (their compliance is the caller's invariant).
        loop {
            let mut dropped_someone = false;
            'scan: for oi in 0..flows.len() {
                if !fates[oi].is_alive() {
                    continue;
                }
                for ci in 0..flows.len() {
                    if oi == ci || !fates[ci].is_alive() {
                        continue;
                    }
                    if matches!(fates[oi], FlowFate::Untouched)
                        && matches!(fates[ci], FlowFate::Untouched)
                    {
                        continue;
                    }
                    if first_reentry(&flows[oi], &flows[ci]).is_some() {
                        let victim = if matches!(fates[ci], FlowFate::Rerouted { .. }) {
                            ci
                        } else {
                            oi
                        };
                        flows[victim] = healthy.flows()[victim].clone();
                        fates[victim] = FlowFate::Dropped {
                            reason: DropReason::ReentrantReroute,
                        };
                        dropped_someone = true;
                        break 'scan;
                    }
                }
            }
            if !dropped_someone {
                break;
            }
        }

        let set = healthy.with_flows(flows)?;
        Ok(DegradedSet {
            set,
            fates,
            scenario: self.clone(),
        })
    }
}

/// Why a flow was dropped by a fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The flow's ingress node failed.
    SourceFailed,
    /// The flow's egress node failed.
    SinkFailed,
    /// No surviving route connects source to sink.
    NoRoute,
    /// Every surviving route violates Assumption 1 against a live flow.
    ReentrantReroute,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DropReason::SourceFailed => "source node failed",
            DropReason::SinkFailed => "sink node failed",
            DropReason::NoRoute => "no surviving route",
            DropReason::ReentrantReroute => "reroute violates Assumption 1",
        })
    }
}

/// What happened to one flow under a fault scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowFate {
    /// The flow's path avoids every failed element.
    Untouched,
    /// The flow was moved to the shortest surviving route.
    Rerouted {
        /// The replacement route.
        new_path: Path,
    },
    /// The flow cannot be carried any more.
    Dropped {
        /// Why it was dropped.
        reason: DropReason,
    },
}

impl FlowFate {
    /// Whether the flow still runs after the fault.
    pub fn is_alive(&self) -> bool {
        !matches!(self, FlowFate::Dropped { .. })
    }
}

/// A staged repair plan for a fault scenario: the faults are split into
/// `stages.len()` groups repaired one group at a time (stage `k` at
/// `onset + (k + 1) * stage_gap` in the caller's clock), modelling field
/// repair crews that bring elements back incrementally rather than all
/// at once.
///
/// The schedule is a pure partition: every fault of the source scenario
/// appears in exactly one stage, in scenario order (round-robin across
/// stages so early stages repair a representative mix).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairSchedule {
    /// Fault groups in repair order; stage `k` is repaired `k + 1`
    /// gaps after the storm's onset.
    pub stages: Vec<FaultScenario>,
}

impl RepairSchedule {
    /// Splits `scenario` into (at most) `stages` repair groups,
    /// round-robin in fault order. With `stages == 0` or an empty
    /// scenario the schedule is a single stage repairing everything.
    pub fn staged(scenario: &FaultScenario, stages: u32) -> RepairSchedule {
        let n_stages = (stages.max(1) as usize).min(scenario.faults.len().max(1));
        let mut groups: Vec<FaultScenario> = vec![FaultScenario::default(); n_stages];
        for (i, f) in scenario.faults.iter().enumerate() {
            groups[i % n_stages].faults.push(*f);
        }
        RepairSchedule { stages: groups }
    }

    /// Total faults across all stages.
    pub fn total_faults(&self) -> usize {
        self.stages.iter().map(|s| s.faults.len()).sum()
    }

    /// The faults still outstanding *after* stage `k` completed
    /// (`k = stages.len() - 1` leaves nothing outstanding).
    pub fn outstanding_after(&self, k: usize) -> FaultScenario {
        FaultScenario {
            faults: self
                .stages
                .iter()
                .skip(k + 1)
                .flat_map(|s| s.faults.iter().copied())
                .collect(),
        }
    }
}

/// The degraded flow set plus the structured per-flow diff.
#[derive(Debug, Clone)]
pub struct DegradedSet {
    /// Index-stable degraded set: same flows, same order, same ids as
    /// the healthy set; rerouted flows carry their new path, dropped
    /// flows keep the healthy path and must be masked out of analysis
    /// via [`Self::universe`].
    pub set: FlowSet,
    /// Fate of each flow, aligned with `set.flows()`.
    pub fates: Vec<FlowFate>,
    /// The scenario that produced this set.
    pub scenario: FaultScenario,
}

impl DegradedSet {
    /// Alive mask aligned with the flow order (`true` = still running).
    pub fn universe(&self) -> Vec<bool> {
        self.fates.iter().map(|f| f.is_alive()).collect()
    }

    /// Whether the flow at `idx` survived.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.fates.get(idx).map(|f| f.is_alive()).unwrap_or(false)
    }

    /// Indices of flows whose path changed.
    pub fn rerouted(&self) -> Vec<usize> {
        self.fates
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, FlowFate::Rerouted { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of dropped flows.
    pub fn dropped(&self) -> Vec<usize> {
        self.fates
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_alive())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of untouched flows.
    pub fn untouched_count(&self) -> usize {
        self.fates
            .iter()
            .filter(|f| matches!(f, FlowFate::Untouched))
            .count()
    }

    /// A standalone flow set of only the surviving flows (for
    /// simulation); errors when the scenario dropped every flow. Note
    /// the indices differ from the degraded set — map by [`FlowId`]
    /// (`crate::FlowId`).
    pub fn surviving_set(&self) -> Result<FlowSet, ModelError> {
        let alive: Vec<SporadicFlow> = self
            .set
            .flows()
            .iter()
            .zip(&self.fates)
            .filter(|(_, fate)| fate.is_alive())
            .map(|(f, _)| f.clone())
            .collect();
        if alive.is_empty() {
            return Err(ModelError::AllFlowsDropped);
        }
        FlowSet::new_with_cache(
            self.set.network().clone(),
            alive,
            self.set.relation_cache().clone(),
        )
    }
}

/// Directed adjacency over the provisioned links.
struct Topology {
    /// Sorted successor lists keyed by node (sorted keys, sorted values:
    /// determinism of the BFS below).
    succ: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl Topology {
    fn from_flow_paths(set: &FlowSet) -> Self {
        let mut succ: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for f in set.flows() {
            for (a, b) in f.path.links() {
                succ.entry(a).or_default().insert(b);
            }
        }
        Topology { succ }
    }

    /// Breadth-first shortest path by hop count from `src` to `dst`
    /// avoiding failed elements; neighbours are explored in ascending
    /// `NodeId` order, so the result is the deterministic
    /// lexicographically-first shortest route. `None` when disconnected.
    fn shortest_surviving_path(
        &self,
        src: NodeId,
        dst: NodeId,
        scenario: &FaultScenario,
    ) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        parent.insert(src, src);
        while let Some(u) = queue.pop_front() {
            if let Some(nexts) = self.succ.get(&u) {
                for &v in nexts {
                    if parent.contains_key(&v)
                        || scenario.node_is_down(v)
                        || scenario.link_is_down(u, v)
                    {
                        continue;
                    }
                    parent.insert(v, u);
                    if v == dst {
                        let mut rev = vec![v];
                        let mut cur = v;
                        while cur != src {
                            cur = parent[&cur];
                            rev.push(cur);
                        }
                        rev.reverse();
                        return Some(rev);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::paper_example;
    use crate::flow::FlowId;

    #[test]
    fn empty_scenario_touches_nothing() {
        let set = paper_example();
        let d = FaultScenario::default().apply(&set).unwrap();
        assert_eq!(d.untouched_count(), set.len());
        assert!(d.rerouted().is_empty());
        assert!(d.dropped().is_empty());
        assert_eq!(d.universe(), vec![true; set.len()]);
        for (a, b) in set.flows().iter().zip(d.set.flows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn source_and_sink_failures_drop_the_flow() {
        let set = paper_example();
        // Node 1 is tau_1's source and on no other path.
        let d = FaultScenario::node_down(NodeId(1)).apply(&set).unwrap();
        assert_eq!(
            d.fates[0],
            FlowFate::Dropped {
                reason: DropReason::SourceFailed
            }
        );
        assert_eq!(d.untouched_count(), 4);
        // Node 5 is tau_1's sink.
        let d = FaultScenario::node_down(NodeId(5)).apply(&set).unwrap();
        assert_eq!(
            d.fates[0],
            FlowFate::Dropped {
                reason: DropReason::SinkFailed
            }
        );
    }

    #[test]
    fn link_failure_reroutes_over_surviving_links() {
        let set = paper_example();
        // P3 = P4 = [2,3,4,7,10,11]; killing 4→7 severs them unless the
        // union topology offers a detour. Links available include
        // 3→4 (P1, P3..), 4→5 (P1), 9→10, 10→7, 7→6 (P2), 7→8 (P5),
        // 10→11 (P3/P4), 7→10 (P3/P4). From 4 without 4→7, the only
        // successor is 5, a dead end: tau_3/tau_4 are dropped.
        let d = FaultScenario::link_down(NodeId(4), NodeId(7))
            .apply(&set)
            .unwrap();
        assert_eq!(
            d.fates[2],
            FlowFate::Dropped {
                reason: DropReason::NoRoute
            }
        );
        assert_eq!(d.fates[3], d.fates[2]);
        assert_eq!(d.fates[4], d.fates[2], "tau_5 also crosses 4→7");
        assert!(matches!(d.fates[0], FlowFate::Untouched));
        assert!(matches!(d.fates[1], FlowFate::Untouched));
        // Index stability: same ids in the same order.
        for (a, b) in set.flows().iter().zip(d.set.flows()) {
            assert_eq!(a.id, b.id);
        }
        let survivors = d.surviving_set().unwrap();
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors.flows()[0].id, FlowId(1));
    }

    #[test]
    fn reroute_finds_the_detour() {
        // A diamond: flows provision 1→2→4 and 1→3→4 (plus a carrier on
        // each). Killing 2 reroutes the 1→2→4 flow onto 1→3→4.
        let network = crate::network::Network::uniform(4, 1, 1).unwrap();
        let f = |id, ids: &[u32]| {
            SporadicFlow::uniform(
                id,
                Path::from_ids(ids.iter().copied()).unwrap(),
                100,
                2,
                0,
                1000,
            )
            .unwrap()
        };
        let set = FlowSet::new(network, vec![f(1, &[1, 2, 4]), f(2, &[1, 3, 4])]).unwrap();
        let d = FaultScenario::node_down(NodeId(2)).apply(&set).unwrap();
        match &d.fates[0] {
            FlowFate::Rerouted { new_path } => {
                assert_eq!(
                    new_path.nodes(),
                    &[NodeId(1), NodeId(3), NodeId(4)],
                    "shortest surviving route"
                );
            }
            other => panic!("expected reroute, got {other:?}"),
        }
        assert!(matches!(d.fates[1], FlowFate::Untouched));
        // The rerouted flow keeps its id, period, and deadline.
        assert_eq!(d.set.flows()[0].id, FlowId(1));
        assert_eq!(d.set.flows()[0].period, 100);
    }

    #[test]
    fn rerouting_is_deterministic_and_hop_minimal() {
        // Two equal-length detours 1→2→5 and 1→3→5 after killing 1→4→5;
        // ascending NodeId exploration must pick node 2.
        let network = crate::network::Network::uniform(5, 1, 1).unwrap();
        let f = |id, ids: &[u32]| {
            SporadicFlow::uniform(
                id,
                Path::from_ids(ids.iter().copied()).unwrap(),
                100,
                2,
                0,
                1000,
            )
            .unwrap()
        };
        // Detour links are provisioned by single-link carrier flows so
        // no healthy pair shares more than one node (Assumption 1).
        let set = FlowSet::new(
            network,
            vec![
                f(1, &[1, 4, 5]),
                f(2, &[1, 2]),
                f(3, &[2, 5]),
                f(4, &[1, 3]),
                f(5, &[3, 5]),
                f(6, &[4, 5]),
            ],
        )
        .unwrap();
        let d = FaultScenario::node_down(NodeId(4)).apply(&set).unwrap();
        match &d.fates[0] {
            FlowFate::Rerouted { new_path } => {
                assert_eq!(new_path.nodes(), &[NodeId(1), NodeId(2), NodeId(5)]);
            }
            other => panic!("expected reroute, got {other:?}"),
        }
        // The flow that only used 4→5 loses its source.
        assert_eq!(
            d.fates[5],
            FlowFate::Dropped {
                reason: DropReason::SourceFailed
            }
        );
    }

    #[test]
    fn rerouted_costs_are_conservative() {
        let network = crate::network::Network::uniform(4, 1, 1).unwrap();
        let heavy = SporadicFlow::with_costs(
            1,
            Path::from_ids([1, 2, 4]).unwrap(),
            100,
            vec![2, 9, 3],
            0,
            1000,
        )
        .unwrap();
        let carrier =
            SporadicFlow::uniform(2, Path::from_ids([1, 3, 4]).unwrap(), 100, 1, 0, 1000).unwrap();
        let set = FlowSet::new(network, vec![heavy, carrier]).unwrap();
        let d = FaultScenario::node_down(NodeId(2)).apply(&set).unwrap();
        let r = &d.set.flows()[0];
        // Kept nodes keep their healthy cost; the new node 3 is charged
        // the flow's largest cost (9).
        assert_eq!(r.cost_at(NodeId(1)), 2);
        assert_eq!(r.cost_at(NodeId(3)), 9);
        assert_eq!(r.cost_at(NodeId(4)), 3);
    }

    #[test]
    fn all_flows_dropped_is_reported_by_surviving_set() {
        let set = crate::examples::line_topology(2, 3, 100, 4, 1, 1).unwrap();
        let d = FaultScenario::node_down(NodeId(1)).apply(&set).unwrap();
        assert!(d.dropped().len() == 2);
        assert_eq!(d.surviving_set().unwrap_err(), ModelError::AllFlowsDropped);
    }

    #[test]
    fn correlated_storm_is_deterministic_and_local() {
        let set = crate::gen::fat_tree(3, &crate::gen::FatTreeParams::default()).unwrap();
        let a = FaultScenario::correlated_storm(&set, 11, 3, 1, 2);
        let b = FaultScenario::correlated_storm(&set, 11, 3, 1, 2);
        assert_eq!(a, b, "same seed, same storm");
        assert!(!a.faults.is_empty());
        assert!(a.faults.len() <= 4);
        let c = FaultScenario::correlated_storm(&set, 12, 3, 1, 2);
        assert_ne!(a, c, "different seed, different storm (w.h.p.)");
        // Locality: every faulted element sits within 2 * radius hops of
        // every other (all are within `radius` of one epicenter).
        let mut zone_nodes: Vec<NodeId> = Vec::new();
        for f in &a.faults {
            match f {
                Fault::LinkDown { from, to } => {
                    zone_nodes.push(*from);
                    zone_nodes.push(*to);
                }
                Fault::NodeDown { node } => zone_nodes.push(*node),
            }
        }
        let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for fl in set.flows() {
            for (x, y) in fl.path.links() {
                adj.entry(x).or_default().insert(y);
                adj.entry(y).or_default().insert(x);
            }
        }
        let dist = |src: NodeId, dst: NodeId| -> Option<u32> {
            let mut seen = BTreeMap::from([(src, 0u32)]);
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                let d = seen[&u];
                if u == dst {
                    return Some(d);
                }
                for &v in adj.get(&u).into_iter().flatten() {
                    seen.entry(v).or_insert_with(|| {
                        q.push_back(v);
                        d + 1
                    });
                }
            }
            None
        };
        for a_node in &zone_nodes {
            for b_node in &zone_nodes {
                let d = dist(*a_node, *b_node).expect("zone is connected");
                assert!(d <= 4, "{a_node:?} and {b_node:?} are {d} hops apart");
            }
        }
    }

    #[test]
    fn storm_on_linkless_set_is_empty() {
        // Single-node paths provision no links at all.
        let network = crate::network::Network::uniform(2, 1, 1).unwrap();
        let f = SporadicFlow::uniform(1, Path::from_ids([1]).unwrap(), 100, 2, 0, 1000).unwrap();
        let set = FlowSet::new(network, vec![f]).unwrap();
        let s = FaultScenario::correlated_storm(&set, 1, 3, 1, 2);
        assert!(s.faults.is_empty());
    }

    #[test]
    fn repair_schedule_partitions_the_scenario() {
        let scenario = FaultScenario::new(vec![
            Fault::NodeDown { node: NodeId(1) },
            Fault::NodeDown { node: NodeId(2) },
            Fault::NodeDown { node: NodeId(3) },
            Fault::LinkDown {
                from: NodeId(4),
                to: NodeId(5),
            },
            Fault::LinkDown {
                from: NodeId(5),
                to: NodeId(6),
            },
        ]);
        let sched = RepairSchedule::staged(&scenario, 3);
        assert_eq!(sched.stages.len(), 3);
        assert_eq!(sched.total_faults(), scenario.faults.len());
        // Every fault appears exactly once across the stages.
        let mut seen: Vec<Fault> = sched
            .stages
            .iter()
            .flat_map(|s| s.faults.iter().copied())
            .collect();
        seen.sort_by_key(|f| format!("{f:?}"));
        let mut want = scenario.faults.clone();
        want.sort_by_key(|f| format!("{f:?}"));
        assert_eq!(seen, want);
        // Outstanding shrinks monotonically to empty.
        assert_eq!(sched.outstanding_after(0).faults.len(), 3);
        assert_eq!(sched.outstanding_after(1).faults.len(), 1);
        assert!(sched.outstanding_after(2).faults.is_empty());
    }

    #[test]
    fn repair_schedule_degenerate_cases() {
        // More stages than faults: one fault per stage.
        let scenario = FaultScenario::node_down(NodeId(1));
        let sched = RepairSchedule::staged(&scenario, 5);
        assert_eq!(sched.stages.len(), 1);
        assert_eq!(sched.total_faults(), 1);
        // Zero stages clamp to one.
        let sched = RepairSchedule::staged(&scenario, 0);
        assert_eq!(sched.stages.len(), 1);
        // Empty scenario: one empty stage.
        let sched = RepairSchedule::staged(&FaultScenario::default(), 3);
        assert_eq!(sched.stages.len(), 1);
        assert_eq!(sched.total_faults(), 0);
    }

    #[test]
    fn multi_fault_scenarios_compose() {
        let set = paper_example();
        let d = FaultScenario::new(vec![
            Fault::NodeDown { node: NodeId(1) },
            Fault::LinkDown {
                from: NodeId(9),
                to: NodeId(10),
            },
        ])
        .apply(&set)
        .unwrap();
        assert!(!d.is_alive(0), "tau_1 lost its source");
        assert!(!d.is_alive(1), "tau_2 lost 9→10 with no detour from 9");
        assert!(d.is_alive(2) && d.is_alive(3) && d.is_alive(4));
    }
}
