//! Sporadic flows: the paper's traffic model.
//!
//! A sporadic flow `τᵢ` is defined by its minimum inter-arrival time `Tᵢ`
//! ("period"), its per-node maximum processing times `Cᵢʰ` (with the
//! convention `Cᵢʰ = 0` when `h ∉ Pᵢ`), its maximum release jitter `Jᵢ` at
//! the ingress node, and its end-to-end deadline `Dᵢ`.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::network::NodeId;
use crate::path::Path;
use crate::time::Duration;

/// Identifier of a flow within a [`crate::FlowSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Traffic class of a flow in a DiffServ deployment.
///
/// Only the EF class is FIFO-analysed; other classes matter through the
/// non-preemption term `δᵢ` of Lemma 4 (their packets can block an EF
/// packet for at most one residual transmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TrafficClass {
    /// Expedited Forwarding: highest fixed priority, FIFO within class.
    #[default]
    Ef,
    /// Assured Forwarding group (class 1..=4).
    Af(u8),
    /// Best effort.
    BestEffort,
}

impl TrafficClass {
    /// Whether the flow belongs to the EF aggregate (`i ∈ EF`).
    pub fn is_ef(&self) -> bool {
        matches!(self, TrafficClass::Ef)
    }
}

/// A sporadic flow following a fixed path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SporadicFlow {
    /// Identifier, unique within a flow set.
    pub id: FlowId,
    /// Human-readable name used in reports.
    pub name: String,
    /// Fixed route `Pᵢ`.
    pub path: Path,
    /// Minimum inter-arrival time `Tᵢ` between successive packets.
    pub period: Duration,
    /// Maximum processing time on each visited node, aligned with
    /// `path.nodes()`.
    costs: Vec<Duration>,
    /// Maximum release jitter `Jᵢ` at the ingress node.
    pub jitter: Duration,
    /// End-to-end deadline `Dᵢ`.
    pub deadline: Duration,
    /// DiffServ class; plain FIFO analyses ignore it, the EF analysis
    /// (Property 3) partitions flows on it.
    pub class: TrafficClass,
}

impl SporadicFlow {
    /// Builds a flow with uniform per-node cost `c`.
    pub fn uniform(
        id: u32,
        path: Path,
        period: Duration,
        c: Duration,
        jitter: Duration,
        deadline: Duration,
    ) -> Result<Self, ModelError> {
        let costs = vec![c; path.len()];
        Self::with_costs(id, path, period, costs, jitter, deadline)
    }

    /// Builds a flow with an explicit per-node cost vector (aligned with
    /// the path's node order).
    pub fn with_costs(
        id: u32,
        path: Path,
        period: Duration,
        costs: Vec<Duration>,
        jitter: Duration,
        deadline: Duration,
    ) -> Result<Self, ModelError> {
        let id = FlowId(id);
        if costs.len() != path.len() {
            return Err(ModelError::CostLengthMismatch {
                flow: id,
                costs: costs.len(),
                path: path.len(),
            });
        }
        if period <= 0 {
            return Err(ModelError::NonPositive {
                what: "period",
                value: period,
            });
        }
        for &c in &costs {
            if c <= 0 {
                return Err(ModelError::NonPositive {
                    what: "cost",
                    value: c,
                });
            }
        }
        if jitter < 0 {
            return Err(ModelError::Negative {
                what: "jitter",
                value: jitter,
            });
        }
        if deadline < 0 {
            return Err(ModelError::Negative {
                what: "deadline",
                value: deadline,
            });
        }
        Ok(SporadicFlow {
            id,
            name: format!("tau_{}", id.0),
            path,
            period,
            costs,
            jitter,
            deadline,
            class: TrafficClass::Ef,
        })
    }

    /// Renames the flow (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Assigns a DiffServ class (builder style).
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = class;
        self
    }

    /// `Cᵢʰ`: maximum processing time on node `h`, `0` when `h ∉ Pᵢ`
    /// (the paper's convention).
    pub fn cost_at(&self, node: NodeId) -> Duration {
        match self.path.index_of(node) {
            Some(i) => self.costs[i],
            None => 0,
        }
    }

    /// Cost at the `idx`-th visited node.
    pub fn cost_at_index(&self, idx: usize) -> Duration {
        self.costs[idx]
    }

    /// All per-node costs, aligned with `path.nodes()`.
    pub fn costs(&self) -> &[Duration] {
        &self.costs
    }

    /// `Cᵢ^{slowᵢ}`: the largest per-node cost along the path. Paths are
    /// non-empty by construction, so the fallback of `0` is unreachable.
    pub fn max_cost(&self) -> Duration {
        self.costs.iter().copied().max().unwrap_or(0)
    }

    /// `slowᵢ`: the slowest node visited (first of the maxima).
    pub fn slow_node(&self) -> NodeId {
        let max = self.max_cost();
        let idx = self.costs.iter().position(|&c| c == max).unwrap_or(0);
        self.path.nodes()[idx]
    }

    /// Total processing demand along the path `Σ_{h∈Pᵢ} Cᵢʰ`.
    pub fn total_cost(&self) -> Duration {
        self.costs.iter().sum()
    }

    /// Best-case end-to-end response time
    /// `Σ_{h∈Pᵢ} Cᵢʰ + (|Pᵢ|-1)·Lmin` (Definition 2's subtrahend).
    pub fn min_response(&self, lmin: Duration) -> Duration {
        self.total_cost() + (self.path.len() as i64 - 1) * lmin
    }

    /// Utilisation contributed at node `h`: `Cᵢʰ / Tᵢ` (as a fraction).
    pub fn utilisation_at(&self, node: NodeId) -> f64 {
        self.cost_at(node) as f64 / self.period as f64
    }

    /// Restricts the flow to a prefix of its path (used by the recursive
    /// `Smax` computation). `k` is the prefix length in nodes.
    pub fn truncated(&self, k: usize) -> Option<SporadicFlow> {
        let path = self.path.prefix_len(k)?;
        let costs = self.costs[..k].to_vec();
        Some(SporadicFlow {
            path,
            costs,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> SporadicFlow {
        SporadicFlow::with_costs(
            7,
            Path::from_ids([2, 3, 4]).unwrap(),
            36,
            vec![2, 5, 3],
            1,
            50,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let p = Path::from_ids([1, 2]).unwrap();
        assert!(SporadicFlow::uniform(1, p.clone(), 0, 1, 0, 10).is_err());
        assert!(SporadicFlow::uniform(1, p.clone(), 10, 0, 0, 10).is_err());
        assert!(SporadicFlow::uniform(1, p.clone(), 10, 1, -1, 10).is_err());
        assert!(SporadicFlow::with_costs(1, p, 10, vec![1], 0, 10).is_err());
    }

    #[test]
    fn cost_convention_zero_off_path() {
        let f = flow();
        assert_eq!(f.cost_at(NodeId(3)), 5);
        assert_eq!(f.cost_at(NodeId(99)), 0);
    }

    #[test]
    fn slow_node_is_first_maximum() {
        let f = flow();
        assert_eq!(f.max_cost(), 5);
        assert_eq!(f.slow_node(), NodeId(3));
        let tie =
            SporadicFlow::uniform(1, Path::from_ids([5, 6, 7]).unwrap(), 10, 4, 0, 99).unwrap();
        assert_eq!(tie.slow_node(), NodeId(5));
    }

    #[test]
    fn min_response_matches_definition_2() {
        let f = flow();
        // sum of costs 10 + 2 links * lmin
        assert_eq!(f.min_response(1), 12);
        assert_eq!(f.min_response(0), 10);
    }

    #[test]
    fn truncation_keeps_alignment() {
        let f = flow();
        let t = f.truncated(2).unwrap();
        assert_eq!(t.path.nodes().len(), 2);
        assert_eq!(t.cost_at(NodeId(3)), 5);
        assert_eq!(
            t.cost_at(NodeId(4)),
            0,
            "truncated flows no longer visit node 4"
        );
        assert!(f.truncated(9).is_none());
    }

    #[test]
    fn class_helpers() {
        assert!(TrafficClass::Ef.is_ef());
        assert!(!TrafficClass::Af(1).is_ef());
        assert!(!TrafficClass::BestEffort.is_ef());
        let f = flow().with_class(TrafficClass::BestEffort);
        assert!(!f.class.is_ef());
    }
}
