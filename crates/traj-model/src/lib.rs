//! Network, path and sporadic-flow model underlying the trajectory-approach
//! schedulability analysis of Martin & Minet (IPDPS 2006).
//!
//! This crate defines:
//!
//! * discrete time ([`Tick`]) and the integer helpers used throughout the
//!   paper's formulas (floor/ceil division, the `(1 + ⌊·⌋)⁺` operator);
//! * the network model: [`NodeId`], [`Network`] with bounded link delays
//!   `Lmin`/`Lmax`;
//! * the traffic model: [`Path`], [`SporadicFlow`] (period `Tᵢ`, per-node
//!   processing times `Cᵢʰ`, release jitter `Jᵢ`, deadline `Dᵢ`);
//! * [`FlowSet`]: a validated set of flows with all the path relations of
//!   the paper precomputed (`first_{j,i}`, `last_{j,i}`, `slow_i`,
//!   `slow_{j,i}`, direction of crossing, `Sminᵢʰ`, `Mᵢʰ`);
//! * Assumption 1 enforcement by iterative flow splitting;
//! * deterministic example sets (the paper's 5-flow/11-node example) and
//!   random workload generators used by tests and benchmarks.
//!
//! Everything is integer arithmetic: the paper assumes discrete time and
//! results with discrete scheduling are as general as continuous ones when
//! all parameters are multiples of the clock tick.

pub mod assumption;
pub mod error;
pub mod examples;
pub mod fault;
pub mod flow;
pub mod flowset;
pub mod gen;
pub mod network;
pub mod path;
pub mod time;

pub use error::ModelError;
pub use fault::{DegradedSet, DropReason, Fault, FaultScenario, FlowFate, RepairSchedule};
pub use flow::{FlowId, SporadicFlow};
pub use flowset::{
    CrossDirection, CrossingSegment, FlowSet, MinConvention, RelationCache, SminMode,
};
pub use network::{LinkDelay, Network, NodeId};
pub use path::Path;
pub use time::{
    ceil_div, checked_ceil_div, checked_plus_one_floor, floor_div, plus_one_floor, Duration, Tick,
};
