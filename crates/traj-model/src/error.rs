//! Model construction and validation errors.

use std::fmt;

use crate::flow::FlowId;
use crate::network::NodeId;

/// Errors raised while building or validating the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A path must visit at least one node.
    EmptyPath,
    /// A path visits the same node twice; routes are loop-free sequences.
    DuplicateNode { node: NodeId },
    /// A flow references a node that is not part of the network.
    UnknownNode { flow: FlowId, node: NodeId },
    /// A non-positive period, cost, or delay bound.
    NonPositive { what: &'static str, value: i64 },
    /// A negative jitter or deadline.
    Negative { what: &'static str, value: i64 },
    /// Link delay bounds with `lmin > lmax`.
    InvertedLinkDelay { lmin: i64, lmax: i64 },
    /// Per-node cost vector length does not match the path length.
    CostLengthMismatch {
        flow: FlowId,
        costs: usize,
        path: usize,
    },
    /// Two flows share a flow identifier.
    DuplicateFlowId { id: FlowId },
    /// Assumption 1 is violated and automatic splitting was disabled.
    Assumption1Violated { flow: FlowId, against: FlowId },
    /// The flow set is empty.
    EmptyFlowSet,
    /// A fault scenario left no live flow to analyse.
    AllFlowsDropped,
    /// An internal structural invariant did not hold; carries a short
    /// description of the violated expectation. Surfacing this instead of
    /// panicking keeps the analysis pipeline total.
    Internal { what: &'static str },
    /// An i64 time computation overflowed.
    ArithmeticOverflow { what: &'static str },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPath => write!(f, "path must visit at least one node"),
            ModelError::DuplicateNode { node } => {
                write!(f, "path visits node {node} twice; routes must be loop-free")
            }
            ModelError::UnknownNode { flow, node } => {
                write!(
                    f,
                    "flow {flow} visits node {node} which is not in the network"
                )
            }
            ModelError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            ModelError::Negative { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            ModelError::InvertedLinkDelay { lmin, lmax } => {
                write!(f, "link delay bounds inverted: lmin={lmin} > lmax={lmax}")
            }
            ModelError::CostLengthMismatch { flow, costs, path } => write!(
                f,
                "flow {flow}: {costs} per-node costs given for a {path}-node path"
            ),
            ModelError::DuplicateFlowId { id } => write!(f, "duplicate flow id {id}"),
            ModelError::Assumption1Violated { flow, against } => write!(
                f,
                "flow {flow} re-enters the path of flow {against} after leaving it \
                 (Assumption 1); enable splitting or reroute"
            ),
            ModelError::EmptyFlowSet => write!(f, "flow set must contain at least one flow"),
            ModelError::AllFlowsDropped => {
                write!(f, "fault scenario disconnects every flow in the set")
            }
            ModelError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            ModelError::ArithmeticOverflow { what } => {
                write!(f, "i64 overflow while computing {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvertedLinkDelay { lmin: 5, lmax: 2 };
        assert!(e.to_string().contains("lmin=5"));
        let e = ModelError::CostLengthMismatch {
            flow: FlowId(3),
            costs: 2,
            path: 4,
        };
        assert!(e.to_string().contains("flow 3"));
    }
}
