//! Random workload generators for tests, fuzzing and benchmarks.
//!
//! All generators are deterministic given the seed and produce flow sets
//! that satisfy the model invariants (loop-free paths, positive periods,
//! Assumption 1 by construction for the tree/line families).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ModelError;
use crate::flow::SporadicFlow;
use crate::flowset::FlowSet;
use crate::network::Network;
use crate::path::Path;

/// Parameters of the random mesh generator.
#[derive(Debug, Clone)]
pub struct MeshParams {
    /// Number of nodes in the network.
    pub nodes: u32,
    /// Number of flows to generate.
    pub flows: u32,
    /// Path length range (inclusive), clamped to the node count.
    pub path_len: (usize, usize),
    /// Period range (inclusive).
    pub period: (i64, i64),
    /// Per-node cost range (inclusive).
    pub cost: (i64, i64),
    /// Release jitter range (inclusive).
    pub jitter: (i64, i64),
    /// Link delay bounds.
    pub lmin: i64,
    /// Link delay bounds.
    pub lmax: i64,
    /// Target maximum per-node utilisation; generation rejects flows that
    /// would push any node above it.
    pub max_utilisation: f64,
}

impl Default for MeshParams {
    fn default() -> Self {
        MeshParams {
            nodes: 12,
            flows: 10,
            path_len: (2, 6),
            period: (50, 200),
            cost: (1, 8),
            jitter: (0, 4),
            lmin: 1,
            lmax: 2,
            max_utilisation: 0.85,
        }
    }
}

/// Generates a random flow set over a full mesh: each flow follows a
/// random loop-free node sequence (any sequence is a route under source
/// routing). Deadlines are set generously (`5 * transit upper bound`) so
/// generated sets exercise the analysis rather than trivially failing.
pub fn random_mesh(seed: u64, p: &MeshParams) -> Result<FlowSet, ModelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::uniform(p.nodes, p.lmin, p.lmax)?;
    let mut flows = Vec::with_capacity(p.flows as usize);
    let mut util = vec![0.0f64; p.nodes as usize + 1];
    let mut id = 1u32;
    let mut attempts = 0;
    while flows.len() < p.flows as usize && attempts < p.flows as usize * 50 {
        attempts += 1;
        let len = rng
            .gen_range(p.path_len.0..=p.path_len.1)
            .min(p.nodes as usize)
            .max(1);
        // Sample `len` distinct nodes.
        let mut pool: Vec<u32> = (1..=p.nodes).collect();
        for i in 0..len {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let nodes: Vec<u32> = pool[..len].to_vec();
        let period = rng.gen_range(p.period.0..=p.period.1);
        let cost = rng.gen_range(p.cost.0..=p.cost.1);
        let jitter = rng.gen_range(p.jitter.0..=p.jitter.1);
        // Utilisation admission.
        let du = cost as f64 / period as f64;
        if nodes
            .iter()
            .any(|&n| util[n as usize] + du > p.max_utilisation)
        {
            continue;
        }
        for &n in &nodes {
            util[n as usize] += du;
        }
        let path = Path::from_ids(nodes)?;
        let transit: i64 = (cost + p.lmax) * len as i64;
        let deadline = transit * 5;
        let flow = SporadicFlow::uniform(id, path, period, cost, jitter, deadline)?;
        flows.push(flow);
        id += 1;
    }
    // An over-tight utilisation cap can reject every candidate flow.
    FlowSet::new(network, flows)
}

/// Parameters of the fat-tree generator.
///
/// The crossing density is governed by `locality`: at `1.0` every flow
/// stays inside its pod, so the crossing graph decomposes into (at most)
/// `pods` disjoint components; at `0.0` every flow transits the shared
/// core layer and the set tends towards one giant component.
#[derive(Debug, Clone)]
pub struct FatTreeParams {
    /// Number of pods.
    pub pods: u32,
    /// Edge switches per pod (flow ingress/egress points).
    pub edge_per_pod: u32,
    /// Aggregation switches per pod.
    pub agg_per_pod: u32,
    /// Core switches shared by all pods.
    pub core: u32,
    /// Number of flows to generate.
    pub flows: u32,
    /// Probability that a flow stays inside its pod (`0.0..=1.0`).
    pub locality: f64,
    /// Period range (inclusive).
    pub period: (i64, i64),
    /// Per-node cost range (inclusive).
    pub cost: (i64, i64),
    /// Release jitter range (inclusive).
    pub jitter: (i64, i64),
    /// Link delay bounds.
    pub lmin: i64,
    /// Link delay bounds.
    pub lmax: i64,
    /// Per-node utilisation cap; candidates breaching it are rejected.
    pub max_utilisation: f64,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        FatTreeParams {
            pods: 4,
            edge_per_pod: 4,
            agg_per_pod: 2,
            core: 2,
            flows: 64,
            locality: 0.9,
            period: (200, 800),
            cost: (1, 4),
            jitter: (0, 4),
            lmin: 1,
            lmax: 2,
            max_utilisation: 0.85,
        }
    }
}

/// Generates a flow set over a three-layer fat-tree (edge → aggregation
/// → core). Intra-pod flows route `edge → agg → edge` inside one pod;
/// inter-pod flows route `edge → agg → core → agg → edge` across two.
/// Node ids: cores are `1..=core`, then each pod holds its aggregation
/// switches followed by its edge switches.
pub fn fat_tree(seed: u64, p: &FatTreeParams) -> Result<FlowSet, ModelError> {
    if p.pods < 1 || p.edge_per_pod < 2 || p.agg_per_pod < 1 || p.core < 1 {
        return Err(ModelError::EmptyFlowSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let per_pod = p.agg_per_pod + p.edge_per_pod;
    let total_nodes = p.core + p.pods * per_pod;
    let network = Network::uniform(total_nodes, p.lmin, p.lmax)?;
    let mut flows = Vec::with_capacity(p.flows as usize);
    let mut util = vec![0.0f64; total_nodes as usize + 1];
    let mut id = 1u32;
    let mut attempts = 0;
    while flows.len() < p.flows as usize && attempts < p.flows as usize * 50 {
        attempts += 1;
        let nodes = fat_tree_path(&mut rng, p);
        let period = rng.gen_range(p.period.0..=p.period.1);
        let cost = rng.gen_range(p.cost.0..=p.cost.1);
        let jitter = rng.gen_range(p.jitter.0..=p.jitter.1);
        let du = cost as f64 / period as f64;
        if nodes
            .iter()
            .any(|&n| util[n as usize] + du > p.max_utilisation)
        {
            continue;
        }
        for &n in &nodes {
            util[n as usize] += du;
        }
        let len = nodes.len() as i64;
        let path = Path::from_ids(nodes)?;
        let transit: i64 = (cost + p.lmax) * len;
        let deadline = transit * 5;
        flows.push(SporadicFlow::uniform(
            id, path, period, cost, jitter, deadline,
        )?);
        id += 1;
    }
    FlowSet::new(network, flows)
}

/// Samples one fat-tree route under `p`'s layout: intra-pod
/// (`edge → agg → edge`) with probability `locality`, inter-pod
/// (`edge → agg → core → agg → edge`) otherwise.
///
/// This is the exact path sampler [`fat_tree`] uses (same node-id
/// arithmetic, same `rng` draw order), exposed so churn drivers can
/// generate *additional* candidate flows over the same topology — e.g.
/// the soak engine's arrival process — without re-running the whole
/// generator.
pub fn fat_tree_path(rng: &mut StdRng, p: &FatTreeParams) -> Vec<u32> {
    let per_pod = p.agg_per_pod + p.edge_per_pod;
    let agg = |pod: u32, a: u32| p.core + pod * per_pod + a + 1;
    let edge = |pod: u32, e: u32| p.core + pod * per_pod + p.agg_per_pod + e + 1;
    let src_pod = rng.gen_range(0..p.pods);
    let local = p.pods == 1 || rng.gen_range(0.0..1.0) < p.locality.clamp(0.0, 1.0);
    if local {
        let src = rng.gen_range(0..p.edge_per_pod);
        let mut dst = rng.gen_range(0..p.edge_per_pod - 1);
        if dst >= src {
            dst += 1;
        }
        let a = rng.gen_range(0..p.agg_per_pod);
        vec![edge(src_pod, src), agg(src_pod, a), edge(src_pod, dst)]
    } else {
        let mut dst_pod = rng.gen_range(0..p.pods - 1);
        if dst_pod >= src_pod {
            dst_pod += 1;
        }
        vec![
            edge(src_pod, rng.gen_range(0..p.edge_per_pod)),
            agg(src_pod, rng.gen_range(0..p.agg_per_pod)),
            rng.gen_range(1..=p.core),
            agg(dst_pod, rng.gen_range(0..p.agg_per_pod)),
            edge(dst_pod, rng.gen_range(0..p.edge_per_pod)),
        ]
    }
}

/// Parameters of the backbone / ISP mesh generator.
///
/// The crossing density is governed by `chords`: more chords shorten the
/// core routes (fewer shared nodes per flow pair), fewer chords force
/// long ring detours that overlap heavily.
#[derive(Debug, Clone)]
pub struct BackboneParams {
    /// Core (backbone) routers, arranged in a ring.
    pub core: u32,
    /// Extra random chords across the core ring.
    pub chords: u32,
    /// Access routers attached to each core router.
    pub access_per_core: u32,
    /// Number of flows to generate.
    pub flows: u32,
    /// Period range (inclusive).
    pub period: (i64, i64),
    /// Per-node cost range (inclusive).
    pub cost: (i64, i64),
    /// Release jitter range (inclusive).
    pub jitter: (i64, i64),
    /// Link delay bounds.
    pub lmin: i64,
    /// Link delay bounds.
    pub lmax: i64,
    /// Per-node utilisation cap; candidates breaching it are rejected.
    pub max_utilisation: f64,
}

impl Default for BackboneParams {
    fn default() -> Self {
        BackboneParams {
            core: 12,
            chords: 4,
            access_per_core: 3,
            flows: 48,
            period: (200, 800),
            cost: (1, 4),
            jitter: (0, 4),
            lmin: 1,
            lmax: 2,
            max_utilisation: 0.85,
        }
    }
}

/// Generates a flow set over a backbone mesh: a ring of core routers
/// with random chords, plus `access_per_core` stub routers per core
/// node. Each flow runs access → (BFS shortest core route) → access.
/// Core node ids are `1..=core`; access `j` of core `c` is
/// `core + (c-1)*access_per_core + j`.
pub fn backbone_mesh(seed: u64, p: &BackboneParams) -> Result<FlowSet, ModelError> {
    if p.core < 3 || p.access_per_core < 1 {
        return Err(ModelError::EmptyFlowSet);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let total_nodes = p.core + p.core * p.access_per_core;
    let network = Network::uniform(total_nodes, p.lmin, p.lmax)?;
    let adj = backbone_core_adjacency(&mut rng, p);
    let mut flows = Vec::with_capacity(p.flows as usize);
    let mut util = vec![0.0f64; total_nodes as usize + 1];
    let mut id = 1u32;
    let mut attempts = 0;
    while flows.len() < p.flows as usize && attempts < p.flows as usize * 50 {
        attempts += 1;
        let nodes = backbone_path(&mut rng, p, &adj);
        let period = rng.gen_range(p.period.0..=p.period.1);
        let cost = rng.gen_range(p.cost.0..=p.cost.1);
        let jitter = rng.gen_range(p.jitter.0..=p.jitter.1);
        let du = cost as f64 / period as f64;
        if nodes
            .iter()
            .any(|&n| util[n as usize] + du > p.max_utilisation)
        {
            continue;
        }
        for &n in &nodes {
            util[n as usize] += du;
        }
        let len = nodes.len() as i64;
        let path = Path::from_ids(nodes)?;
        let transit: i64 = (cost + p.lmax) * len;
        let deadline = transit * 5;
        flows.push(SporadicFlow::uniform(
            id, path, period, cost, jitter, deadline,
        )?);
        id += 1;
    }
    FlowSet::new(network, flows)
}

/// The core adjacency of a backbone layout: the ring plus `p.chords`
/// random chords (deterministic given the rng state; neighbour lists
/// sorted so BFS routes are stable). Index 0 is unused — core nodes are
/// `1..=p.core`.
///
/// This is the exact adjacency [`backbone_mesh`] builds (same `rng` draw
/// order), exposed so churn drivers can sample additional candidate
/// routes over the same layout with [`backbone_path`].
pub fn backbone_core_adjacency(rng: &mut StdRng, p: &BackboneParams) -> Vec<Vec<usize>> {
    let n = p.core as usize;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for c in 1..=n {
        let next = c % n + 1;
        adj[c].push(next);
        adj[next].push(c);
    }
    for _ in 0..p.chords {
        let a = rng.gen_range(1..=n);
        let mut b = rng.gen_range(1..=n);
        if b == a {
            b = a % n + 1;
        }
        if !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
    }
    adj
}

/// BFS shortest route between two core nodes (first-found, hence
/// deterministic under the sorted adjacency).
fn backbone_route(adj: &[Vec<usize>], from: usize, to: usize) -> Vec<u32> {
    let mut prev = vec![usize::MAX; adj.len()];
    let mut queue = std::collections::VecDeque::from([from]);
    prev[from] = from;
    while let Some(c) = queue.pop_front() {
        if c == to {
            break;
        }
        for &nb in &adj[c] {
            if prev[nb] == usize::MAX {
                prev[nb] = c;
                queue.push_back(nb);
            }
        }
    }
    let mut nodes = vec![to as u32];
    let mut c = to;
    while c != from {
        c = prev[c];
        nodes.push(c as u32);
    }
    nodes.reverse();
    nodes
}

/// Samples one backbone route under `p`'s layout and the adjacency from
/// [`backbone_core_adjacency`]: access → BFS core route → access. The
/// exact sampler [`backbone_mesh`] uses (same `rng` draw order).
pub fn backbone_path(rng: &mut StdRng, p: &BackboneParams, adj: &[Vec<usize>]) -> Vec<u32> {
    let access = |c: u32, j: u32| p.core + (c - 1) * p.access_per_core + j + 1;
    let src_core = rng.gen_range(1..=p.core);
    let mut dst_core = rng.gen_range(1..=p.core);
    if dst_core == src_core {
        dst_core = src_core % p.core + 1;
    }
    let mut nodes = vec![access(src_core, rng.gen_range(0..p.access_per_core))];
    nodes.extend(backbone_route(adj, src_core as usize, dst_core as usize));
    nodes.push(access(dst_core, rng.gen_range(0..p.access_per_core)));
    nodes
}

/// A "parking lot" topology: `n_cross` flows each join a shared trunk of
/// `trunk_len` nodes at a random position and stay until the sink — the
/// classic worst case for holistic pessimism (jitter accumulates along the
/// trunk). All crossings are same-direction by construction.
pub fn parking_lot(
    seed: u64,
    n_cross: u32,
    trunk_len: u32,
    period: i64,
    cost: i64,
) -> Result<FlowSet, ModelError> {
    if trunk_len < 2 {
        return Err(ModelError::NonPositive {
            what: "trunk length - 1",
            value: trunk_len as i64 - 1,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Nodes 1..=trunk_len form the trunk; nodes trunk_len+1.. are sources.
    let total_nodes = trunk_len + n_cross;
    let network = Network::uniform(total_nodes, 1, 1)?;
    let mut flows = Vec::new();
    // The observed flow traverses the full trunk.
    let trunk: Vec<u32> = (1..=trunk_len).collect();
    flows.push(
        SporadicFlow::uniform(
            1,
            Path::from_ids(trunk.iter().copied())?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?
        .named("observed"),
    );
    for k in 0..n_cross {
        let join = rng.gen_range(1..trunk_len); // trunk index where it joins
        let src = trunk_len + 1 + k;
        let mut nodes = vec![src];
        nodes.extend(join..=trunk_len);
        flows.push(SporadicFlow::uniform(
            2 + k,
            Path::from_ids(nodes)?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?);
    }
    FlowSet::new(network, flows)
}

/// A bidirectional line: `n_fwd` flows traverse nodes `1..=len` forward,
/// `n_rev` flows traverse them backward — every forward/backward pair
/// crosses in *reverse* direction at every shared node, the hardest case
/// for the `A_{i,j}` accounting (paper Figure 1, case 2).
pub fn bidirectional_line(
    n_fwd: u32,
    n_rev: u32,
    len: u32,
    period: i64,
    cost: i64,
) -> Result<FlowSet, ModelError> {
    if len < 2 {
        return Err(ModelError::NonPositive {
            what: "line length - 1",
            value: len as i64 - 1,
        });
    }
    let network = Network::uniform(len, 1, 1)?;
    let fwd: Vec<u32> = (1..=len).collect();
    let rev: Vec<u32> = (1..=len).rev().collect();
    let mut flows = Vec::new();
    for k in 0..n_fwd {
        flows.push(
            SporadicFlow::uniform(
                1 + k,
                Path::from_ids(fwd.iter().copied())?,
                period,
                cost,
                0,
                i64::MAX / 4,
            )?
            .named(format!("fwd_{k}")),
        );
    }
    for k in 0..n_rev {
        flows.push(
            SporadicFlow::uniform(
                100 + k,
                Path::from_ids(rev.iter().copied())?,
                period,
                cost,
                0,
                i64::MAX / 4,
            )?
            .named(format!("rev_{k}")),
        );
    }
    FlowSet::new(network, flows)
}

/// A star: `n_arms` flows, each entering through its own edge node,
/// crossing the shared hub, and leaving through its own egress node.
/// Every pairwise crossing is the degenerate single-node case.
pub fn star(n_arms: u32, period: i64, cost: i64) -> Result<FlowSet, ModelError> {
    if n_arms < 1 {
        return Err(ModelError::EmptyFlowSet);
    }
    let hub = 1u32;
    let total = 1 + 2 * n_arms;
    let network = Network::uniform(total, 1, 1)?;
    let mut flows = Vec::with_capacity(n_arms as usize);
    for k in 0..n_arms {
        let ingress = 2 + 2 * k;
        let egress = 3 + 2 * k;
        flows.push(SporadicFlow::uniform(
            1 + k,
            Path::from_ids([ingress, hub, egress])?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?);
    }
    FlowSet::new(network, flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assumption::violations;

    #[test]
    fn random_mesh_is_deterministic_per_seed() {
        let p = MeshParams::default();
        let a = random_mesh(7, &p).unwrap();
        let b = random_mesh(7, &p).unwrap();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.flows().iter().zip(b.flows()) {
            assert_eq!(fa, fb);
        }
        let c = random_mesh(8, &p).unwrap();
        // Different seed almost surely differs.
        assert!(a.flows() != c.flows() || a.len() != c.len());
    }

    #[test]
    fn random_mesh_respects_utilisation_cap() {
        let p = MeshParams {
            max_utilisation: 0.5,
            flows: 30,
            ..Default::default()
        };
        let s = random_mesh(3, &p).unwrap();
        assert!(s.max_utilisation() <= 0.5 + 1e-9);
    }

    #[test]
    fn bidirectional_line_is_reverse_heavy() {
        let s = bidirectional_line(2, 2, 4, 100, 3).unwrap();
        assert_eq!(s.len(), 4);
        assert!(
            violations(&s).is_empty(),
            "reverse traversal satisfies Assumption 1"
        );
        let fwd_path = s.flows()[0].path.clone();
        let rev = &s.flows()[2];
        assert_eq!(
            s.direction(rev, &fwd_path),
            Some(crate::flowset::CrossDirection::Reverse)
        );
    }

    #[test]
    fn star_crossings_are_degenerate_same_direction() {
        let s = star(4, 100, 3).unwrap();
        assert_eq!(s.len(), 4);
        let p0 = s.flows()[0].path.clone();
        for f in &s.flows()[1..] {
            assert_eq!(s.shared_nodes(f, &p0), vec![crate::network::NodeId(1)]);
            assert!(s.same_direction(f, &p0));
        }
    }

    #[test]
    fn fat_tree_is_deterministic_and_pod_local_at_locality_one() {
        let p = FatTreeParams {
            locality: 1.0,
            flows: 40,
            ..Default::default()
        };
        let a = fat_tree(5, &p).unwrap();
        let b = fat_tree(5, &p).unwrap();
        assert_eq!(a.flows(), b.flows());
        // At locality 1.0 no flow touches the shared core layer, so flows
        // from different pods are node-disjoint: the crossing graph splits
        // into per-pod components.
        let per_pod = p.agg_per_pod + p.edge_per_pod;
        let pod_of = |f: &crate::flow::SporadicFlow| {
            let n = f.path.first().0;
            assert!(n > p.core, "no core nodes at locality 1.0");
            (n - p.core - 1) / per_pod
        };
        for f in a.flows() {
            let pod = pod_of(f);
            for &node in f.path.nodes() {
                assert!(node.0 > p.core);
                assert_eq!((node.0 - p.core - 1) / per_pod, pod);
            }
        }
        assert!(a.len() >= 2 * p.pods as usize, "pods are populated");
    }

    #[test]
    fn fat_tree_inter_pod_flows_transit_the_core() {
        let p = FatTreeParams {
            locality: 0.0,
            flows: 20,
            ..Default::default()
        };
        let s = fat_tree(9, &p).unwrap();
        for f in s.flows() {
            assert_eq!(f.path.len(), 5);
            assert!(f.path.nodes()[2].0 <= p.core, "middle hop is a core node");
        }
    }

    #[test]
    fn backbone_mesh_is_deterministic_and_core_routed() {
        let p = BackboneParams::default();
        let a = backbone_mesh(3, &p).unwrap();
        let b = backbone_mesh(3, &p).unwrap();
        assert_eq!(a.flows(), b.flows());
        for f in a.flows() {
            assert!(f.path.len() >= 3, "access, core route, access");
            assert!(f.path.first().0 > p.core, "starts at an access router");
            assert!(f.path.last().0 > p.core, "ends at an access router");
            for &n in &f.path.nodes()[1..f.path.len() - 1] {
                assert!(n.0 <= p.core, "interior hops stay in the core");
            }
        }
    }

    #[test]
    fn fat_tree_path_sampler_matches_layout() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = FatTreeParams::default();
        let per_pod = p.agg_per_pod + p.edge_per_pod;
        let total = p.core + p.pods * per_pod;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let nodes = fat_tree_path(&mut rng, &p);
            assert!(nodes.len() == 3 || nodes.len() == 5);
            for &n in &nodes {
                assert!(n >= 1 && n <= total, "node {n} outside layout");
            }
            // Endpoints are edge switches (never core, never agg).
            for &n in [nodes[0], nodes[nodes.len() - 1]].iter() {
                assert!(n > p.core);
                assert!(
                    (n - p.core - 1) % per_pod >= p.agg_per_pod,
                    "{n} not an edge switch"
                );
            }
            if nodes.len() == 5 {
                assert!(nodes[2] <= p.core, "inter-pod middle hop is a core node");
            }
        }
    }

    #[test]
    fn backbone_path_sampler_matches_layout() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = BackboneParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let adj = backbone_core_adjacency(&mut rng, &p);
        for _ in 0..200 {
            let nodes = backbone_path(&mut rng, &p, &adj);
            assert!(nodes.len() >= 3);
            assert!(nodes[0] > p.core, "starts at an access router");
            assert!(nodes[nodes.len() - 1] > p.core, "ends at an access router");
            for &n in &nodes[1..nodes.len() - 1] {
                assert!(n <= p.core, "interior hops stay in the core");
            }
            // Consecutive core hops are adjacent in the layout.
            for w in nodes[1..nodes.len() - 1].windows(2) {
                assert!(adj[w[0] as usize].contains(&(w[1] as usize)));
            }
        }
    }

    #[test]
    fn node_flow_index_inverts_paths() {
        let s = backbone_mesh(1, &BackboneParams::default()).unwrap();
        let index = s.node_flow_index();
        for (i, f) in s.flows().iter().enumerate() {
            for &n in f.path.nodes() {
                assert!(index[&n].contains(&i));
            }
        }
        for (n, members) in &index {
            let mut sorted = members.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(&sorted, members, "ascending, duplicate-free");
            for &i in members {
                assert!(s.flows()[i].path.visits(*n));
            }
        }
    }

    #[test]
    fn parking_lot_is_assumption1_compliant() {
        let s = parking_lot(11, 6, 5, 100, 3).unwrap();
        assert_eq!(s.len(), 7);
        assert!(violations(&s).is_empty());
        // Every crossing flow is same-direction w.r.t. the observed trunk.
        let trunk = s.flows()[0].path.clone();
        for f in &s.flows()[1..] {
            assert!(s.same_direction(f, &trunk));
        }
    }
}
