//! Random workload generators for tests, fuzzing and benchmarks.
//!
//! All generators are deterministic given the seed and produce flow sets
//! that satisfy the model invariants (loop-free paths, positive periods,
//! Assumption 1 by construction for the tree/line families).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ModelError;
use crate::flow::SporadicFlow;
use crate::flowset::FlowSet;
use crate::network::Network;
use crate::path::Path;

/// Parameters of the random mesh generator.
#[derive(Debug, Clone)]
pub struct MeshParams {
    /// Number of nodes in the network.
    pub nodes: u32,
    /// Number of flows to generate.
    pub flows: u32,
    /// Path length range (inclusive), clamped to the node count.
    pub path_len: (usize, usize),
    /// Period range (inclusive).
    pub period: (i64, i64),
    /// Per-node cost range (inclusive).
    pub cost: (i64, i64),
    /// Release jitter range (inclusive).
    pub jitter: (i64, i64),
    /// Link delay bounds.
    pub lmin: i64,
    /// Link delay bounds.
    pub lmax: i64,
    /// Target maximum per-node utilisation; generation rejects flows that
    /// would push any node above it.
    pub max_utilisation: f64,
}

impl Default for MeshParams {
    fn default() -> Self {
        MeshParams {
            nodes: 12,
            flows: 10,
            path_len: (2, 6),
            period: (50, 200),
            cost: (1, 8),
            jitter: (0, 4),
            lmin: 1,
            lmax: 2,
            max_utilisation: 0.85,
        }
    }
}

/// Generates a random flow set over a full mesh: each flow follows a
/// random loop-free node sequence (any sequence is a route under source
/// routing). Deadlines are set generously (`5 * transit upper bound`) so
/// generated sets exercise the analysis rather than trivially failing.
pub fn random_mesh(seed: u64, p: &MeshParams) -> Result<FlowSet, ModelError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::uniform(p.nodes, p.lmin, p.lmax)?;
    let mut flows = Vec::with_capacity(p.flows as usize);
    let mut util = vec![0.0f64; p.nodes as usize + 1];
    let mut id = 1u32;
    let mut attempts = 0;
    while flows.len() < p.flows as usize && attempts < p.flows as usize * 50 {
        attempts += 1;
        let len = rng
            .gen_range(p.path_len.0..=p.path_len.1)
            .min(p.nodes as usize)
            .max(1);
        // Sample `len` distinct nodes.
        let mut pool: Vec<u32> = (1..=p.nodes).collect();
        for i in 0..len {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let nodes: Vec<u32> = pool[..len].to_vec();
        let period = rng.gen_range(p.period.0..=p.period.1);
        let cost = rng.gen_range(p.cost.0..=p.cost.1);
        let jitter = rng.gen_range(p.jitter.0..=p.jitter.1);
        // Utilisation admission.
        let du = cost as f64 / period as f64;
        if nodes
            .iter()
            .any(|&n| util[n as usize] + du > p.max_utilisation)
        {
            continue;
        }
        for &n in &nodes {
            util[n as usize] += du;
        }
        let path = Path::from_ids(nodes)?;
        let transit: i64 = (cost + p.lmax) * len as i64;
        let deadline = transit * 5;
        let flow = SporadicFlow::uniform(id, path, period, cost, jitter, deadline)?;
        flows.push(flow);
        id += 1;
    }
    // An over-tight utilisation cap can reject every candidate flow.
    FlowSet::new(network, flows)
}

/// A "parking lot" topology: `n_cross` flows each join a shared trunk of
/// `trunk_len` nodes at a random position and stay until the sink — the
/// classic worst case for holistic pessimism (jitter accumulates along the
/// trunk). All crossings are same-direction by construction.
pub fn parking_lot(
    seed: u64,
    n_cross: u32,
    trunk_len: u32,
    period: i64,
    cost: i64,
) -> Result<FlowSet, ModelError> {
    if trunk_len < 2 {
        return Err(ModelError::NonPositive {
            what: "trunk length - 1",
            value: trunk_len as i64 - 1,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Nodes 1..=trunk_len form the trunk; nodes trunk_len+1.. are sources.
    let total_nodes = trunk_len + n_cross;
    let network = Network::uniform(total_nodes, 1, 1)?;
    let mut flows = Vec::new();
    // The observed flow traverses the full trunk.
    let trunk: Vec<u32> = (1..=trunk_len).collect();
    flows.push(
        SporadicFlow::uniform(
            1,
            Path::from_ids(trunk.iter().copied())?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?
        .named("observed"),
    );
    for k in 0..n_cross {
        let join = rng.gen_range(1..trunk_len); // trunk index where it joins
        let src = trunk_len + 1 + k;
        let mut nodes = vec![src];
        nodes.extend(join..=trunk_len);
        flows.push(SporadicFlow::uniform(
            2 + k,
            Path::from_ids(nodes)?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?);
    }
    FlowSet::new(network, flows)
}

/// A bidirectional line: `n_fwd` flows traverse nodes `1..=len` forward,
/// `n_rev` flows traverse them backward — every forward/backward pair
/// crosses in *reverse* direction at every shared node, the hardest case
/// for the `A_{i,j}` accounting (paper Figure 1, case 2).
pub fn bidirectional_line(
    n_fwd: u32,
    n_rev: u32,
    len: u32,
    period: i64,
    cost: i64,
) -> Result<FlowSet, ModelError> {
    if len < 2 {
        return Err(ModelError::NonPositive {
            what: "line length - 1",
            value: len as i64 - 1,
        });
    }
    let network = Network::uniform(len, 1, 1)?;
    let fwd: Vec<u32> = (1..=len).collect();
    let rev: Vec<u32> = (1..=len).rev().collect();
    let mut flows = Vec::new();
    for k in 0..n_fwd {
        flows.push(
            SporadicFlow::uniform(
                1 + k,
                Path::from_ids(fwd.iter().copied())?,
                period,
                cost,
                0,
                i64::MAX / 4,
            )?
            .named(format!("fwd_{k}")),
        );
    }
    for k in 0..n_rev {
        flows.push(
            SporadicFlow::uniform(
                100 + k,
                Path::from_ids(rev.iter().copied())?,
                period,
                cost,
                0,
                i64::MAX / 4,
            )?
            .named(format!("rev_{k}")),
        );
    }
    FlowSet::new(network, flows)
}

/// A star: `n_arms` flows, each entering through its own edge node,
/// crossing the shared hub, and leaving through its own egress node.
/// Every pairwise crossing is the degenerate single-node case.
pub fn star(n_arms: u32, period: i64, cost: i64) -> Result<FlowSet, ModelError> {
    if n_arms < 1 {
        return Err(ModelError::EmptyFlowSet);
    }
    let hub = 1u32;
    let total = 1 + 2 * n_arms;
    let network = Network::uniform(total, 1, 1)?;
    let mut flows = Vec::with_capacity(n_arms as usize);
    for k in 0..n_arms {
        let ingress = 2 + 2 * k;
        let egress = 3 + 2 * k;
        flows.push(SporadicFlow::uniform(
            1 + k,
            Path::from_ids([ingress, hub, egress])?,
            period,
            cost,
            0,
            i64::MAX / 4,
        )?);
    }
    FlowSet::new(network, flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assumption::violations;

    #[test]
    fn random_mesh_is_deterministic_per_seed() {
        let p = MeshParams::default();
        let a = random_mesh(7, &p).unwrap();
        let b = random_mesh(7, &p).unwrap();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.flows().iter().zip(b.flows()) {
            assert_eq!(fa, fb);
        }
        let c = random_mesh(8, &p).unwrap();
        // Different seed almost surely differs.
        assert!(a.flows() != c.flows() || a.len() != c.len());
    }

    #[test]
    fn random_mesh_respects_utilisation_cap() {
        let p = MeshParams {
            max_utilisation: 0.5,
            flows: 30,
            ..Default::default()
        };
        let s = random_mesh(3, &p).unwrap();
        assert!(s.max_utilisation() <= 0.5 + 1e-9);
    }

    #[test]
    fn bidirectional_line_is_reverse_heavy() {
        let s = bidirectional_line(2, 2, 4, 100, 3).unwrap();
        assert_eq!(s.len(), 4);
        assert!(
            violations(&s).is_empty(),
            "reverse traversal satisfies Assumption 1"
        );
        let fwd_path = s.flows()[0].path.clone();
        let rev = &s.flows()[2];
        assert_eq!(
            s.direction(rev, &fwd_path),
            Some(crate::flowset::CrossDirection::Reverse)
        );
    }

    #[test]
    fn star_crossings_are_degenerate_same_direction() {
        let s = star(4, 100, 3).unwrap();
        assert_eq!(s.len(), 4);
        let p0 = s.flows()[0].path.clone();
        for f in &s.flows()[1..] {
            assert_eq!(s.shared_nodes(f, &p0), vec![crate::network::NodeId(1)]);
            assert!(s.same_direction(f, &p0));
        }
    }

    #[test]
    fn parking_lot_is_assumption1_compliant() {
        let s = parking_lot(11, 6, 5, 100, 3).unwrap();
        assert_eq!(s.len(), 7);
        assert!(violations(&s).is_empty());
        // Every crossing flow is same-direction w.r.t. the observed trunk.
        let trunk = s.flows()[0].path.clone();
        for f in &s.flows()[1..] {
            assert!(s.same_direction(f, &trunk));
        }
    }
}
