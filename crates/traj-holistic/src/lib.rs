//! The **holistic** baseline the paper compares against (§3, Table 2).
//!
//! The holistic approach (Tindell & Clark; Spuri) analyses each node in
//! isolation under its local worst case and propagates the resulting
//! response-time *jitter* to the next node:
//!
//! 1. on node `h`, the worst-case response time of a packet of `τᵢ` is a
//!    FIFO busy-period analysis where every flow may release
//!    `(1 + ⌊(t + Jⱼʰ)/Tⱼ⌋)⁺` packets no later than the studied packet;
//! 2. the arrival jitter at the next node grows by the response-time
//!    spread: `Jᵢ^{suc(h)} = Jᵢʰ + (Rᵢʰ − Cᵢʰ) + (Lmax − Lmin)`;
//! 3. steps 1–2 iterate to a fixed point (crossing flows make the jitters
//!    mutually dependent);
//! 4. the end-to-end bound is `Σ_h Rᵢʰ + Σ_links Lmax`.
//!
//! Because each node assumes its *own* worst case — scenarios that cannot
//! all happen to one packet — the result is pessimistic; quantifying that
//! pessimism against Property 2 is exactly the paper's Table 2 experiment.
//!
//! The exact variant used in the paper is not specified; two pessimism
//! knobs are exposed and the default (`NonNegative` activation domain,
//! accumulated jitter) is the mildest sound combination, which keeps the
//! comparison conservative *in favour of* the holistic baseline.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use traj_analysis::report::{FlowReport, SetReport, Verdict};
use traj_analysis::terms::{BoundFunction, Window};
use traj_model::{Duration, FlowId, FlowSet, NodeId};

/// Activation-instant domain of the per-node busy-period maximisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ActivationDomain {
    /// `t ∈ [0, B)`: the studied packet arrives at or after the busy
    /// period start (default).
    #[default]
    NonNegative,
    /// `t ∈ [-Jᵢʰ, B)`: classic Tindell domain; markedly more pessimistic
    /// on long paths.
    FullBusyPeriod,
    /// `t = 0` only: evaluate the synchronous-release instant and nothing
    /// else. **Not sound in general** (the per-node worst case can occur
    /// later in the busy period); provided because the paper's published
    /// holistic row appears to have been computed this way — its τ₁ = 43
    /// and the overall all-miss verdict are reproduced by this variant at
    /// a fraction of the pessimism of the sound domains.
    SingleInstant,
}

/// Holistic analysis configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HolisticConfig {
    /// Per-node activation domain.
    pub domain: ActivationDomain,
    /// Maximum outer fixed-point iterations before declaring divergence.
    pub max_iterations: usize,
    /// Busy-period guard, as in the trajectory analysis.
    pub max_busy_period: Duration,
}

impl Default for HolisticConfig {
    fn default() -> Self {
        HolisticConfig {
            domain: ActivationDomain::NonNegative,
            max_iterations: 512,
            max_busy_period: 10_000_000,
        }
    }
}

/// Per-node detail of a holistic result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeResponse {
    /// The node.
    pub node: NodeId,
    /// Arrival jitter of the flow at this node after convergence.
    pub jitter_in: Duration,
    /// Worst-case response time on this node.
    pub response: Duration,
}

/// Detailed holistic result for one flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HolisticFlowDetail {
    /// The flow.
    pub flow: FlowId,
    /// Per-node breakdown in path order.
    pub nodes: Vec<NodeResponse>,
    /// Total link budget.
    pub links: Duration,
    /// End-to-end bound.
    pub total: Duration,
}

/// Runs the holistic analysis on the whole set.
pub fn analyze_holistic(set: &FlowSet, cfg: &HolisticConfig) -> SetReport {
    match run(set, cfg) {
        Ok(details) => SetReport::new(
            set.flows()
                .iter()
                .zip(&details)
                .map(|(f, d)| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: Verdict::Bounded(d.total),
                    jitter: Some((d.total - traj_analysis::jitter::min_response(set, f)).max(0)),
                    deadline: f.deadline,
                })
                .collect(),
        ),
        Err(reason) => SetReport::new(
            set.flows()
                .iter()
                .map(|f| FlowReport {
                    flow: f.id,
                    name: f.name.clone(),
                    wcrt: Verdict::unbounded(reason.clone()),
                    jitter: None,
                    deadline: f.deadline,
                })
                .collect(),
        ),
    }
}

/// Runs the holistic analysis and returns the per-node details.
pub fn analyze_holistic_detailed(
    set: &FlowSet,
    cfg: &HolisticConfig,
) -> Result<Vec<HolisticFlowDetail>, String> {
    run(set, cfg)
}

fn run(set: &FlowSet, cfg: &HolisticConfig) -> Result<Vec<HolisticFlowDetail>, String> {
    // State: per (flow, node) arrival jitter and response.
    let mut jitter: HashMap<(FlowId, NodeId), Duration> = HashMap::new();
    let mut response: HashMap<(FlowId, NodeId), Duration> = HashMap::new();
    for f in set.flows() {
        for &h in f.path.nodes() {
            jitter.insert((f.id, h), if h == f.path.first() { f.jitter } else { 0 });
            response.insert((f.id, h), f.cost_at(h));
        }
    }

    for _round in 0..cfg.max_iterations {
        let mut changed = false;
        for f in set.flows() {
            // 1. per-node responses under current jitters
            for &h in f.path.nodes() {
                let r = node_response(set, cfg, f.id, h, &jitter)?;
                if r > cfg.max_busy_period {
                    return Err(format!(
                        "response of flow {} on node {h} exceeds guard",
                        f.id
                    ));
                }
                let slot = response.entry((f.id, h)).or_default();
                if *slot != r {
                    *slot = r;
                    changed = true;
                }
            }
            // 2. jitter propagation along the path
            for (pre, h) in f.path.links() {
                let link = set.network().link_delay(pre, h);
                let j = jitter[&(f.id, pre)]
                    + (response[&(f.id, pre)] - f.cost_at(pre))
                    + link.spread();
                if j > cfg.max_busy_period {
                    return Err(format!(
                        "jitter of flow {} at node {h} exceeds guard (non-convergent)",
                        f.id
                    ));
                }
                let slot = jitter.entry((f.id, h)).or_default();
                if *slot != j {
                    *slot = j;
                    changed = true;
                }
            }
        }
        if !changed {
            // Converged: assemble details.
            return Ok(set
                .flows()
                .iter()
                .map(|f| {
                    let nodes = f
                        .path
                        .nodes()
                        .iter()
                        .map(|&h| NodeResponse {
                            node: h,
                            jitter_in: jitter[&(f.id, h)],
                            response: response[&(f.id, h)],
                        })
                        .collect::<Vec<_>>();
                    let links: Duration = f
                        .path
                        .links()
                        .map(|(a, b)| set.network().link_delay(a, b).lmax)
                        .sum();
                    let total = nodes.iter().map(|n| n.response).sum::<Duration>() + links;
                    HolisticFlowDetail {
                        flow: f.id,
                        nodes,
                        links,
                        total,
                    }
                })
                .collect());
        }
    }
    Err(format!(
        "holistic fixed point did not converge within {} iterations",
        cfg.max_iterations
    ))
}

/// Single-node FIFO busy-period analysis under given arrival jitters.
fn node_response(
    set: &FlowSet,
    cfg: &HolisticConfig,
    flow: FlowId,
    node: NodeId,
    jitter: &HashMap<(FlowId, NodeId), Duration>,
) -> Result<Duration, String> {
    let me = set
        .flow(flow)
        .ok_or_else(|| format!("flow {flow} is not in the set"))?;
    let windows: Vec<Window> = set
        .flows()
        .iter()
        .filter(|j| j.path.visits(node))
        .map(|j| Window {
            flow: j.id,
            a: jitter[&(j.id, node)],
            period: j.period,
            cost: j.cost_at(node),
        })
        .collect();
    let t_lo = match cfg.domain {
        ActivationDomain::NonNegative | ActivationDomain::SingleInstant => 0,
        ActivationDomain::FullBusyPeriod => -jitter[&(me.id, node)],
    };
    let bf = BoundFunction {
        windows,
        constant: 0,
        t_lo,
    };
    let overflow = |o: traj_analysis::terms::Overflowed| format!("arithmetic overflow: {o}");
    let diverged = || format!("node {node} busy period diverged (overload)");
    if cfg.domain == ActivationDomain::SingleInstant {
        // Evaluate t = 0 only; still guard divergence via the busy period.
        bf.busy_period(cfg.max_busy_period)
            .map_err(overflow)?
            .ok_or_else(diverged)?;
        return bf.eval(0).map_err(overflow);
    }
    bf.maximise(cfg.max_busy_period)
        .map_err(overflow)?
        .map(|m| m.value)
        .ok_or_else(diverged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::{analyze_all, AnalysisConfig};
    use traj_model::examples::{line_topology, paper_example};

    #[test]
    fn paper_example_holistic_bounds() {
        // Calibrated reference values for the default (mildest sound)
        // variant; the paper's published row {43,63,73,73,56} used an
        // unspecified variant — see EXPERIMENTS.md. The verdict pattern
        // (every flow misses its deadline) is what Table 2 demonstrates.
        let set = paper_example();
        let rep = analyze_holistic(&set, &HolisticConfig::default());
        let bounds: Vec<i64> = rep.bounds().into_iter().map(|b| b.unwrap()).collect();
        assert_eq!(bounds, vec![43, 59, 113, 113, 80]);
        assert_eq!(
            rep.misses(),
            5,
            "the paper's point: none meets its deadline"
        );
    }

    #[test]
    fn single_instant_variant_tracks_the_published_row_shape() {
        // The documented-unsound variant that matches how the paper's
        // holistic row was evidently computed: same verdict (all miss),
        // tau_1 = 43 exactly, and bounds between trajectory and the sound
        // holistic domains.
        let set = paper_example();
        let rep = analyze_holistic(
            &set,
            &HolisticConfig {
                domain: ActivationDomain::SingleInstant,
                ..Default::default()
            },
        );
        let b: Vec<i64> = rep.bounds().into_iter().map(|x| x.unwrap()).collect();
        assert_eq!(b[0], 43);
        assert_eq!(rep.misses(), 5);
        let sound = analyze_holistic(&set, &HolisticConfig::default());
        for (si, s) in b.iter().zip(sound.bounds()) {
            assert!(*si <= s.unwrap());
        }
    }

    #[test]
    fn full_busy_period_domain_is_more_pessimistic() {
        let set = paper_example();
        let mild = analyze_holistic(&set, &HolisticConfig::default());
        let harsh = analyze_holistic(
            &set,
            &HolisticConfig {
                domain: ActivationDomain::FullBusyPeriod,
                ..Default::default()
            },
        );
        for (m, h) in mild.bounds().iter().zip(harsh.bounds()) {
            assert!(h.unwrap() >= m.unwrap());
        }
    }

    #[test]
    fn holistic_dominates_trajectory_on_paper_example() {
        // The central claim: trajectory <= holistic for every flow.
        let set = paper_example();
        let t = analyze_all(&set, &AnalysisConfig::default());
        let h = analyze_holistic(&set, &HolisticConfig::default());
        for (tb, hb) in t.bounds().iter().zip(h.bounds()) {
            assert!(tb.unwrap() <= hb.unwrap());
        }
    }

    #[test]
    fn improvement_exceeds_25_percent() {
        // The paper claims "> 25%" improvement; verify on our calibrated
        // numbers.
        let set = paper_example();
        let t = analyze_all(&set, &AnalysisConfig::default());
        let h = analyze_holistic(&set, &HolisticConfig::default());
        let ts: i64 = t.bounds().iter().map(|b| b.unwrap()).sum();
        let hs: i64 = h.bounds().iter().map(|b| b.unwrap()).sum();
        let improvement = 1.0 - ts as f64 / hs as f64;
        assert!(improvement > 0.25, "improvement was {improvement:.3}");
    }

    #[test]
    fn single_node_case_agrees_with_trajectory() {
        // With one shared node there is no jitter propagation and both
        // methods compute the same busy-period bound.
        let set = line_topology(3, 1, 100, 7, 1, 1).unwrap();
        let t = analyze_all(&set, &AnalysisConfig::default());
        let h = analyze_holistic(&set, &HolisticConfig::default());
        assert_eq!(t.bounds(), h.bounds());
    }

    #[test]
    fn detailed_breakdown_sums() {
        let set = paper_example();
        let details = analyze_holistic_detailed(&set, &HolisticConfig::default()).unwrap();
        for d in &details {
            let s: i64 = d.nodes.iter().map(|n| n.response).sum();
            assert_eq!(d.total, s + d.links);
        }
        // flow 1: uncontended first/last node
        assert_eq!(details[0].nodes[0].response, 4);
        assert_eq!(details[0].nodes[3].response, 4);
    }

    #[test]
    fn overload_reported() {
        let set = line_topology(3, 2, 100, 50, 1, 1).unwrap();
        let rep = analyze_holistic(&set, &HolisticConfig::default());
        assert!(rep.per_flow().iter().all(|r| !r.wcrt.is_bounded()));
    }

    #[test]
    fn jitter_grows_along_the_path() {
        let set = paper_example();
        let details = analyze_holistic_detailed(&set, &HolisticConfig::default()).unwrap();
        // flow 3 accumulates jitter monotonically.
        let f3 = &details[2];
        let jits: Vec<i64> = f3.nodes.iter().map(|n| n.jitter_in).collect();
        for w in jits.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(jits.last().unwrap() > &0);
    }
}
