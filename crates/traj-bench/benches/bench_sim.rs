//! Criterion bench for the simulator substrate: event throughput of the
//! FIFO and DiffServ node models, and one adversarial-search step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_model::examples::{paper_example, paper_example_with_best_effort};
use traj_sim::{SchedulerKind, SimConfig, Simulator};

fn bench_fifo_sim(c: &mut Criterion) {
    let set = paper_example();
    let mut g = c.benchmark_group("sim/fifo");
    for packets in [32usize, 128, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(packets), &packets, |b, &n| {
            let sim = Simulator::new(
                &set,
                SimConfig {
                    packets_per_flow: n,
                    ..Default::default()
                },
            );
            b.iter(|| black_box(sim.run_periodic(black_box(&[0, 5, 10, 15, 20]))))
        });
    }
    g.finish();
}

fn bench_diffserv_sim(c: &mut Criterion) {
    let set = paper_example_with_best_effort(9).unwrap();
    let offsets: Vec<i64> = vec![0; set.len()];
    c.bench_function("sim/diffserv_128pkt", |b| {
        let sim = Simulator::new(
            &set,
            SimConfig {
                packets_per_flow: 128,
                scheduler: SchedulerKind::DiffServ,
                ..Default::default()
            },
        );
        b.iter(|| black_box(sim.run_periodic(black_box(&offsets))))
    });
}

criterion_group!(benches, bench_fifo_sim, bench_diffserv_sim);
criterion_main!(benches);
