//! Criterion bench for E10: how the analyses scale with flow count and
//! path length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use traj_analysis::{analyze_all, AnalysisConfig};
use traj_holistic::{analyze_holistic, HolisticConfig};
use traj_model::examples::line_topology;
use traj_model::gen::{random_mesh, MeshParams};

fn bench_flow_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability/flows");
    for n in [5u32, 10, 20, 40] {
        let set = random_mesh(
            1,
            &MeshParams {
                flows: n,
                nodes: 20,
                max_utilisation: 0.7,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("trajectory", n), &set, |b, s| {
            let cfg = AnalysisConfig::default();
            b.iter(|| black_box(analyze_all(s, &cfg)))
        });
        g.bench_with_input(BenchmarkId::new("holistic", n), &set, |b, s| {
            let cfg = HolisticConfig::default();
            b.iter(|| black_box(analyze_holistic(s, &cfg)))
        });
    }
    g.finish();
}

fn bench_path_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalability/hops");
    for hops in [2u32, 4, 8, 16] {
        let set = line_topology(8, hops, 200, 3, 1, 2).unwrap();
        g.bench_with_input(BenchmarkId::new("trajectory", hops), &set, |b, s| {
            let cfg = AnalysisConfig::default();
            b.iter(|| black_box(analyze_all(s, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flow_count, bench_path_length);
criterion_main!(benches);
