//! Criterion bench for E2: the full Table 2 pipeline on the paper example
//! (trajectory default, paper-calibrated, holistic, network calculus).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_analysis::{analyze_all, AnalysisConfig};
use traj_holistic::{analyze_holistic, HolisticConfig};
use traj_model::examples::paper_example;
use traj_netcalc::analyze_netcalc;

fn bench_table2(c: &mut Criterion) {
    let set = paper_example();
    let mut g = c.benchmark_group("table2");

    g.bench_function("trajectory_default", |b| {
        let cfg = AnalysisConfig::default();
        b.iter(|| black_box(analyze_all(black_box(&set), &cfg)))
    });
    g.bench_function("trajectory_paper_calibrated", |b| {
        let cfg = AnalysisConfig::paper_calibrated();
        b.iter(|| black_box(analyze_all(black_box(&set), &cfg)))
    });
    g.bench_function("holistic", |b| {
        let cfg = HolisticConfig::default();
        b.iter(|| black_box(analyze_holistic(black_box(&set), &cfg)))
    });
    g.bench_function("netcalc", |b| {
        b.iter(|| black_box(analyze_netcalc(black_box(&set))))
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
