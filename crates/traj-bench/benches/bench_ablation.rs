//! Criterion bench for E11: cost of the interpretation knobs (Smax fixed
//! point vs transit-only seed, reverse-flow counting) and of the EF
//! non-preemption analysis (Property 3 vs Property 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use traj_analysis::{analyze_all, analyze_ef, AnalysisConfig, ReverseCounting, SmaxMode};
use traj_model::examples::{paper_example, paper_example_with_best_effort};

fn bench_smax_modes(c: &mut Criterion) {
    let set = paper_example();
    let mut g = c.benchmark_group("ablation/smax");
    g.bench_function("recursive_prefix", |b| {
        let cfg = AnalysisConfig::default();
        b.iter(|| black_box(analyze_all(black_box(&set), &cfg)))
    });
    g.bench_function("transit_only", |b| {
        let cfg = AnalysisConfig {
            smax_mode: SmaxMode::TransitOnly,
            ..Default::default()
        };
        b.iter(|| black_box(analyze_all(black_box(&set), &cfg)))
    });
    g.finish();
}

fn bench_reverse_counting(c: &mut Criterion) {
    let set = paper_example();
    let mut g = c.benchmark_group("ablation/reverse");
    for (name, rc) in [
        ("per_flow", ReverseCounting::PerFlow),
        ("per_crossing_node", ReverseCounting::PerCrossingNode),
    ] {
        g.bench_function(name, |b| {
            let cfg = AnalysisConfig {
                reverse_counting: rc,
                ..Default::default()
            };
            b.iter(|| black_box(analyze_all(black_box(&set), &cfg)))
        });
    }
    g.finish();
}

fn bench_ef(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/ef");
    let pure = paper_example();
    let mixed = paper_example_with_best_effort(9).unwrap();
    g.bench_function("property2_pure", |b| {
        let cfg = AnalysisConfig::default();
        b.iter(|| black_box(analyze_all(black_box(&pure), &cfg)))
    });
    g.bench_function("property3_with_best_effort", |b| {
        let cfg = AnalysisConfig::default();
        b.iter(|| black_box(analyze_ef(black_box(&mixed), &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_smax_modes, bench_reverse_counting, bench_ef);
criterion_main!(benches);
