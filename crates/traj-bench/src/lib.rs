//! Shared helpers for the benchmark binaries and criterion benches: table
//! rendering and the experiment definitions of EXPERIMENTS.md.

use traj_analysis::SetReport;
use traj_model::FlowSet;

/// Renders a compact ASCII table: header row plus one row per flow.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a [`SetReport`] row for table rendering (bound or `unbounded`).
pub fn bounds_row(report: &SetReport) -> Vec<String> {
    report
        .per_flow()
        .iter()
        .map(|r| match r.wcrt.value() {
            Some(v) => v.to_string(),
            None => "unbounded".into(),
        })
        .collect()
}

/// Flow display names for a header.
pub fn flow_names(set: &FlowSet) -> Vec<String> {
    set.flows().iter().map(|f| f.name.clone()).collect()
}

/// Sum of finite bounds; `None` when any flow is unbounded.
pub fn bound_sum(report: &SetReport) -> Option<i64> {
    report.bounds().into_iter().sum()
}

/// The `q`-quantile of `samples` (`q` in `[0, 1]`, nearest-rank on the
/// sorted copy); `0.0` on an empty slice. Shared by the bench binaries
/// so their reported percentiles use one definition.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = (((s.len() - 1) as f64) * q.clamp(0.0, 1.0)).ceil() as usize;
    s[idx.min(s.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_analysis::{analyze_all, AnalysisConfig};
    use traj_model::examples::paper_example;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["flow", "R"],
            &[
                vec!["tau_1".into(), "31".into()],
                vec!["tau_22".into(), "7".into()],
            ],
        );
        assert!(t.contains("tau_22"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        // Nearest-rank rounds up: ceil(99 * 0.99) = 99 -> the max.
        assert_eq!(percentile(&samples, 0.99), 100.0);
        assert_eq!(percentile(&samples, 0.5), 51.0);
    }

    #[test]
    fn bound_sum_on_paper_example() {
        let set = paper_example();
        let rep = analyze_all(&set, &AnalysisConfig::default());
        assert_eq!(bound_sum(&rep), Some(31 + 37 + 47 + 47 + 40));
        assert_eq!(bounds_row(&rep)[0], "31");
    }
}
