//! E1/E2 — Regenerates the paper's Tables 1 and 2.
//!
//! Prints the flow parameters (Table 1), then the worst-case end-to-end
//! response times under: the faithful trajectory analysis (Property 2,
//! default config), the paper-calibrated pessimistic mode, the holistic
//! baseline, the per-hop network-calculus baseline, plus the paper's
//! published rows and the adversarial-simulation lower bound.
//!
//! Run: `cargo run --release -p traj-bench --bin table2`

use traj_analysis::{analyze_all, AnalysisConfig};
use traj_bench::{bounds_row, render_table};
use traj_holistic::{analyze_holistic, HolisticConfig};
use traj_model::examples::{paper_example, PAPER_TABLE2_HOLISTIC, PAPER_TABLE2_TRAJECTORY};
use traj_netcalc::analyze_netcalc;
use traj_sim::{adversarial_search, AdversaryParams};

fn main() {
    let set = paper_example();

    // Table 1: inputs.
    let mut rows = Vec::new();
    for f in set.flows() {
        rows.push(vec![
            f.name.clone(),
            format!("{}", f.path),
            f.period.to_string(),
            f.max_cost().to_string(),
            f.jitter.to_string(),
            f.deadline.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 1 - flow parameters (T=36, C=4, J=0, Lmin=Lmax=1)",
            &["flow", "path", "T", "C", "J", "D"],
            &rows,
        )
    );

    // Table 2: bounds.
    let traj = analyze_all(&set, &AnalysisConfig::default());
    let calib = analyze_all(&set, &AnalysisConfig::paper_calibrated());
    let hol = analyze_holistic(&set, &HolisticConfig::default());
    let nc = analyze_netcalc(&set);
    let adv = adversarial_search(
        &set,
        &AdversaryParams {
            trials: 400,
            ..Default::default()
        },
    );

    let names: Vec<&str> = vec!["tau_1", "tau_2", "tau_3", "tau_4", "tau_5"];
    let mut header = vec!["method"];
    header.extend(names.iter().copied());
    let fmt_row = |label: &str, vals: Vec<String>| {
        let mut r = vec![label.to_string()];
        r.extend(vals);
        r
    };
    let rows = vec![
        fmt_row("trajectory (ours, Property 2)", bounds_row(&traj)),
        fmt_row("trajectory (paper-calibrated mode)", bounds_row(&calib)),
        fmt_row(
            "trajectory (paper, published)",
            PAPER_TABLE2_TRAJECTORY
                .iter()
                .map(|v| v.to_string())
                .collect(),
        ),
        fmt_row("holistic (ours)", bounds_row(&hol)),
        fmt_row(
            "holistic (paper, published)",
            PAPER_TABLE2_HOLISTIC
                .iter()
                .map(|v| v.to_string())
                .collect(),
        ),
        fmt_row(
            "network calculus (per-hop)",
            nc.iter()
                .map(|r| r.total.map(|v| v.to_string()).unwrap_or("unstable".into()))
                .collect(),
        ),
        fmt_row(
            "simulation (adversarial, lower bd)",
            adv.observed.iter().map(|v| v.to_string()).collect(),
        ),
        fmt_row(
            "deadline D_i",
            set.flows().iter().map(|f| f.deadline.to_string()).collect(),
        ),
    ];
    println!(
        "{}",
        render_table(
            "Table 2 - worst-case end-to-end response times",
            &header,
            &rows
        )
    );

    // Verdicts, as in the paper's discussion.
    println!(
        "trajectory: {} flows meet their deadline; holistic: {} do.",
        set.len() - traj.misses(),
        set.len() - hol.misses()
    );
    let ts: i64 = traj.bounds().iter().map(|b| b.unwrap()).sum();
    let hs: i64 = hol.bounds().iter().map(|b| b.unwrap()).sum();
    println!(
        "aggregate improvement of trajectory over holistic: {:.1}% (paper claims > 25%)",
        100.0 * (1.0 - ts as f64 / hs as f64)
    );
    for (row, b) in adv.observed.iter().zip(traj.bounds()) {
        assert!(*row <= b.unwrap(), "soundness violated");
    }
    println!("soundness: observed <= trajectory bound for all flows  [ok]");
}
