//! E13 — Fault re-analysis: incremental warm-start vs cold re-analysis.
//!
//! On a 64-node / 40-flow instance of eight *independent interference
//! clusters* (the realistic shape for incrementality: most flows never
//! cross most others, so a fault's dirty closure is a small island),
//! injects single-link failures, re-derives the degraded bounds twice —
//! cold (`analyze_degraded`) and warm (`reanalyze`, reusing the healthy
//! interference cache and `Smax` fixed point outside the dirty closure)
//! — checks the two agree bit-for-bit, and writes the measurements to
//! `BENCH_fault.json`.
//!
//! Run: `cargo run --release -p traj-bench --bin fault_reanalysis`

use std::time::Instant;

use serde::Serialize;
use traj_analysis::{analyze_degraded, dirty_closure, reanalyze, AnalysisConfig, Analyzer};
use traj_bench::render_table;
use traj_model::{FaultScenario, FlowSet, Network, Path, SporadicFlow};

const CLUSTERS: u32 = 8;
const NODES_PER_CLUSTER: u32 = 8;
const NODES: u32 = CLUSTERS * NODES_PER_CLUSTER;
const FLOWS: u32 = CLUSTERS * 5;
const SEED: u64 = 1;
const REPS: usize = 5;
const TRIALS: usize = 8;

/// Eight disjoint clusters of five crossing flows each. Within a
/// cluster, the trunk `b+1 → b+2 → b+3 → b+4` carries most flows and the
/// side path via `b+7` provides the surviving detour when a trunk link
/// dies — so faults produce both reroutes and drops, all contained in
/// one cluster.
fn clustered_instance() -> FlowSet {
    let network = Network::uniform(NODES, 1, 1).expect("valid uniform network");
    let mut flows = Vec::new();
    let mut id = 0u32;
    for k in 0..CLUSTERS {
        let b = k * NODES_PER_CLUSTER;
        let paths = [
            vec![b + 1, b + 2, b + 3, b + 4],
            vec![b + 5, b + 2, b + 3, b + 6],
            vec![b + 7, b + 3, b + 4],
            vec![b + 2, b + 3, b + 4, b + 8],
            vec![b + 2, b + 7, b + 3],
        ];
        for nodes in paths {
            id += 1;
            flows.push(
                SporadicFlow::uniform(
                    id,
                    Path::from_ids(nodes).expect("valid cluster path"),
                    200,
                    3,
                    0,
                    i64::MAX / 4,
                )
                .expect("valid cluster flow"),
            );
        }
    }
    FlowSet::new(network, flows).expect("valid clustered instance")
}

#[derive(Serialize)]
struct Entry {
    scenario: String,
    /// Flows inside the dirty closure (recomputed).
    stale: usize,
    /// Flows whose healthy solution was reused untouched.
    reused: usize,
    dropped: usize,
    rerouted: usize,
    wall_ms_cold: f64,
    wall_ms_warm: f64,
    /// `wall_ms_cold / wall_ms_warm`.
    speedup: f64,
    /// Warm and cold verdicts agreed bit-for-bit.
    identical: bool,
}

#[derive(Serialize)]
struct Output {
    experiment: String,
    nodes: u32,
    flows: u32,
    seed: u64,
    reps: usize,
    entries: Vec<Entry>,
}

fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, Option<R>) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last)
}

fn main() {
    let set = clustered_instance();
    let cfg = AnalysisConfig::default();
    let Ok(healthy) = Analyzer::new(&set, &cfg) else {
        eprintln!("healthy instance did not converge");
        return;
    };

    // Candidate faults: every used link, ranked by dirty-closure size so
    // the benchmark spans localised to wide-blast faults.
    let mut candidates: Vec<(FaultScenario, usize)> = Vec::new();
    for f in set.flows() {
        for (a, b) in f.path.links() {
            let sc = FaultScenario::link_down(a, b);
            let Ok(degraded) = sc.apply(&set) else {
                continue;
            };
            let stale = dirty_closure(&set, &degraded)
                .iter()
                .filter(|s| **s)
                .count();
            if stale == 0
                || candidates
                    .iter()
                    .any(|(c, _)| format!("{c:?}") == format!("{sc:?}"))
            {
                continue;
            }
            candidates.push((sc, stale));
        }
    }
    candidates.sort_by_key(|(_, stale)| *stale);
    // Smallest closures first (where incrementality pays most), plus the
    // widest blast radius as a stress point.
    let mut picks: Vec<FaultScenario> = candidates
        .iter()
        .take(TRIALS - 1)
        .map(|(sc, _)| sc.clone())
        .collect();
    if let Some((worst, _)) = candidates.last() {
        picks.push(worst.clone());
    }

    let mut entries = Vec::new();
    for sc in &picks {
        let Ok(degraded) = sc.apply(&set) else {
            continue;
        };
        let (wall_ms_cold, cold) = time_best(REPS, || analyze_degraded(&degraded, &cfg));
        let (wall_ms_warm, warm) = time_best(REPS, || reanalyze(&healthy, &degraded, &cfg));
        let (Some(cold), Some(warm)) = (cold, warm) else {
            continue;
        };
        let identical = cold
            .per_flow()
            .iter()
            .zip(warm.report.per_flow())
            .all(|(a, b)| a.wcrt == b.wcrt && a.jitter == b.jitter);
        entries.push(Entry {
            scenario: format!("{sc:?}"),
            stale: warm.stale.iter().filter(|s| **s).count(),
            reused: warm.reused(),
            dropped: degraded.dropped().len(),
            rerouted: degraded.rerouted().len(),
            wall_ms_cold,
            wall_ms_warm,
            speedup: wall_ms_cold / wall_ms_warm.max(1e-9),
            identical,
        });
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.scenario.clone(),
                format!("{}/{}", e.stale, e.stale + e.reused),
                e.dropped.to_string(),
                e.rerouted.to_string(),
                format!("{:.2}", e.wall_ms_cold),
                format!("{:.2}", e.wall_ms_warm),
                format!("{:.1}x", e.speedup),
                if e.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("E13 - fault re-analysis ({NODES} nodes, {FLOWS} flows, best of {REPS})"),
            &["fault", "stale", "dropped", "rerouted", "cold ms", "warm ms", "speedup", "match",],
            &rows,
        )
    );

    let out = Output {
        experiment: "fault_reanalysis".to_string(),
        nodes: NODES,
        flows: FLOWS,
        seed: SEED,
        reps: REPS,
        entries,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialisable");
    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("wrote BENCH_fault.json");

    assert!(
        out.entries.iter().all(|e| e.identical),
        "incremental and cold verdicts diverged"
    );
    let best = out.entries.iter().map(|e| e.speedup).fold(0.0, f64::max);
    assert!(
        best >= 2.0,
        "incremental re-analysis must reach 2x on localised faults, best {best:.1}x"
    );
    println!("best speedup across faults: {best:.1}x");
}
